//! Property-based tests for the buffer-management core.

use occamy_core::{
    AnyBm, BmKind, BufferManager, BufferState, DynamicThreshold, Occamy, QueueBitmap, QueueConfig,
    RoundRobinCursor, TokenBucket, Verdict,
};
use proptest::prelude::*;

/// Forces a from-scratch rebuild of any incremental victim-selection
/// state (no-op for schemes that keep none).
fn resync(bm: &mut AnyBm, state: &BufferState) {
    match bm {
        AnyBm::Occamy(o) => o.resync(state),
        AnyBm::Pushout(p) => p.resync(state),
        _ => {}
    }
}

/// The over-allocation bitmap, for schemes that maintain one.
fn bitmap_bits(bm: &AnyBm, n: usize) -> Option<Vec<bool>> {
    match bm {
        AnyBm::Occamy(o) => Some((0..n).map(|q| o.bitmap().get(q)).collect()),
        _ => None,
    }
}

proptest! {
    /// Buffer accounting never loses or invents bytes under arbitrary
    /// interleavings of enqueues and dequeues.
    #[test]
    fn buffer_state_conserves_bytes(
        ops in prop::collection::vec((0usize..4, 1u64..5_000, prop::bool::ANY), 1..200)
    ) {
        let mut state = BufferState::new(100_000, 4);
        let mut shadow = [0u64; 4];
        for (q, len, is_enq) in ops {
            if is_enq {
                if state.enqueue(q, len).is_ok() {
                    shadow[q] += len;
                }
            } else if state.dequeue(q, len).is_ok() {
                shadow[q] -= len;
            }
            prop_assert_eq!(state.total(), shadow.iter().sum::<u64>());
            for (i, &s) in shadow.iter().enumerate() {
                prop_assert_eq!(state.queue_len(i), s);
            }
            prop_assert!(state.total() <= state.capacity());
        }
    }

    /// DT's threshold is exactly α·free (capped), hence monotone
    /// decreasing in total occupancy.
    #[test]
    fn dt_threshold_monotone_in_occupancy(
        alpha in 0.1f64..16.0,
        fills in prop::collection::vec(1u64..2_000, 1..50)
    ) {
        let dt = DynamicThreshold::new(QueueConfig::uniform(2, 1_000, alpha));
        let mut state = BufferState::new(200_000, 2);
        let mut prev = dt.threshold(0, &state);
        for f in fills {
            if state.enqueue(1, f).is_err() {
                break;
            }
            let t = dt.threshold(0, &state);
            prop_assert!(t <= prev, "threshold rose as buffer filled");
            prev = t;
        }
    }

    /// A packet admitted by DT always physically fits (no overflow), for
    /// any α: admission implies free space.
    #[test]
    fn dt_admission_implies_space(
        alpha in 0.1f64..64.0,
        ops in prop::collection::vec((0usize..3, 40u64..3_000), 1..300)
    ) {
        let dt = DynamicThreshold::new(QueueConfig::uniform(3, 1_000, alpha));
        let mut state = BufferState::new(50_000, 3);
        for (q, len) in ops {
            if dt.admit(q, len, &state) == Verdict::Accept {
                prop_assert!(state.enqueue(q, len).is_ok(), "admitted but no room");
            }
        }
    }

    /// Occamy never selects a victim that is under its own threshold,
    /// and always selects one when some queue exceeds it.
    #[test]
    fn occamy_victims_are_exactly_over_allocated(
        alpha in 0.25f64..8.0,
        lens in prop::collection::vec(0u64..40_000, 4)
    ) {
        let mut occamy = Occamy::new(QueueConfig::uniform(4, 1_000, alpha));
        let mut state = BufferState::new(100_000, 4);
        for (q, &len) in lens.iter().enumerate() {
            if len > 0 && state.enqueue(q, len).is_err() {
                // Skip configurations that would overflow the buffer.
                return Ok(());
            }
        }
        let any_over = (0..4).any(|q| state.queue_len(q) > occamy.threshold(q, &state));
        match occamy.select_victim(&state) {
            Some(v) => {
                prop_assert!(state.queue_len(v) > occamy.threshold(v, &state));
            }
            None => prop_assert!(!any_over, "missed an over-allocated queue"),
        }
    }

    /// Round-robin grants rotate: with a fixed bitmap, consecutive grants
    /// cycle through every set bit before repeating any.
    #[test]
    fn round_robin_cycles_all_set_bits(bits in prop::collection::vec(prop::bool::ANY, 1..128)) {
        let mut bm = QueueBitmap::new(bits.len());
        let set: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        for &i in &set {
            bm.set(i, true);
        }
        let mut cursor = RoundRobinCursor::new();
        if set.is_empty() {
            prop_assert_eq!(cursor.grant(&bm), None);
        } else {
            let mut seen = Vec::new();
            for _ in 0..set.len() {
                seen.push(cursor.grant(&bm).unwrap());
            }
            seen.sort_unstable();
            prop_assert_eq!(&seen, &set, "one full rotation must visit each set bit once");
        }
    }

    /// Bitmap `next_set_wrapping` agrees with a straightforward scan.
    #[test]
    fn bitmap_wrapping_scan_matches_reference(
        bits in prop::collection::vec(prop::bool::ANY, 1..200),
        start in 0usize..200,
    ) {
        let mut bm = QueueBitmap::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            bm.set(i, b);
        }
        let n = bits.len();
        let start = start % n;
        let reference = (0..n)
            .map(|k| (start + k) % n)
            .find(|&i| bits[i]);
        prop_assert_eq!(bm.next_set_wrapping(start), reference);
    }

    /// The token bucket never exceeds its cap, and `try_take` never
    /// succeeds beyond the refilled budget.
    #[test]
    fn token_bucket_respects_budget(
        rate in 1.0f64..1e3, // tokens per second
        cap in 1.0f64..100.0,
        ops in prop::collection::vec((1u64..1_000_000u64, 0.1f64..50.0, prop::bool::ANY), 1..100)
    ) {
        let mut tb = TokenBucket::new(rate, cap);
        let mut now = 0u64;
        let mut taken = 0.0f64;
        let mut forced = 0.0f64;
        for (dt, amount, force) in ops {
            now += dt;
            if force {
                tb.force_take(amount, now);
                forced += amount;
            } else if tb.try_take(amount, now) {
                taken += amount;
            }
            prop_assert!(tb.balance() <= cap + 1e-9);
            // Everything taken must be covered by generation + overdraft.
            let generated = rate * now as f64 / 1e9 + 1e-6;
            prop_assert!(
                taken <= generated + 1e-6,
                "try_take overdrew: {} > {}", taken, generated
            );
            let _ = forced;
        }
    }

    /// The incrementally maintained victim state (over-allocation bitmap,
    /// round-robin grants, longest-queue tournaments) is identical to a
    /// from-scratch rebuild across random enqueue/dequeue/select
    /// sequences, for every scheme kind.
    #[test]
    fn incremental_victim_state_matches_scratch_rebuild(
        kind_idx in 0usize..9,
        alpha in 0.25f64..8.0,
        ops in prop::collection::vec((0usize..6, 0u64..3, 1u64..4_000), 1..250)
    ) {
        let kinds = [
            BmKind::Dt,
            BmKind::Occamy,
            BmKind::OccamyLongest,
            BmKind::Abm,
            BmKind::Pushout,
            BmKind::Static,
            BmKind::CompleteSharing,
            BmKind::BShare,
            BmKind::Damq,
        ];
        let kind = kinds[kind_idx];
        let n = 6;
        let cfg = QueueConfig::uniform(n, 10_000_000_000, alpha).with_priority(5, 1);
        // `live` is driven only through the bookkeeping hooks; `scratch`
        // is force-rebuilt from the state before every answer.
        let mut live = kind.build(cfg.clone());
        let mut scratch = kind.build(cfg);
        let mut state = BufferState::new(20_000, n);
        for (q, op, len) in ops {
            match op {
                0 => {
                    if state.enqueue(q, len).is_ok() {
                        live.on_enqueue(q, len, 0, &state);
                        scratch.on_enqueue(q, len, 0, &state);
                    }
                }
                1 => {
                    let take = len.min(state.queue_len(q));
                    if take > 0 {
                        state.dequeue(q, take).unwrap();
                        live.on_dequeue(q, take, 0, &state);
                        scratch.on_dequeue(q, take, 0, &state);
                    }
                }
                _ => {
                    resync(&mut scratch, &state);
                    let expect = scratch.select_victim(&state);
                    let got = live.select_victim(&state);
                    prop_assert_eq!(got, expect, "victim diverged for {}", live.name());
                    prop_assert_eq!(
                        bitmap_bits(&live, n),
                        bitmap_bits(&scratch, n),
                        "bitmap diverged for {}",
                        live.name()
                    );
                }
            }
        }
    }

    /// Every scheme's threshold is bounded by the capacity, and admission
    /// of a zero-length packet into an empty buffer succeeds.
    #[test]
    fn schemes_behave_on_edges(kind_idx in 0usize..9, cap in 1_000u64..1_000_000) {
        let kinds = [
            BmKind::Dt,
            BmKind::Occamy,
            BmKind::OccamyLongest,
            BmKind::Abm,
            BmKind::Pushout,
            BmKind::Static,
            BmKind::CompleteSharing,
            BmKind::BShare,
            BmKind::Damq,
        ];
        let bm = kinds[kind_idx].build(QueueConfig::uniform(4, 1_000, 1.0));
        let state = BufferState::new(cap, 4);
        for q in 0..4 {
            prop_assert!(bm.threshold(q, &state) <= cap);
            prop_assert_eq!(bm.admit(q, 0, &state), Verdict::Accept);
        }
    }
}
