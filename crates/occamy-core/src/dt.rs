//! Dynamic Threshold (DT) — the de-facto non-preemptive BM.

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, Verdict};

/// The DT admission threshold `trunc(min(α · free, B))` in bytes.
///
/// Kept as a free function so the incremental over-allocation tracker
/// ([`crate::OverAllocTracker`]) evaluates the *same* floating-point
/// expression as admission — the bitmap must be bit-for-bit identical to
/// a from-scratch comparator scan.
#[inline]
pub(crate) fn dt_threshold(alpha: f64, free: u64, capacity: u64) -> u64 {
    let t = alpha * free as f64;
    t.min(capacity as f64) as u64
}

/// Dynamic Threshold buffer management (Choudhury & Hahne, ToN 1998).
///
/// Every queue is limited by a threshold proportional to the free buffer
/// (paper Eq. 1):
///
/// ```text
/// T_q(t) = α_q · (B − Σᵢ qᵢ(t))
/// ```
///
/// The scheme self-stabilizes: in steady state with `N` congested queues
/// of equal `α`, each holds `αB / (1 + αN)` bytes and `B / (1 + αN)` bytes
/// remain free (paper Eq. 2). DT is non-preemptive: the only way a queue
/// sheds buffer is by transmitting, which is the agility limitation Occamy
/// removes.
#[derive(Debug, Clone)]
pub struct DynamicThreshold {
    cfg: QueueConfig,
}

impl DynamicThreshold {
    /// Creates a DT instance for the given queue configuration.
    pub fn new(cfg: QueueConfig) -> Self {
        cfg.validate();
        DynamicThreshold { cfg }
    }

    /// The queue configuration (exposed for schemes that embed DT).
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// `α` of queue `q`.
    pub fn alpha(&self, q: QueueId) -> f64 {
        self.cfg.alpha[q]
    }

    /// Updates `α` of queue `q` at runtime.
    pub fn set_alpha(&mut self, q: QueueId, alpha: f64) {
        self.cfg.alpha[q] = alpha;
    }

    /// Steady-state free buffer `B / (1 + αN)` for `n` congested queues of
    /// equal `alpha` (paper Eq. 2) — used by tests and parameter analyses.
    pub fn steady_state_free(capacity: u64, alpha: f64, n: usize) -> f64 {
        capacity as f64 / (1.0 + alpha * n as f64)
    }
}

impl BufferManager for DynamicThreshold {
    #[inline]
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        dt_threshold(self.cfg.alpha[q], state.free(), state.capacity())
    }

    #[inline]
    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.threshold(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(n: usize, alpha: f64) -> DynamicThreshold {
        DynamicThreshold::new(QueueConfig::uniform(n, 10_000_000_000, alpha))
    }

    #[test]
    fn threshold_is_alpha_times_free() {
        let bm = dt(2, 2.0);
        let mut state = BufferState::new(1_000, 2);
        assert_eq!(bm.threshold(0, &state), 1_000); // capped at capacity
        state.enqueue(0, 600).unwrap();
        assert_eq!(bm.threshold(0, &state), 800); // 2 * 400
    }

    #[test]
    fn threshold_shrinks_as_buffer_fills() {
        let bm = dt(2, 1.0);
        let mut state = BufferState::new(1_000, 2);
        let mut prev = bm.threshold(0, &state);
        for _ in 0..5 {
            state.enqueue(1, 100).unwrap();
            let t = bm.threshold(0, &state);
            assert!(t < prev, "threshold must fall as occupancy rises");
            prev = t;
        }
    }

    #[test]
    fn admits_below_threshold_only() {
        let bm = dt(2, 1.0);
        let mut state = BufferState::new(1_000, 2);
        // Free = 1000, T = 1000: a 400 B packet fits.
        assert_eq!(bm.admit(0, 400, &state), Verdict::Accept);
        state.enqueue(0, 400).unwrap();
        // Free = 600, T = 600: queue holds 400, 300 more would exceed 600.
        assert_eq!(
            bm.admit(0, 300, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        // But 200 fits exactly.
        assert_eq!(bm.admit(0, 200, &state), Verdict::Accept);
    }

    #[test]
    fn full_buffer_reports_buffer_full() {
        let bm = dt(1, 100.0);
        let mut state = BufferState::new(1_000, 1);
        state.enqueue(0, 1_000).unwrap();
        assert_eq!(
            bm.admit(0, 1, &state),
            Verdict::Drop(DropReason::BufferFull)
        );
    }

    #[test]
    fn steady_state_two_queues_converge_to_fair_share() {
        // Fluid-style fixed point: q = T = α(B − 2q) ⇒ q = αB/(1+2α).
        let alpha = 1.0;
        let capacity = 1_200u64;
        let bm = dt(2, alpha);
        let mut state = BufferState::new(capacity, 2);
        // Fill both queues greedily one byte at a time until DT refuses.
        let mut progress = true;
        while progress {
            progress = false;
            for q in 0..2 {
                if bm.admit(q, 1, &state) == Verdict::Accept {
                    state.enqueue(q, 1).unwrap();
                    progress = true;
                }
            }
        }
        let expect = (alpha * capacity as f64 / (1.0 + 2.0 * alpha)) as u64;
        assert!((state.queue_len(0) as i64 - expect as i64).abs() <= 2);
        assert!((state.queue_len(1) as i64 - expect as i64).abs() <= 2);
        let free_expect = DynamicThreshold::steady_state_free(capacity, alpha, 2);
        assert!((state.free() as f64 - free_expect).abs() <= 4.0);
    }

    #[test]
    fn per_queue_alpha_biases_share() {
        let cfg = QueueConfig::uniform(2, 1, 1.0).with_alpha(0, 8.0);
        let bm = DynamicThreshold::new(cfg);
        let state = BufferState::new(1_000, 2);
        assert!(bm.threshold(0, &state) >= bm.threshold(1, &state));
    }

    #[test]
    fn set_alpha_updates_threshold() {
        let mut bm = dt(1, 1.0);
        let state = BufferState::new(1_000, 1);
        bm.set_alpha(0, 0.5);
        assert_eq!(bm.threshold(0, &state), 500);
        assert_eq!(bm.alpha(0), 0.5);
    }

    #[test]
    fn never_selects_victims() {
        let mut bm = dt(2, 0.1);
        let mut state = BufferState::new(1_000, 2);
        state.enqueue(0, 900).unwrap(); // far above threshold
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.is_preemptive());
    }
}
