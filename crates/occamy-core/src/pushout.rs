//! Pushout — the classically optimal (but hard to implement) preemptive BM.

use crate::{BufferManager, BufferState, DropReason, MaxTracker, QueueConfig, QueueId, Verdict};
use std::cmp::Reverse;

/// Victim-ordering key: lowest-importance class first (highest `priority`
/// value), then longest queue, then lowest queue index.
type VictimKey = (u8, u64, Reverse<u32>);

/// Pushout buffer management (Thareja & Agrawala 1984; Wei et al. 1991).
///
/// Accepts an arriving packet whenever there is free buffer space; when the
/// buffer is full it evicts packets from the *longest* queue to make room
/// (paper §2.2). Pushout is throughput/loss-optimal but couples enqueue
/// with dequeue and needs a real-time Maximum Finder, which is why the
/// paper treats it as an idealized upper bound rather than a deployable
/// scheme — `occamy-hw::maxfinder` quantifies that hardware cost.
///
/// With multiple scheduling priorities this implements *space-priority*
/// pushout (Kroner et al. 1991; Choudhury & Hahne 1993, the paper's §7
/// lineage): the victim is the longest queue of the **lowest-importance
/// backlogged class**, so high-priority traffic is never pushed out while
/// low-priority buffer exists. With a single class this reduces to plain
/// longest-queue pushout.
///
/// `admit` returns [`Verdict::Evict`] when room must be made first; the
/// substrate then calls [`Pushout::select_victim`] (repeatedly, for large
/// packets) and performs the head drops synchronously before enqueuing.
///
/// Victim lookup is O(1): a [`MaxTracker`] tournament — the software
/// Maximum Finder — is updated in O(log N) from the
/// [`BufferManager::on_enqueue`] / [`BufferManager::on_dequeue`] hooks,
/// instead of the former full scan per eviction. Substrates that mutate
/// the state without the hooks are caught by a cheap consistency probe
/// (or can call [`Pushout::resync`] explicitly).
#[derive(Debug, Clone)]
pub struct Pushout {
    cfg: QueueConfig,
    longest: MaxTracker<VictimKey>,
    total: u64,
    synced: bool,
}

impl Pushout {
    /// Creates a Pushout instance.
    pub fn new(cfg: QueueConfig) -> Self {
        cfg.validate();
        let n = cfg.num_queues();
        Pushout {
            cfg,
            longest: MaxTracker::new(n),
            total: 0,
            synced: false,
        }
    }

    /// The queue configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    fn key(&self, q: QueueId, len: u64) -> Option<VictimKey> {
        (len > 0).then_some((self.cfg.priority[q], len, Reverse(q as u32)))
    }

    /// Rebuilds the incremental victim state from `state` (only needed
    /// after mutating occupancy without the bookkeeping hooks).
    pub fn resync(&mut self, state: &BufferState) {
        for (q, len) in state.iter() {
            self.longest.set(q, self.key(q, len));
        }
        self.total = state.total();
        self.synced = true;
    }

    fn sync(&mut self, state: &BufferState) {
        if !self.synced || self.total != state.total() {
            self.resync(state);
        }
    }

    /// Reference full-scan victim selection; only evaluated by the
    /// debug-build divergence assertion.
    fn scratch_victim(&self, state: &BufferState) -> Option<QueueId> {
        state
            .iter()
            .filter(|&(_, len)| len > 0)
            .max_by(|&(qa, la), &(qb, lb)| {
                let pa = self.cfg.priority[qa];
                let pb = self.cfg.priority[qb];
                pa.cmp(&pb).then(la.cmp(&lb)).then(qb.cmp(&qa))
            })
            .map(|(q, _)| q)
    }
}

impl BufferManager for Pushout {
    fn threshold(&self, _q: QueueId, state: &BufferState) -> u64 {
        // Pushout imposes no per-queue limit; report the full capacity so
        // instrumentation can plot a meaningful line.
        state.capacity()
    }

    #[inline]
    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if len > state.capacity() {
            // A packet larger than the whole buffer can never be stored.
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.total() + len <= state.capacity() {
            return Verdict::Accept;
        }
        // If the arriving queue is itself the longest, evicting from it and
        // accepting at the tail is still correct (and is what head-drop
        // Pushout variants do), so Evict is always answerable unless the
        // buffer is empty (impossible here since total + len > capacity and
        // len <= capacity together imply total > 0).
        let _ = q;
        Verdict::Evict
    }

    #[inline]
    fn on_enqueue(&mut self, q: QueueId, _len: u64, _now_ns: u64, state: &BufferState) {
        self.longest.set(q, self.key(q, state.queue_len(q)));
        self.total = state.total();
        self.synced = true;
    }

    #[inline]
    fn on_dequeue(&mut self, q: QueueId, _len: u64, _now_ns: u64, state: &BufferState) {
        self.longest.set(q, self.key(q, state.queue_len(q)));
        self.total = state.total();
    }

    #[inline]
    fn select_victim(&mut self, state: &BufferState) -> Option<QueueId> {
        self.sync(state);
        let victim = self.longest.max().map(|(_, _, Reverse(q))| q as QueueId);
        debug_assert_eq!(
            victim,
            self.scratch_victim(state),
            "pushout max tracker diverged from buffer state \
             (bookkeeping hooks not invoked?)"
        );
        victim
    }

    fn is_preemptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Pushout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Pushout, BufferState) {
        (
            Pushout::new(QueueConfig::uniform(3, 10_000_000_000, 1.0)),
            BufferState::new(3_000, 3),
        )
    }

    /// Enqueue plus the bookkeeping hook, as a substrate would do.
    fn enq(bm: &mut Pushout, state: &mut BufferState, q: QueueId, len: u64) {
        state.enqueue(q, len).unwrap();
        bm.on_enqueue(q, len, 0, state);
    }

    /// Dequeue plus the bookkeeping hook.
    fn deq(bm: &mut Pushout, state: &mut BufferState, q: QueueId, len: u64) {
        state.dequeue(q, len).unwrap();
        bm.on_dequeue(q, len, 0, state);
    }

    #[test]
    fn admits_whenever_space_exists() {
        let (mut bm, mut state) = setup();
        assert_eq!(bm.admit(0, 3_000, &state), Verdict::Accept);
        enq(&mut bm, &mut state, 0, 2_999);
        assert_eq!(bm.admit(1, 1, &state), Verdict::Accept);
    }

    #[test]
    fn requests_eviction_when_full() {
        let (mut bm, mut state) = setup();
        enq(&mut bm, &mut state, 0, 3_000);
        assert_eq!(bm.admit(1, 100, &state), Verdict::Evict);
    }

    #[test]
    fn oversized_packet_is_dropped_outright() {
        let (bm, state) = setup();
        assert_eq!(
            bm.admit(0, 3_001, &state),
            Verdict::Drop(DropReason::BufferFull)
        );
    }

    #[test]
    fn victim_is_longest_queue() {
        let (mut bm, mut state) = setup();
        enq(&mut bm, &mut state, 0, 1_000);
        enq(&mut bm, &mut state, 1, 1_500);
        enq(&mut bm, &mut state, 2, 500);
        assert_eq!(bm.select_victim(&state), Some(1));
    }

    #[test]
    fn victim_found_without_hooks_via_resync_probe() {
        // Direct state mutation (no hooks) changes the total, which the
        // consistency probe notices before answering.
        let (mut bm, mut state) = setup();
        state.enqueue(0, 1_000).unwrap();
        state.enqueue(1, 1_500).unwrap();
        assert_eq!(bm.select_victim(&state), Some(1));
        state.dequeue(1, 1_200).unwrap();
        assert_eq!(bm.select_victim(&state), Some(0));
    }

    #[test]
    fn low_priority_class_is_evicted_first() {
        // Queue 0 is high priority (class 0) and longest; queues 1–2 are
        // low priority. Space-priority pushout must sacrifice the LP
        // queues before touching HP buffer.
        let cfg = QueueConfig::uniform(3, 10_000_000_000, 1.0)
            .with_priority(1, 1)
            .with_priority(2, 1);
        let mut bm = Pushout::new(cfg);
        let mut state = BufferState::new(3_000, 3);
        enq(&mut bm, &mut state, 0, 1_500);
        enq(&mut bm, &mut state, 1, 800);
        enq(&mut bm, &mut state, 2, 700);
        assert_eq!(bm.select_victim(&state), Some(1), "longest LP queue");
        deq(&mut bm, &mut state, 1, 800);
        assert_eq!(bm.select_victim(&state), Some(2), "remaining LP queue");
        deq(&mut bm, &mut state, 2, 700);
        // Only HP left: it becomes the victim of last resort.
        assert_eq!(bm.select_victim(&state), Some(0));
    }

    #[test]
    fn eviction_loop_makes_room() {
        // Emulate what the substrate does on Verdict::Evict: head-drop
        // 100-byte packets from the victim until the newcomer fits.
        let (mut bm, mut state) = setup();
        enq(&mut bm, &mut state, 0, 2_000);
        enq(&mut bm, &mut state, 1, 1_000);
        let incoming = 500u64;
        assert_eq!(bm.admit(2, incoming, &state), Verdict::Evict);
        while state.free() < incoming {
            let v = bm.select_victim(&state).unwrap();
            deq(&mut bm, &mut state, v, 100);
        }
        assert_eq!(bm.admit(2, incoming, &state), Verdict::Accept);
        enq(&mut bm, &mut state, 2, incoming);
        // The longest queue (0) paid the price.
        assert_eq!(state.queue_len(0), 1_500);
        assert_eq!(state.queue_len(1), 1_000);
    }

    #[test]
    fn threshold_reports_capacity() {
        let (bm, state) = setup();
        assert_eq!(bm.threshold(0, &state), 3_000);
        assert!(bm.is_preemptive());
    }
}
