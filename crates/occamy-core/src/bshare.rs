//! BShare — packet-queueing-delay-driven buffer sharing
//! (Agarwal et al.; see PAPERS.md).

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, RateEstimator, Verdict};

/// Default time constant for the per-queue drain-rate estimator.
const DEFAULT_TAU_NS: u64 = 100_000; // 100 µs

/// Default target queueing delay a queue's backlog may represent.
const DEFAULT_DELAY_TARGET_NS: u64 = 100_000; // 100 µs

/// Lower clamp on the normalized drain rate for a backlogged queue, so a
/// starved queue keeps a non-zero threshold and can turn its backlog over
/// (same rationale as ABM's `μ` floor).
const RATE_FLOOR: f64 = 1.0 / 128.0;

/// BShare — delay-driven buffer sharing.
///
/// Where DT sizes a queue's claim from the *free buffer*, BShare sizes
/// it from the *queueing delay* the backlog represents: a queue draining
/// at rate `r_q(t)` holding `len_q` bytes imposes `len_q / r_q` of delay
/// on its head packet, so capping the backlog at
///
/// ```text
/// T_q(t) = min( d · r_q(t) ,  α · (B − ΣQ(t)) )
/// ```
///
/// (delay target `d`, default 100 µs) bounds per-hop queueing delay
/// directly — fast-draining queues may buffer deeply, slow or choked
/// queues are clamped to a shallow backlog. The `α·free` term is the DT
/// safety cap that keeps admission overload-safe when the buffer runs
/// out; `α` is the scheme's knob alongside `d`.
///
/// This is a documented interpretation of the delay-driven rule from
/// the retrieved BShare work (the original targets programmable
/// switches); the drain rate comes from the same [`RateEstimator`]
/// EWMA machinery ABM uses (τ = 100 µs), fed by the dequeue hooks, with
/// ABM's idle-to-active reseed at full port rate so fresh bursts are
/// not starved. Admission is O(1): both the estimator read and the DT
/// term are constant-time, no per-queue scan exists to cache.
#[derive(Debug, Clone)]
pub struct BShare {
    cfg: QueueConfig,
    delay_target_ns: u64,
    drain: Vec<RateEstimator>,
    now_ns: u64,
}

impl BShare {
    /// The default delay target `d` (100 µs) — exported so callers that
    /// make `d` tunable (e.g. the `bshare_delay_us` grid knob) can
    /// reproduce `BShare::new` exactly at the default point.
    pub const DEFAULT_DELAY_TARGET_NS: u64 = DEFAULT_DELAY_TARGET_NS;

    /// Creates a BShare instance with the default 100 µs delay target.
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_delay_target(cfg, DEFAULT_DELAY_TARGET_NS)
    }

    /// Creates a BShare instance with an explicit delay target.
    pub fn with_delay_target(cfg: QueueConfig, delay_target_ns: u64) -> Self {
        cfg.validate();
        let drain = cfg
            .port_rate_bps
            .iter()
            .map(|&r| RateEstimator::new(DEFAULT_TAU_NS, r as f64))
            .collect();
        BShare {
            cfg,
            delay_target_ns,
            drain,
            now_ns: 0,
        }
    }

    /// Effective drain rate for queue `q` in bits/s: the EWMA estimate,
    /// clamped to `[RATE_FLOOR, 1] ×` port rate; an empty queue is
    /// priced optimistically at full port rate (no drain history that
    /// matters — same optimism as ABM's empty-queue `μ = 1`).
    fn drain_bps(&self, q: QueueId, state: &BufferState) -> f64 {
        let port = self.cfg.port_rate_bps[q] as f64;
        if state.queue_len(q) == 0 {
            return port;
        }
        self.drain[q]
            .rate_bps(self.now_ns)
            .clamp(port * RATE_FLOOR, port)
    }

    /// The delay-target term `d · r_q(t)` in bytes.
    fn delay_budget_bytes(&self, q: QueueId, state: &BufferState) -> u64 {
        (self.drain_bps(q, state) / 8.0 * self.delay_target_ns as f64 / 1e9) as u64
    }
}

impl BufferManager for BShare {
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        let dt_cap = (self.cfg.alpha[q] * state.free() as f64).min(state.capacity() as f64) as u64;
        self.delay_budget_bytes(q, state).min(dt_cap)
    }

    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.threshold(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn on_enqueue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        self.now_ns = now_ns;
        // Idle → active transition: seed the drain estimate at port rate.
        if state.queue_len(q) == len {
            let port = self.cfg.port_rate_bps[q] as f64;
            self.drain[q].reset(port, now_ns);
        }
    }

    fn on_dequeue(&mut self, q: QueueId, len: u64, now_ns: u64, _state: &BufferState) {
        self.now_ns = now_ns;
        self.drain[q].record(len, now_ns);
    }

    fn on_dequeue_many(
        &mut self,
        q: QueueId,
        len: u64,
        count: u64,
        now_ns: u64,
        _state: &BufferState,
    ) {
        if count > 0 {
            self.now_ns = now_ns;
        }
        // Bit-exact with `count` single records (see
        // `RateEstimator::record_many`).
        self.drain[q].record_many(len, count, now_ns);
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "BShare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS_10: u64 = 10_000_000_000;

    /// 10 Gbps × 100 µs = 125 000 bytes of delay budget at full rate.
    const FULL_RATE_BUDGET: u64 = 125_000;

    #[test]
    fn empty_queue_gets_full_rate_delay_budget() {
        let bm = BShare::new(QueueConfig::uniform(2, GBPS_10, 8.0));
        let state = BufferState::new(1_000_000, 2);
        assert_eq!(bm.threshold(0, &state), FULL_RATE_BUDGET);
    }

    #[test]
    fn alpha_free_cap_binds_when_buffer_fills() {
        let mut bm = BShare::new(QueueConfig::uniform(2, GBPS_10, 1.0));
        let mut state = BufferState::new(200_000, 2);
        state.enqueue(1, 150_000).unwrap();
        bm.on_enqueue(1, 150_000, 0, &state);
        // free = 50 000 < the 125 000 delay budget: the DT cap binds.
        assert_eq!(bm.threshold(0, &state), 50_000);
    }

    #[test]
    fn slow_draining_queue_is_clamped_to_shallow_backlog() {
        let mut bm = BShare::new(QueueConfig::uniform(2, GBPS_10, 8.0));
        let mut state = BufferState::new(10_000_000, 2);
        state.enqueue(0, 100_000).unwrap();
        bm.on_enqueue(0, 100_000, 0, &state);
        state.enqueue(1, 100_000).unwrap();
        bm.on_enqueue(1, 100_000, 0, &state);
        // Queue 0 drains at line rate (1250 B/µs), queue 1 at 1/10 of it.
        let mut now = 0;
        for i in 0..3_000u64 {
            now += 1_000;
            bm.on_dequeue(0, 1_250, now, &state);
            if i % 10 == 0 {
                bm.on_dequeue(1, 1_250, now, &state);
            }
        }
        let t_fast = bm.threshold(0, &state);
        let t_slow = bm.threshold(1, &state);
        assert!(
            t_slow * 4 < t_fast,
            "slow queue threshold {t_slow} not ≪ fast {t_fast}"
        );
    }

    #[test]
    fn starved_queue_threshold_is_floored_not_zero() {
        let mut bm = BShare::new(QueueConfig::uniform(1, GBPS_10, 8.0));
        let mut state = BufferState::new(10_000_000, 1);
        state.enqueue(0, 10_000).unwrap();
        bm.on_enqueue(0, 10_000, 0, &state);
        // Never dequeues; move time far forward so the estimate decays.
        bm.now_ns = 1_000_000_000;
        let floor = (FULL_RATE_BUDGET as f64 * RATE_FLOOR) as u64;
        assert!(bm.threshold(0, &state) >= floor);
    }

    #[test]
    fn admit_rejects_over_threshold() {
        let bm = BShare::new(QueueConfig::uniform(2, GBPS_10, 8.0));
        let state = BufferState::new(1_000_000, 2);
        // A fresh queue's budget is 125 000 bytes: a larger burst is
        // refused, a smaller one admitted.
        assert_eq!(
            bm.admit(0, FULL_RATE_BUDGET + 1, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        assert_eq!(bm.admit(0, FULL_RATE_BUDGET, &state), Verdict::Accept);
    }

    #[test]
    fn is_non_preemptive() {
        let mut bm = BShare::new(QueueConfig::uniform(1, GBPS_10, 8.0));
        let mut state = BufferState::new(10_000, 1);
        state.enqueue(0, 9_000).unwrap();
        bm.on_enqueue(0, 9_000, 0, &state);
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.is_preemptive());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The hook-driven estimator state yields a threshold equal
            /// to the from-scratch formula recomputed from a shadow
            /// estimator after every mutation, and the batched dequeue
            /// hook is bit-exact with the per-packet loop — the BShare
            /// analogue of the ABM/DAMQ cache-vs-scan proptests.
            #[test]
            fn threshold_matches_scratch_formula(
                ops in prop::collection::vec(
                    (0usize..4, 1u64..40_000, prop::bool::ANY),
                    1..200,
                )
            ) {
                let cfg = QueueConfig::uniform(4, GBPS_10, 2.0);
                let mut bm = BShare::new(cfg);
                let mut shadow: Vec<RateEstimator> = (0..4)
                    .map(|_| RateEstimator::new(DEFAULT_TAU_NS, GBPS_10 as f64))
                    .collect();
                let mut state = BufferState::new(300_000, 4);
                let mut now = 0;
                for (q, bytes, is_enq) in ops {
                    now += 500;
                    if is_enq {
                        if state.enqueue(q, bytes).is_ok() {
                            bm.on_enqueue(q, bytes, now, &state);
                            if state.queue_len(q) == bytes {
                                shadow[q].reset(GBPS_10 as f64, now);
                            }
                        }
                    } else {
                        let take = bytes.min(state.queue_len(q));
                        if take > 0 {
                            state.dequeue(q, take).unwrap();
                            bm.on_dequeue(q, take, now, &state);
                            shadow[q].record(take, now);
                        }
                    }
                    let port = GBPS_10 as f64;
                    let rate = if state.queue_len(q) == 0 {
                        port
                    } else {
                        shadow[q].rate_bps(now).clamp(port * RATE_FLOOR, port)
                    };
                    let budget =
                        (rate / 8.0 * DEFAULT_DELAY_TARGET_NS as f64 / 1e9) as u64;
                    let cap = (2.0 * state.free() as f64)
                        .min(state.capacity() as f64) as u64;
                    prop_assert_eq!(bm.threshold(q, &state), budget.min(cap));
                }
            }

            /// `on_dequeue_many` is indistinguishable from the loop.
            #[test]
            fn batched_dequeue_matches_loop(
                count in 1u64..20,
                len in 100u64..3_000,
            ) {
                let mk = || BShare::new(QueueConfig::uniform(1, GBPS_10, 8.0));
                let (mut a, mut b) = (mk(), mk());
                let mut sa = BufferState::new(1_000_000, 1);
                let mut sb = BufferState::new(1_000_000, 1);
                for (bm, state) in [(&mut a, &mut sa), (&mut b, &mut sb)] {
                    state.enqueue(0, len * (count + 1)).unwrap();
                    bm.on_enqueue(0, len * (count + 1), 100, state);
                }
                sa.dequeue(0, len * count).unwrap();
                a.on_dequeue_many(0, len, count, 2_000, &sa);
                for _ in 0..count {
                    sb.dequeue(0, len).unwrap();
                    b.on_dequeue(0, len, 2_000, &sb);
                }
                prop_assert_eq!(a.threshold(0, &sa), b.threshold(0, &sb));
            }
        }
    }
}
