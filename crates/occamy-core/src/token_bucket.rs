//! Redundant-memory-bandwidth accounting (paper §5.3, expulsion module).

/// A token bucket with a *signed* balance modeling memory bandwidth.
///
/// Tokens are generated at the switch's aggregate forwarding capacity (one
/// token per cell time in the paper's DPDK prototype). Two consumers draw
/// from it:
///
/// - the TX path calls [`TokenBucket::force_take`] — line-rate forwarding
///   must never block, so the balance may go **negative**;
/// - the expulsion path calls [`TokenBucket::try_take`], which only
///   succeeds when the full amount is available.
///
/// The net effect is exactly the paper's invariant: head drops consume
/// only the memory bandwidth left over by normal forwarding. When every
/// port runs at line rate the balance hovers at or below zero and Occamy
/// degenerates to DT (§4.5, "what if there is no redundant bandwidth").
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens_per_ns: f64,
    cap: f64,
    balance: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket producing `rate_per_sec` tokens per second, with
    /// accumulation capped at `cap` tokens, starting empty at time 0.
    pub fn new(rate_per_sec: f64, cap: f64) -> Self {
        TokenBucket {
            tokens_per_ns: rate_per_sec / 1e9,
            cap,
            balance: 0.0,
            last_ns: 0,
        }
    }

    /// Advances the refill clock to `now_ns`.
    #[inline]
    pub fn advance(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64;
            self.balance = (self.balance + dt * self.tokens_per_ns).min(self.cap);
            self.last_ns = now_ns;
        }
    }

    /// Tokens available at `now_ns` (without mutating).
    pub fn available(&self, now_ns: u64) -> f64 {
        let dt = now_ns.saturating_sub(self.last_ns) as f64;
        (self.balance + dt * self.tokens_per_ns).min(self.cap)
    }

    /// Takes `n` tokens if (and only if) the full amount is available.
    ///
    /// This is the expulsion path: it may only use redundant bandwidth.
    #[inline]
    pub fn try_take(&mut self, n: f64, now_ns: u64) -> bool {
        self.advance(now_ns);
        if self.balance >= n {
            self.balance -= n;
            true
        } else {
            false
        }
    }

    /// Takes `n` tokens unconditionally; the balance may go negative,
    /// but no deeper than `−cap`.
    ///
    /// This is the TX path: forwarding has absolute priority over
    /// expulsion, mirroring the fixed-priority arbiter of §4.3. The
    /// overdraft is bounded because memory cycles are use-it-or-lose-it:
    /// a long stretch of transmission at full rate cannot put the
    /// expulsion path arbitrarily far into debt — it merely keeps it
    /// starved while the stretch lasts (§4.5).
    #[inline]
    pub fn force_take(&mut self, n: f64, now_ns: u64) {
        self.advance(now_ns);
        self.balance = (self.balance - n).max(-self.cap);
    }

    /// Nanoseconds from `now_ns` until `n` tokens could be taken, or
    /// `None` if the request can never be satisfied (`n` exceeds the
    /// bucket capacity, or the generation rate is zero).
    pub fn time_until(&self, n: f64, now_ns: u64) -> Option<u64> {
        if n > self.cap {
            return None;
        }
        let avail = self.available(now_ns);
        if avail >= n {
            return Some(0);
        }
        if self.tokens_per_ns <= 0.0 {
            return None; // a drained zero-rate bucket never refills
        }
        let deficit = n - avail;
        Some((deficit / self.tokens_per_ns).ceil() as u64)
    }

    /// Current signed balance (diagnostics).
    pub fn balance(&self) -> f64 {
        self.balance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_refills_linearly() {
        let tb = TokenBucket::new(1e9, 100.0); // 1 token/ns
        assert_eq!(tb.available(0), 0.0);
        assert!((tb.available(50) - 50.0).abs() < 1e-9);
        assert!((tb.available(1_000) - 100.0).abs() < 1e-9); // capped
    }

    #[test]
    fn try_take_requires_full_amount() {
        let mut tb = TokenBucket::new(1e9, 100.0);
        assert!(!tb.try_take(10.0, 5)); // only 5 available
        assert!(tb.try_take(10.0, 10));
        assert!((tb.balance() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn force_take_goes_negative() {
        let mut tb = TokenBucket::new(1e9, 100.0);
        tb.force_take(30.0, 10); // 10 available − 30 = −20
        assert!((tb.balance() + 20.0).abs() < 1e-9);
        // Expulsion must now wait for the deficit plus its own need.
        assert!(!tb.try_take(1.0, 10));
        assert_eq!(tb.time_until(1.0, 10), Some(21));
        assert!(tb.try_take(1.0, 31));
    }

    #[test]
    fn time_until_unsatisfiable_when_over_cap() {
        let tb = TokenBucket::new(1e9, 100.0);
        assert_eq!(tb.time_until(101.0, 0), None);
        assert_eq!(tb.time_until(100.0, 1_000), Some(0));
    }

    #[test]
    fn saturated_tx_starves_expulsion() {
        // TX consumes exactly the generation rate: expulsion never fires.
        let mut tb = TokenBucket::new(1e9, 1_000.0);
        let mut now = 0;
        let mut expelled = 0;
        for _ in 0..1_000 {
            now += 10;
            tb.force_take(10.0, now); // 10 tokens per 10 ns = line rate
            if tb.try_take(5.0, now) {
                expelled += 1;
            }
        }
        assert_eq!(expelled, 0, "no redundant bandwidth must mean no drops");
    }

    #[test]
    fn half_loaded_tx_leaves_bandwidth_for_expulsion() {
        let mut tb = TokenBucket::new(1e9, 1_000.0);
        let mut now = 0;
        let mut expelled = 0u64;
        for _ in 0..1_000 {
            now += 10;
            tb.force_take(5.0, now); // 50% load
            while tb.try_take(5.0, now) {
                expelled += 1;
            }
        }
        // ~50% of the bandwidth should be available: ~1000 * 5 / 5 drops.
        assert!(
            (900..=1_100).contains(&expelled),
            "expected ~1000 expulsions, got {expelled}"
        );
    }

    #[test]
    fn overdraft_is_bounded_by_cap() {
        // A long stretch of line-rate TX must not bury the expulsion path
        // in unbounded debt: once the stretch ends, recovery takes at
        // most ~2·cap worth of refill time.
        let mut tb = TokenBucket::new(1e9, 100.0); // 1 token/ns
        let mut now = 0;
        for _ in 0..10_000 {
            now += 10;
            tb.force_take(20.0, now); // 2× the generation rate
        }
        assert!(tb.balance() >= -100.0 - 1e-9, "debt exceeded the cap");
        // 200 ns refills the 100-token debt plus 100 tokens of budget.
        assert!(tb.try_take(100.0, now + 200));
    }

    #[test]
    fn cap_bounds_burst_of_expulsions() {
        let mut tb = TokenBucket::new(1e9, 50.0);
        // Long idle: balance capped at 50, not 10 000.
        assert!(tb.try_take(50.0, 10_000));
        assert!(!tb.try_take(1.0, 10_000));
    }
}
