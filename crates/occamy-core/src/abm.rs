//! ABM — Active Buffer Management (Addanki et al., SIGCOMM 2022).

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, RateEstimator, Verdict};

/// Default time constant for the per-queue drain-rate estimator.
const DEFAULT_TAU_NS: u64 = 100_000; // 100 µs

/// Lower clamp on the normalized dequeue rate `μ` for a backlogged queue.
///
/// Prevents a fully starved queue from computing a zero threshold, which
/// would wedge it permanently (its backlog could then never turn over).
const MU_FLOOR: f64 = 1.0 / 128.0;

/// Minimum backlog for a queue to count as *congested* in `n_p(t)`.
///
/// Transient few-packet backlogs (ECMP collisions, ACK bunching) must not
/// inflate the congested-queue count, or thresholds collapse and ABM's
/// burst tolerance falls below DT's — the opposite of its published
/// behavior. Ten full-size packets is a conservative signal of standing
/// congestion.
const CONGESTED_FLOOR_BYTES: u64 = 15_000;

/// Active Buffer Management — the strongest non-preemptive baseline.
///
/// ABM's threshold extends DT (paper §7, reference \[1\]):
///
/// ```text
/// T_q(t) = α_p · (B − ΣQ(t)) · 1/n_p(t) · μ_q(t)
/// ```
///
/// where `n_p(t)` is the number of congested queues in `q`'s priority
/// class and `μ_q(t)` is `q`'s dequeue rate normalized by its port
/// capacity. Dividing by `n_p` bounds the buffer a whole class can take;
/// scaling by `μ` shrinks the claim of slow-draining queues, which
/// mitigates (but, being non-preemptive, cannot eliminate — Fig. 15) the
/// buffer-choking problem.
///
/// Implementation notes (documented substitutions for the testbed version):
///
/// - `μ` comes from a [`RateEstimator`] (EWMA, τ = 100 µs) fed by
///   [`BufferManager::on_dequeue`]; an idle-to-active queue is re-seeded at
///   full port rate so fresh bursts are not starved, and a backlogged
///   queue's `μ` is clamped to a small floor (1/128) so it can still
///   drain.
/// - A queue is *congested* when its backlog exceeds a 15 KB floor;
///   `n_p ≥ 1`.
/// - `n_p` is maintained *incrementally*: the enqueue/dequeue hooks
///   watch each queue's floor crossings and keep a per-class congested
///   count, so [`BufferManager::threshold`] — called on every admit —
///   is O(1) instead of a scan over all queues of the partition (which
///   made ABM admission quadratic in port count on the big fabrics).
///   The cache is exact, not approximate: debug builds cross-check it
///   against the full scan on every threshold call, and a proptest
///   drives random workloads through both.
#[derive(Debug, Clone)]
pub struct Abm {
    cfg: QueueConfig,
    drain: Vec<RateEstimator>,
    now_ns: u64,
    /// `congested[p]` = queues of priority class `p` with backlog above
    /// [`CONGESTED_FLOOR_BYTES`]. Updated on the floor crossings the
    /// hooks observe; every [`BufferState`] mutation is paired with its
    /// hook call (the simulator guarantees this), so the count never
    /// drifts from the scan.
    congested: Vec<u32>,
}

impl Abm {
    /// Creates an ABM instance with the default estimator time constant.
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_tau(cfg, DEFAULT_TAU_NS)
    }

    /// Creates an ABM instance with an explicit estimator time constant.
    pub fn with_tau(cfg: QueueConfig, tau_ns: u64) -> Self {
        cfg.validate();
        let drain = cfg
            .port_rate_bps
            .iter()
            .map(|&r| RateEstimator::new(tau_ns, r as f64))
            .collect();
        let classes = cfg.priority.iter().map(|&p| p as usize + 1).max();
        Abm {
            congested: vec![0; classes.unwrap_or(1)],
            cfg,
            drain,
            now_ns: 0,
        }
    }

    /// Number of congested queues in priority class `p` (backlog above
    /// [`CONGESTED_FLOOR_BYTES`]) by full scan — the reference the
    /// incremental cache is checked against (debug assert + proptest).
    fn congested_in_class_scan(&self, p: u8, state: &BufferState) -> usize {
        state
            .iter()
            .filter(|&(q, len)| len > CONGESTED_FLOOR_BYTES && self.cfg.priority[q] == p)
            .count()
    }

    /// Applies one queue's backlog change to the congested-count cache,
    /// given the backlog before and after the mutation.
    fn track_crossing(&mut self, q: QueueId, prev_len: u64, new_len: u64) {
        let was = prev_len > CONGESTED_FLOOR_BYTES;
        let is = new_len > CONGESTED_FLOOR_BYTES;
        if was != is {
            let p = self.cfg.priority[q] as usize;
            if is {
                self.congested[p] += 1;
            } else {
                self.congested[p] -= 1;
            }
        }
    }

    /// Normalized dequeue rate `μ_q ∈ [MU_FLOOR, 1]`.
    fn mu(&self, q: QueueId, state: &BufferState) -> f64 {
        if state.queue_len(q) == 0 {
            // An empty queue has no drain history that matters; be
            // optimistic so newly active queues get their fair claim.
            return 1.0;
        }
        let port = self.cfg.port_rate_bps[q] as f64;
        (self.drain[q].rate_bps(self.now_ns) / port).clamp(MU_FLOOR, 1.0)
    }
}

impl BufferManager for Abm {
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        let p = self.cfg.priority[q];
        debug_assert_eq!(
            self.congested[p as usize] as usize,
            self.congested_in_class_scan(p, state),
            "congested-count cache drifted from the scan for class {p}"
        );
        let n_p = (self.congested[p as usize] as usize).max(1) as f64;
        let t = self.cfg.alpha[q] * state.free() as f64 / n_p * self.mu(q, state);
        t.min(state.capacity() as f64) as u64
    }

    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.threshold(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn on_enqueue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        self.now_ns = now_ns;
        // `state` already reflects the enqueue.
        let new_len = state.queue_len(q);
        self.track_crossing(q, new_len - len, new_len);
        // Idle → active transition: seed the drain estimate at port rate.
        if new_len == len {
            let port = self.cfg.port_rate_bps[q] as f64;
            self.drain[q].reset(port, now_ns);
        }
    }

    fn on_dequeue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        self.now_ns = now_ns;
        let new_len = state.queue_len(q);
        self.track_crossing(q, new_len + len, new_len);
        self.drain[q].record(len, now_ns);
    }

    fn on_dequeue_many(
        &mut self,
        q: QueueId,
        len: u64,
        count: u64,
        now_ns: u64,
        state: &BufferState,
    ) {
        // Bit-exact with `count` single records (see
        // `RateEstimator::record_many`), but the repeated same-timestamp
        // sample is priced once instead of per packet.
        if count > 0 {
            self.now_ns = now_ns;
            let new_len = state.queue_len(q);
            self.track_crossing(q, new_len + len * count, new_len);
        }
        self.drain[q].record_many(len, count, now_ns);
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "ABM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS_10: u64 = 10_000_000_000;

    /// The batched dequeue hook must be indistinguishable — to the bit —
    /// from the per-packet loop, including through the `AnyBm` dispatch
    /// the simulator actually calls. Each instance drives its own
    /// `BufferState` because hooks observe the post-mutation state (the
    /// congested-count cache depends on it).
    #[test]
    fn batched_dequeue_matches_loop_bit_exactly() {
        use crate::{AnyBm, BmKind};
        let mk = || BmKind::Abm.build(QueueConfig::uniform(2, GBPS_10, 2.0));
        let (mut a, mut b): (AnyBm, AnyBm) = (mk(), mk());
        let mut sa = BufferState::new(1_000_000, 2);
        let mut sb = BufferState::new(1_000_000, 2);
        for (bm, state) in [(&mut a, &mut sa), (&mut b, &mut sb)] {
            for _ in 0..12 {
                state.enqueue(0, 1_500).unwrap();
                bm.on_enqueue(0, 1_500, 100, state);
            }
            state.dequeue(0, 1_500).unwrap();
            bm.on_dequeue(0, 1_500, 2_000, state);
        }
        // A port drains 5 equal packets within one nanosecond quantum
        // (crossing the congested floor on the way down).
        sa.dequeue(0, 5 * 1_500).unwrap();
        a.on_dequeue_many(0, 1_500, 5, 3_000, &sa);
        for _ in 0..5 {
            sb.dequeue(0, 1_500).unwrap();
            b.on_dequeue(0, 1_500, 3_000, &sb);
        }
        assert_eq!(
            a.threshold(0, &sa),
            b.threshold(0, &sb),
            "thresholds diverged"
        );
    }

    #[test]
    fn empty_buffer_full_rate_matches_dt() {
        // With one congested queue draining at full rate, ABM reduces to DT.
        let bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 2.0));
        let state = BufferState::new(1_000, 2);
        assert_eq!(bm.threshold(0, &state), 1_000); // capped at capacity
    }

    #[test]
    fn threshold_divides_among_congested_classmates() {
        let mut bm = Abm::new(QueueConfig::uniform(4, GBPS_10, 1.0));
        let mut state = BufferState::new(400_000, 4);
        let t1 = bm.threshold(0, &state);
        state.enqueue(0, 50_000).unwrap();
        bm.on_enqueue(0, 50_000, 0, &state);
        state.enqueue(1, 50_000).unwrap();
        bm.on_enqueue(1, 50_000, 0, &state);
        let t2 = bm.threshold(0, &state);
        // Two congested queues in the class: threshold roughly halves
        // (modulo the free-buffer change).
        assert!(
            t2 <= t1 / 2,
            "expected ~half of {t1}, got {t2} with two congested queues"
        );
    }

    #[test]
    fn tiny_backlogs_do_not_count_as_congested() {
        let bm = Abm::new(QueueConfig::uniform(4, GBPS_10, 1.0));
        let mut state = BufferState::new(400_000, 4);
        // Three queues with a couple of packets each: below the floor.
        for q in 0..3 {
            state.enqueue(q, 3_000).unwrap();
        }
        // n_p stays 1, so queue 3 sees the full α·free threshold.
        let t = bm.threshold(3, &state);
        assert_eq!(t, state.free());
    }

    #[test]
    fn priority_classes_are_counted_separately() {
        let cfg = QueueConfig::uniform(4, GBPS_10, 1.0)
            .with_priority(2, 1)
            .with_priority(3, 1);
        let mut bm = Abm::new(cfg);
        let mut state = BufferState::new(400_000, 4);
        state.enqueue(2, 50_000).unwrap();
        bm.on_enqueue(2, 50_000, 0, &state);
        state.enqueue(3, 50_000).unwrap();
        bm.on_enqueue(3, 50_000, 0, &state);
        // Class 0 has no congested queues, so queue 0 sees n_p = 1.
        let t0 = bm.threshold(0, &state);
        let t2 = bm.threshold(2, &state);
        assert!(t0 > t2, "uncongested class should see larger threshold");
    }

    #[test]
    fn slow_draining_queue_gets_smaller_threshold() {
        let mut bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 2);
        state.enqueue(0, 10_000).unwrap();
        state.enqueue(1, 10_000).unwrap();
        bm.on_enqueue(0, 10_000, 0, &state);
        bm.on_enqueue(1, 10_000, 0, &state);
        // Queue 0 drains at line rate (1250 B/µs), queue 1 at 1/10 of it.
        let mut now = 0;
        for i in 0..3_000u64 {
            now += 1_000;
            bm.on_dequeue(0, 1_250, now, &state);
            if i % 10 == 0 {
                bm.on_dequeue(1, 1_250, now, &state);
            }
        }
        let t_fast = bm.threshold(0, &state);
        let t_slow = bm.threshold(1, &state);
        assert!(
            t_slow * 4 < t_fast,
            "slow queue threshold {t_slow} not ≪ fast {t_fast}"
        );
    }

    #[test]
    fn empty_queue_is_optimistic() {
        let mut bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 2);
        // Starve queue 0's estimator while it is empty for a long time.
        bm.on_dequeue(0, 1, 1, &state);
        bm.now_ns = 10_000_000;
        // Despite the decayed estimator, an empty queue gets μ = 1.
        state.enqueue(1, 50_000).unwrap();
        bm.on_enqueue(1, 50_000, bm.now_ns, &state);
        let t = bm.threshold(0, &state);
        assert_eq!(t, 50_000, "empty queue must see the full DT threshold");
    }

    #[test]
    fn backlogged_queue_mu_is_floored() {
        let mut bm = Abm::new(QueueConfig::uniform(1, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 1);
        state.enqueue(0, 10_000).unwrap();
        bm.on_enqueue(0, 10_000, 0, &state);
        // Never dequeues; move time far forward so the estimate decays.
        bm.now_ns = 1_000_000_000;
        let t = bm.threshold(0, &state);
        let expected_floor = (90_000.0 * MU_FLOOR) as u64;
        assert!(
            t >= expected_floor,
            "threshold {t} fell below the μ floor {expected_floor}"
        );
    }

    #[test]
    fn admit_rejects_over_threshold() {
        let mut bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 0.5));
        let mut state = BufferState::new(100_000, 2);
        state.enqueue(0, 30_000).unwrap();
        bm.on_enqueue(0, 30_000, 0, &state);
        // free = 70 000, T = 35 000 for a congested queue at full μ.
        assert_eq!(
            bm.admit(0, 10_000, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        assert_eq!(bm.admit(1, 10_000, &state), Verdict::Accept);
    }

    #[test]
    fn is_non_preemptive() {
        let mut bm = Abm::new(QueueConfig::uniform(1, GBPS_10, 1.0));
        let mut state = BufferState::new(1_000, 1);
        state.enqueue(0, 900).unwrap();
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.is_preemptive());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The incremental congested-count cache equals the full
            /// scan after every hook-paired mutation of a random
            /// enqueue/dequeue workload across two priority classes —
            /// the invariant that makes the O(1) threshold exact.
            #[test]
            fn cached_congested_count_matches_scan(
                ops in prop::collection::vec(
                    (0usize..6, 1u64..40_000, prop::bool::ANY),
                    1..200,
                )
            ) {
                let cfg = QueueConfig::uniform(6, GBPS_10, 1.0)
                    .with_priority(3, 1)
                    .with_priority(4, 1)
                    .with_priority(5, 1);
                let mut bm = Abm::new(cfg);
                let mut state = BufferState::new(300_000, 6);
                let mut now = 0;
                for (q, bytes, is_enq) in ops {
                    now += 500;
                    if is_enq {
                        if state.enqueue(q, bytes).is_ok() {
                            bm.on_enqueue(q, bytes, now, &state);
                        }
                    } else {
                        let take = bytes.min(state.queue_len(q));
                        if take > 0 {
                            state.dequeue(q, take).unwrap();
                            bm.on_dequeue(q, take, now, &state);
                        }
                    }
                    for p in 0u8..2 {
                        prop_assert_eq!(
                            bm.congested[p as usize] as usize,
                            bm.congested_in_class_scan(p, &state),
                            "class {} count drifted", p
                        );
                    }
                    // The threshold built on the cache equals the one
                    // built on the scan (the pre-cache formula).
                    let scratch = bm.cfg.alpha[q] * state.free() as f64
                        / bm.congested_in_class_scan(bm.cfg.priority[q], &state).max(1) as f64
                        * bm.mu(q, &state);
                    prop_assert_eq!(
                        bm.threshold(q, &state),
                        scratch.min(state.capacity() as f64) as u64
                    );
                }
            }
        }
    }
}
