//! ABM — Active Buffer Management (Addanki et al., SIGCOMM 2022).

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, RateEstimator, Verdict};

/// Default time constant for the per-queue drain-rate estimator.
const DEFAULT_TAU_NS: u64 = 100_000; // 100 µs

/// Lower clamp on the normalized dequeue rate `μ` for a backlogged queue.
///
/// Prevents a fully starved queue from computing a zero threshold, which
/// would wedge it permanently (its backlog could then never turn over).
const MU_FLOOR: f64 = 1.0 / 128.0;

/// Minimum backlog for a queue to count as *congested* in `n_p(t)`.
///
/// Transient few-packet backlogs (ECMP collisions, ACK bunching) must not
/// inflate the congested-queue count, or thresholds collapse and ABM's
/// burst tolerance falls below DT's — the opposite of its published
/// behavior. Ten full-size packets is a conservative signal of standing
/// congestion.
const CONGESTED_FLOOR_BYTES: u64 = 15_000;

/// Active Buffer Management — the strongest non-preemptive baseline.
///
/// ABM's threshold extends DT (paper §7, reference \[1\]):
///
/// ```text
/// T_q(t) = α_p · (B − ΣQ(t)) · 1/n_p(t) · μ_q(t)
/// ```
///
/// where `n_p(t)` is the number of congested queues in `q`'s priority
/// class and `μ_q(t)` is `q`'s dequeue rate normalized by its port
/// capacity. Dividing by `n_p` bounds the buffer a whole class can take;
/// scaling by `μ` shrinks the claim of slow-draining queues, which
/// mitigates (but, being non-preemptive, cannot eliminate — Fig. 15) the
/// buffer-choking problem.
///
/// Implementation notes (documented substitutions for the testbed version):
///
/// - `μ` comes from a [`RateEstimator`] (EWMA, τ = 100 µs) fed by
///   [`BufferManager::on_dequeue`]; an idle-to-active queue is re-seeded at
///   full port rate so fresh bursts are not starved, and a backlogged
///   queue's `μ` is clamped to a small floor (1/128) so it can still
///   drain.
/// - A queue is *congested* when its backlog exceeds a 15 KB floor;
///   `n_p ≥ 1`.
#[derive(Debug, Clone)]
pub struct Abm {
    cfg: QueueConfig,
    drain: Vec<RateEstimator>,
    now_ns: u64,
}

impl Abm {
    /// Creates an ABM instance with the default estimator time constant.
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_tau(cfg, DEFAULT_TAU_NS)
    }

    /// Creates an ABM instance with an explicit estimator time constant.
    pub fn with_tau(cfg: QueueConfig, tau_ns: u64) -> Self {
        cfg.validate();
        let drain = cfg
            .port_rate_bps
            .iter()
            .map(|&r| RateEstimator::new(tau_ns, r as f64))
            .collect();
        Abm {
            cfg,
            drain,
            now_ns: 0,
        }
    }

    /// Number of congested queues in priority class `p` (backlog above
    /// [`CONGESTED_FLOOR_BYTES`]).
    fn congested_in_class(&self, p: u8, state: &BufferState) -> usize {
        state
            .iter()
            .filter(|&(q, len)| len > CONGESTED_FLOOR_BYTES && self.cfg.priority[q] == p)
            .count()
            .max(1)
    }

    /// Normalized dequeue rate `μ_q ∈ [MU_FLOOR, 1]`.
    fn mu(&self, q: QueueId, state: &BufferState) -> f64 {
        if state.queue_len(q) == 0 {
            // An empty queue has no drain history that matters; be
            // optimistic so newly active queues get their fair claim.
            return 1.0;
        }
        let port = self.cfg.port_rate_bps[q] as f64;
        (self.drain[q].rate_bps(self.now_ns) / port).clamp(MU_FLOOR, 1.0)
    }
}

impl BufferManager for Abm {
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        let n_p = self.congested_in_class(self.cfg.priority[q], state) as f64;
        let t = self.cfg.alpha[q] * state.free() as f64 / n_p * self.mu(q, state);
        t.min(state.capacity() as f64) as u64
    }

    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.threshold(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn on_enqueue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        self.now_ns = now_ns;
        // Idle → active transition: seed the drain estimate at port rate.
        if state.queue_len(q) == len {
            let port = self.cfg.port_rate_bps[q] as f64;
            self.drain[q].reset(port, now_ns);
        }
    }

    fn on_dequeue(&mut self, q: QueueId, len: u64, now_ns: u64, _state: &BufferState) {
        self.now_ns = now_ns;
        self.drain[q].record(len, now_ns);
    }

    fn on_dequeue_many(
        &mut self,
        q: QueueId,
        len: u64,
        count: u64,
        now_ns: u64,
        _state: &BufferState,
    ) {
        // Bit-exact with `count` single records (see
        // `RateEstimator::record_many`), but the repeated same-timestamp
        // sample is priced once instead of per packet.
        if count > 0 {
            self.now_ns = now_ns;
        }
        self.drain[q].record_many(len, count, now_ns);
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "ABM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS_10: u64 = 10_000_000_000;

    /// The batched dequeue hook must be indistinguishable — to the bit —
    /// from the per-packet loop, including through the `AnyBm` dispatch
    /// the simulator actually calls.
    #[test]
    fn batched_dequeue_matches_loop_bit_exactly() {
        use crate::{AnyBm, BmKind};
        let mk = || BmKind::Abm.build(QueueConfig::uniform(2, GBPS_10, 2.0));
        let (mut a, mut b): (AnyBm, AnyBm) = (mk(), mk());
        let mut state = BufferState::new(1_000_000, 2);
        for _ in 0..6 {
            state.enqueue(0, 1_500).unwrap();
        }
        for bm in [&mut a, &mut b] {
            bm.on_enqueue(0, 1_500, 100, &state);
            bm.on_dequeue(0, 1_500, 2_000, &state);
        }
        // A port drains 5 equal packets within one nanosecond quantum.
        a.on_dequeue_many(0, 1_500, 5, 3_000, &state);
        for _ in 0..5 {
            b.on_dequeue(0, 1_500, 3_000, &state);
        }
        for now in [3_000, 50_000, 1_000_000] {
            assert_eq!(
                a.threshold(0, &state),
                b.threshold(0, &state),
                "thresholds diverged"
            );
            let _ = now;
        }
    }

    #[test]
    fn empty_buffer_full_rate_matches_dt() {
        // With one congested queue draining at full rate, ABM reduces to DT.
        let bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 2.0));
        let state = BufferState::new(1_000, 2);
        assert_eq!(bm.threshold(0, &state), 1_000); // capped at capacity
    }

    #[test]
    fn threshold_divides_among_congested_classmates() {
        let bm = Abm::new(QueueConfig::uniform(4, GBPS_10, 1.0));
        let mut state = BufferState::new(400_000, 4);
        let t1 = bm.threshold(0, &state);
        state.enqueue(0, 50_000).unwrap();
        state.enqueue(1, 50_000).unwrap();
        let t2 = bm.threshold(0, &state);
        // Two congested queues in the class: threshold roughly halves
        // (modulo the free-buffer change).
        assert!(
            t2 <= t1 / 2,
            "expected ~half of {t1}, got {t2} with two congested queues"
        );
    }

    #[test]
    fn tiny_backlogs_do_not_count_as_congested() {
        let bm = Abm::new(QueueConfig::uniform(4, GBPS_10, 1.0));
        let mut state = BufferState::new(400_000, 4);
        // Three queues with a couple of packets each: below the floor.
        for q in 0..3 {
            state.enqueue(q, 3_000).unwrap();
        }
        // n_p stays 1, so queue 3 sees the full α·free threshold.
        let t = bm.threshold(3, &state);
        assert_eq!(t, state.free());
    }

    #[test]
    fn priority_classes_are_counted_separately() {
        let cfg = QueueConfig::uniform(4, GBPS_10, 1.0)
            .with_priority(2, 1)
            .with_priority(3, 1);
        let bm = Abm::new(cfg);
        let mut state = BufferState::new(400_000, 4);
        state.enqueue(2, 50_000).unwrap();
        state.enqueue(3, 50_000).unwrap();
        // Class 0 has no congested queues, so queue 0 sees n_p = 1.
        let t0 = bm.threshold(0, &state);
        let t2 = bm.threshold(2, &state);
        assert!(t0 > t2, "uncongested class should see larger threshold");
    }

    #[test]
    fn slow_draining_queue_gets_smaller_threshold() {
        let mut bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 2);
        state.enqueue(0, 10_000).unwrap();
        state.enqueue(1, 10_000).unwrap();
        bm.on_enqueue(0, 10_000, 0, &state);
        bm.on_enqueue(1, 10_000, 0, &state);
        // Queue 0 drains at line rate (1250 B/µs), queue 1 at 1/10 of it.
        let mut now = 0;
        for i in 0..3_000u64 {
            now += 1_000;
            bm.on_dequeue(0, 1_250, now, &state);
            if i % 10 == 0 {
                bm.on_dequeue(1, 1_250, now, &state);
            }
        }
        let t_fast = bm.threshold(0, &state);
        let t_slow = bm.threshold(1, &state);
        assert!(
            t_slow * 4 < t_fast,
            "slow queue threshold {t_slow} not ≪ fast {t_fast}"
        );
    }

    #[test]
    fn empty_queue_is_optimistic() {
        let mut bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 2);
        // Starve queue 0's estimator while it is empty for a long time.
        bm.on_dequeue(0, 1, 1, &state);
        bm.now_ns = 10_000_000;
        // Despite the decayed estimator, an empty queue gets μ = 1.
        state.enqueue(1, 50_000).unwrap();
        let t = bm.threshold(0, &state);
        assert_eq!(t, 50_000, "empty queue must see the full DT threshold");
    }

    #[test]
    fn backlogged_queue_mu_is_floored() {
        let mut bm = Abm::new(QueueConfig::uniform(1, GBPS_10, 1.0));
        let mut state = BufferState::new(100_000, 1);
        state.enqueue(0, 10_000).unwrap();
        bm.on_enqueue(0, 10_000, 0, &state);
        // Never dequeues; move time far forward so the estimate decays.
        bm.now_ns = 1_000_000_000;
        let t = bm.threshold(0, &state);
        let expected_floor = (90_000.0 * MU_FLOOR) as u64;
        assert!(
            t >= expected_floor,
            "threshold {t} fell below the μ floor {expected_floor}"
        );
    }

    #[test]
    fn admit_rejects_over_threshold() {
        let bm = Abm::new(QueueConfig::uniform(2, GBPS_10, 0.5));
        let mut state = BufferState::new(100_000, 2);
        state.enqueue(0, 30_000).unwrap();
        // free = 70 000, T = 35 000 for a congested queue at full μ.
        assert_eq!(
            bm.admit(0, 10_000, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        assert_eq!(bm.admit(1, 10_000, &state), Verdict::Accept);
    }

    #[test]
    fn is_non_preemptive() {
        let mut bm = Abm::new(QueueConfig::uniform(1, GBPS_10, 1.0));
        let mut state = BufferState::new(1_000, 1);
        state.enqueue(0, 900).unwrap();
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.is_preemptive());
    }
}
