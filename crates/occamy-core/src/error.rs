//! Error type for buffer accounting operations.

use core::fmt;

/// Errors raised by shared-buffer accounting.
///
/// These indicate *caller* bugs (e.g. dequeuing more bytes than a queue
/// holds) and are surfaced as `Result`s so that the simulator and the
/// cycle-level traffic manager can assert conservation invariants instead
/// of silently corrupting statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// The queue index is out of range for this buffer partition.
    UnknownQueue {
        /// Offending queue index.
        queue: usize,
        /// Number of queues configured.
        num_queues: usize,
    },
    /// A dequeue/drop would remove more bytes than the queue holds.
    Underflow {
        /// Offending queue index.
        queue: usize,
        /// Bytes requested to remove.
        requested: u64,
        /// Bytes actually queued.
        available: u64,
    },
    /// An enqueue would exceed the physical buffer capacity.
    ///
    /// The BM admission check should prevent this; seeing it means the
    /// caller enqueued without consulting [`crate::BufferManager::admit`].
    Overflow {
        /// Bytes requested to add.
        requested: u64,
        /// Free bytes remaining.
        free: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::UnknownQueue { queue, num_queues } => {
                write!(f, "queue {queue} out of range (have {num_queues} queues)")
            }
            CoreError::Underflow {
                queue,
                requested,
                available,
            } => write!(
                f,
                "queue {queue} underflow: tried to remove {requested} B, holds {available} B"
            ),
            CoreError::Overflow { requested, free } => {
                write!(
                    f,
                    "buffer overflow: tried to add {requested} B, {free} B free"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = CoreError::Underflow {
            queue: 3,
            requested: 100,
            available: 40,
        };
        let s = e.to_string();
        assert!(s.contains("queue 3"));
        assert!(s.contains("100"));
        assert!(s.contains("40"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = CoreError::Overflow {
            requested: 1,
            free: 0,
        };
        let b = CoreError::Overflow {
            requested: 1,
            free: 0,
        };
        assert_eq!(a, b);
    }
}
