//! Shared-buffer occupancy accounting.

use crate::{CoreError, QueueId};

/// Occupancy statistics of one shared-buffer partition.
///
/// This mirrors the "Statistics" block of the traffic manager (paper
/// Fig. 1): per-queue byte counts plus the total occupancy, read by the
/// admission module and updated on every enqueue, dequeue and drop.
///
/// All quantities are in bytes. The structure enforces the two physical
/// invariants of a shared buffer:
///
/// 1. `total() == Σ queue_len(q)` (checked in debug builds on every update);
/// 2. `total() <= capacity()` — an enqueue beyond capacity is rejected with
///    [`CoreError::Overflow`].
#[derive(Debug, Clone)]
pub struct BufferState {
    capacity: u64,
    queue_len: Vec<u64>,
    total: u64,
}

impl BufferState {
    /// Creates an empty buffer of `capacity` bytes shared by `num_queues` queues.
    pub fn new(capacity: u64, num_queues: usize) -> Self {
        BufferState {
            capacity,
            queue_len: vec![0; num_queues],
            total: 0,
        }
    }

    /// Physical capacity `B` in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of queues sharing the buffer.
    #[inline]
    pub fn num_queues(&self) -> usize {
        self.queue_len.len()
    }

    /// Current total occupancy `Σ qᵢ(t)` in bytes.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Free buffer `B − Σ qᵢ(t)` in bytes.
    #[inline]
    pub fn free(&self) -> u64 {
        self.capacity - self.total
    }

    /// Length of queue `q` in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range; use [`BufferState::try_queue_len`]
    /// for a fallible variant.
    #[inline]
    pub fn queue_len(&self, q: QueueId) -> u64 {
        self.queue_len[q]
    }

    /// Fallible variant of [`BufferState::queue_len`].
    pub fn try_queue_len(&self, q: QueueId) -> Result<u64, CoreError> {
        self.queue_len
            .get(q)
            .copied()
            .ok_or(CoreError::UnknownQueue {
                queue: q,
                num_queues: self.queue_len.len(),
            })
    }

    /// Iterator over `(queue, length)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (QueueId, u64)> + '_ {
        self.queue_len.iter().copied().enumerate()
    }

    /// Number of queues with a non-zero backlog.
    pub fn active_queues(&self) -> usize {
        self.queue_len.iter().filter(|&&l| l > 0).count()
    }

    /// Index of the longest queue, ties broken by lowest index.
    ///
    /// Returns `None` when the buffer is empty. This is the oracle that
    /// Pushout needs and that the paper argues is expensive to maintain in
    /// hardware (Fig. 4); the cycle-level model in `occamy-hw` charges for
    /// it explicitly.
    pub fn longest_queue(&self) -> Option<QueueId> {
        let (idx, &len) = self
            .queue_len
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        if len == 0 {
            None
        } else {
            Some(idx)
        }
    }

    /// Adds `len` bytes to queue `q`.
    ///
    /// Fails with [`CoreError::Overflow`] if the buffer cannot hold the
    /// bytes — callers must run BM admission first.
    pub fn enqueue(&mut self, q: QueueId, len: u64) -> Result<(), CoreError> {
        if q >= self.queue_len.len() {
            return Err(CoreError::UnknownQueue {
                queue: q,
                num_queues: self.queue_len.len(),
            });
        }
        if self.total + len > self.capacity {
            return Err(CoreError::Overflow {
                requested: len,
                free: self.free(),
            });
        }
        self.queue_len[q] += len;
        self.total += len;
        self.debug_check();
        Ok(())
    }

    /// Removes `len` bytes from queue `q` (normal dequeue or head drop).
    pub fn dequeue(&mut self, q: QueueId, len: u64) -> Result<(), CoreError> {
        if q >= self.queue_len.len() {
            return Err(CoreError::UnknownQueue {
                queue: q,
                num_queues: self.queue_len.len(),
            });
        }
        if self.queue_len[q] < len {
            return Err(CoreError::Underflow {
                queue: q,
                requested: len,
                available: self.queue_len[q],
            });
        }
        self.queue_len[q] -= len;
        self.total -= len;
        self.debug_check();
        Ok(())
    }

    #[inline]
    fn debug_check(&self) {
        debug_assert_eq!(
            self.total,
            self.queue_len.iter().sum::<u64>(),
            "total occupancy out of sync with per-queue lengths"
        );
        debug_assert!(self.total <= self.capacity, "occupancy exceeds capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_empty() {
        let s = BufferState::new(1000, 4);
        assert_eq!(s.total(), 0);
        assert_eq!(s.free(), 1000);
        assert_eq!(s.num_queues(), 4);
        assert_eq!(s.active_queues(), 0);
        assert_eq!(s.longest_queue(), None);
    }

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let mut s = BufferState::new(1000, 2);
        s.enqueue(0, 300).unwrap();
        s.enqueue(1, 200).unwrap();
        assert_eq!(s.total(), 500);
        assert_eq!(s.queue_len(0), 300);
        assert_eq!(s.longest_queue(), Some(0));
        s.dequeue(0, 300).unwrap();
        assert_eq!(s.longest_queue(), Some(1));
        s.dequeue(1, 200).unwrap();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn overflow_is_rejected() {
        let mut s = BufferState::new(100, 1);
        s.enqueue(0, 60).unwrap();
        let err = s.enqueue(0, 41).unwrap_err();
        assert_eq!(
            err,
            CoreError::Overflow {
                requested: 41,
                free: 40
            }
        );
        // State unchanged after the failed enqueue.
        assert_eq!(s.total(), 60);
    }

    #[test]
    fn underflow_is_rejected() {
        let mut s = BufferState::new(100, 1);
        s.enqueue(0, 10).unwrap();
        let err = s.dequeue(0, 11).unwrap_err();
        assert_eq!(
            err,
            CoreError::Underflow {
                queue: 0,
                requested: 11,
                available: 10
            }
        );
    }

    #[test]
    fn unknown_queue_is_rejected() {
        let mut s = BufferState::new(100, 2);
        assert!(matches!(
            s.enqueue(2, 1),
            Err(CoreError::UnknownQueue { queue: 2, .. })
        ));
        assert!(matches!(
            s.dequeue(5, 1),
            Err(CoreError::UnknownQueue { queue: 5, .. })
        ));
        assert!(s.try_queue_len(2).is_err());
    }

    #[test]
    fn exact_fill_is_allowed() {
        let mut s = BufferState::new(100, 2);
        s.enqueue(0, 100).unwrap();
        assert_eq!(s.free(), 0);
        assert!(s.enqueue(1, 1).is_err());
    }

    #[test]
    fn longest_queue_tie_breaks_low_index() {
        let mut s = BufferState::new(1000, 3);
        s.enqueue(2, 100).unwrap();
        s.enqueue(1, 100).unwrap();
        assert_eq!(s.longest_queue(), Some(1));
    }

    #[test]
    fn active_queue_count_tracks_backlogs() {
        let mut s = BufferState::new(1000, 3);
        s.enqueue(0, 1).unwrap();
        s.enqueue(2, 5).unwrap();
        assert_eq!(s.active_queues(), 2);
        s.dequeue(0, 1).unwrap();
        assert_eq!(s.active_queues(), 1);
    }
}
