//! Time-decayed rate estimation (used by ABM's normalized dequeue rate).

/// Exponentially weighted moving-average rate estimator.
///
/// On every sample the previous estimate is decayed by `e^(−Δt/τ)` and the
/// new instantaneous rate is blended in; reads between samples apply the
/// same decay, so a queue that stops draining sees its estimated rate fall
/// toward zero with time constant `τ` rather than freezing at a stale
/// value. This matters for ABM: a low-priority queue starved by strict
/// priority must be *measured* as slow-draining for its threshold to
/// shrink (the mechanism ABM uses against buffer choking).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    tau_ns: f64,
    rate_bps: f64,
    last_ns: u64,
    /// Memo of the last `(dt, bytes)` sample and its derived
    /// `(decay, instantaneous rate)`. Paced traffic (CBR sources, a
    /// saturated port draining fixed-size packets) repeats the same
    /// sample shape on every packet, and `exp` was one of the few
    /// remaining per-packet transcendental calls on the hot path. The
    /// memo replays the *same* f64 values, so estimates are bit-for-bit
    /// unchanged.
    memo: (u64, u64, f64, f64),
}

impl RateEstimator {
    /// Creates an estimator with time constant `tau_ns`, seeded with
    /// `initial_bps` (optimistic seeding avoids starving fresh queues).
    pub fn new(tau_ns: u64, initial_bps: f64) -> Self {
        RateEstimator {
            tau_ns: tau_ns as f64,
            rate_bps: initial_bps,
            last_ns: 0,
            memo: (0, 0, 0.0, 0.0),
        }
    }

    /// Records `bytes` transferred at time `now_ns`.
    #[inline]
    pub fn record(&mut self, bytes: u64, now_ns: u64) {
        let dt_ns = now_ns.saturating_sub(self.last_ns).max(1);
        let (w, inst_bps) = if (dt_ns, bytes) == (self.memo.0, self.memo.1) {
            (self.memo.2, self.memo.3)
        } else {
            let dt = dt_ns as f64;
            let w = (-dt / self.tau_ns).exp();
            let inst_bps = bytes as f64 * 8.0 * 1e9 / dt;
            self.memo = (dt_ns, bytes, w, inst_bps);
            (w, inst_bps)
        };
        self.rate_bps = w * self.rate_bps + (1.0 - w) * inst_bps;
        self.last_ns = now_ns;
    }

    /// Records `count` transfers of `bytes` each, all at time `now_ns` —
    /// the shape of a port draining several equal-size packets within
    /// one timestamp quantum (head-drop bursts, synchronized incast
    /// departures).
    ///
    /// **Bit-exact** with calling [`RateEstimator::record`] `count`
    /// times: the first sample sees the real elapsed gap; each later
    /// sample sees the 1 ns floor, whose `(decay, instantaneous rate)`
    /// pair is derived once — through the same memo `record` would
    /// replay — and the EWMA blend is applied sequentially in the same
    /// float order. Equivalence is pinned by the memo-hit and memo-miss
    /// tests below.
    pub fn record_many(&mut self, bytes: u64, count: u64, now_ns: u64) {
        if count == 0 {
            return;
        }
        self.record(bytes, now_ns);
        if count == 1 {
            return;
        }
        // Samples 2..=count: `dt` floors at 1 ns. Replays exactly what
        // `record` would compute (and memoize) for (1, bytes).
        let (w, inst_bps) = if (1, bytes) == (self.memo.0, self.memo.1) {
            (self.memo.2, self.memo.3)
        } else {
            let dt = 1f64;
            let w = (-dt / self.tau_ns).exp();
            let inst_bps = bytes as f64 * 8.0 * 1e9 / dt;
            self.memo = (1, bytes, w, inst_bps);
            (w, inst_bps)
        };
        for _ in 1..count {
            self.rate_bps = w * self.rate_bps + (1.0 - w) * inst_bps;
        }
    }

    /// Current estimate in bits/s, decayed to time `now_ns`.
    pub fn rate_bps(&self, now_ns: u64) -> f64 {
        let dt = now_ns.saturating_sub(self.last_ns) as f64;
        self.rate_bps * (-dt / self.tau_ns).exp()
    }

    /// Resets the estimate to `bps` as of `now_ns` (used when a queue
    /// transitions from idle to active).
    pub fn reset(&mut self, bps: f64, now_ns: u64) {
        self.rate_bps = bps;
        self.last_ns = now_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000;

    #[test]
    fn steady_stream_converges_to_true_rate() {
        // 1250 bytes every 1 µs = 10 Gbps.
        let mut est = RateEstimator::new(100 * US, 0.0);
        let mut now = 0;
        for _ in 0..2_000 {
            now += US;
            est.record(1_250, now);
        }
        let r = est.rate_bps(now);
        assert!(
            (r - 1e10).abs() / 1e10 < 0.02,
            "expected ~10 Gbps, got {r:.3e}"
        );
    }

    #[test]
    fn silence_decays_estimate() {
        let mut est = RateEstimator::new(100 * US, 0.0);
        let mut now = 0;
        for _ in 0..1_000 {
            now += US;
            est.record(1_250, now);
        }
        let before = est.rate_bps(now);
        // Five time constants of silence: rate should fall below 1%.
        let later = now + 500 * US;
        let after = est.rate_bps(later);
        assert!(after < before * 0.01, "rate {after:.3e} did not decay");
    }

    #[test]
    fn optimistic_seed_persists_until_evidence() {
        let est = RateEstimator::new(100 * US, 1e10);
        // Immediately after seeding the estimate is the seed.
        assert!((est.rate_bps(0) - 1e10).abs() < 1.0);
    }

    #[test]
    fn reset_overrides_history() {
        let mut est = RateEstimator::new(100 * US, 0.0);
        est.record(10_000, 50 * US);
        est.reset(5e9, 100 * US);
        assert!((est.rate_bps(100 * US) - 5e9).abs() < 1.0);
    }

    /// `record_many` against the looped baseline when the repeated
    /// sample shape is already memoized (a paced stream whose last
    /// samples were 1 ns apart).
    #[test]
    fn record_many_matches_loop_on_memo_hit() {
        let mut a = RateEstimator::new(100 * US, 0.0);
        let mut b = RateEstimator::new(100 * US, 0.0);
        // Prime both with back-to-back same-size samples so the memo
        // holds (dt = 1, bytes = 1500) on entry.
        for e in [&mut a, &mut b] {
            e.record(1_500, 10);
            e.record(1_500, 10);
        }
        let now = 5 * US;
        a.record_many(1_500, 7, now);
        for _ in 0..7 {
            b.record(1_500, now);
        }
        assert_eq!(a.rate_bps(now).to_bits(), b.rate_bps(now).to_bits());
    }

    /// Same equivalence when the memo is cold (different sample shape
    /// before the burst) and across several batch sizes.
    #[test]
    fn record_many_matches_loop_on_memo_miss() {
        for count in [1u64, 2, 3, 16, 255] {
            let mut a = RateEstimator::new(100 * US, 2.5e9);
            let mut b = RateEstimator::new(100 * US, 2.5e9);
            for e in [&mut a, &mut b] {
                e.record(900, 3 * US); // leaves an unrelated memo
            }
            let now = 8 * US;
            a.record_many(64, count, now);
            for _ in 0..count {
                b.record(64, now);
            }
            assert_eq!(
                a.rate_bps(now).to_bits(),
                b.rate_bps(now).to_bits(),
                "diverged at count {count}"
            );
            // And the estimators remain interchangeable afterwards.
            a.record(1_500, 12 * US);
            b.record(1_500, 12 * US);
            assert_eq!(a.rate_bps(20 * US).to_bits(), b.rate_bps(20 * US).to_bits());
        }
    }

    #[test]
    fn record_many_zero_count_is_noop() {
        let mut e = RateEstimator::new(100 * US, 1e9);
        let before = e.rate_bps(0).to_bits();
        e.record_many(1_500, 0, 50 * US);
        // No sample recorded: the estimate still decays from t = 0.
        assert_eq!(e.rate_bps(0).to_bits(), before);
    }

    #[test]
    fn slower_stream_yields_lower_rate() {
        let mut fast = RateEstimator::new(100 * US, 0.0);
        let mut slow = RateEstimator::new(100 * US, 0.0);
        let mut now = 0;
        for i in 0..4_000u64 {
            now += US;
            fast.record(1_250, now);
            if i % 8 == 0 {
                slow.record(1_250, now);
            }
        }
        let (rf, rs) = (fast.rate_bps(now), slow.rate_bps(now));
        assert!(rs < rf / 4.0, "slow {rs:.3e} vs fast {rf:.3e}");
    }
}
