//! Over-allocation bitmap and round-robin cursor (paper Fig. 9, part 1 & 2).
//!
//! In hardware these are a row of comparators feeding a bitmap register and
//! a round-robin arbiter; `occamy-hw` models their cost, while this module
//! provides the behavioral implementation shared by all substrates.

/// A fixed-size bitmap with one bit per queue.
///
/// Bit `i` is set when queue `i` is over-allocated (its length exceeds the
/// DT threshold). Supports any number of queues, stored as 64-bit words so
/// scans cost `O(words)` like the priority-encoder trees they model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueBitmap {
    words: Vec<u64>,
    len: usize,
}

impl QueueBitmap {
    /// Creates an all-zero bitmap for `len` queues.
    pub fn new(len: usize) -> Self {
        QueueBitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of queues tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap tracks zero queues.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets or clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// First set bit at index `>= start`, wrapping around once.
    ///
    /// This is the software equivalent of a rotating priority encoder: the
    /// round-robin arbiter calls it with `start = last_grant + 1`.
    pub fn next_set_wrapping(&self, start: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let start = start % self.len;
        self.next_set_in(start, self.len)
            .or_else(|| self.next_set_in(0, start))
    }

    /// First set bit in `[from, to)`.
    fn next_set_in(&self, from: usize, to: usize) -> Option<usize> {
        let mut idx = from;
        while idx < to {
            let (w, b) = (idx / 64, idx % 64);
            // Mask off bits below the current position, then scan the word.
            let word = self.words[w] & !((1u64 << b) - 1);
            if word != 0 {
                let hit = w * 64 + word.trailing_zeros() as usize;
                if hit < to {
                    return Some(hit);
                }
                return None;
            }
            idx = (w + 1) * 64;
        }
        None
    }

    /// Iterator over set bit indices in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Round-robin grant cursor over a [`QueueBitmap`].
///
/// Mirrors the round-robin arbiter in the head-drop selector (Fig. 9 part
/// 2): each grant starts searching one past the previous grant so every
/// over-allocated queue is served in turn, which is what keeps Occamy's
/// expulsion fair without tracking the longest queue.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinCursor {
    next: usize,
}

impl RoundRobinCursor {
    /// Creates a cursor starting at queue 0.
    pub fn new() -> Self {
        RoundRobinCursor::default()
    }

    /// Grants the next set bit after the previous grant, advancing the
    /// cursor. Returns `None` when no bit is set.
    pub fn grant(&mut self, bitmap: &QueueBitmap) -> Option<usize> {
        let hit = bitmap.next_set_wrapping(self.next)?;
        self.next = (hit + 1) % bitmap.len().max(1);
        Some(hit)
    }

    /// The index the next search will start from.
    pub fn position(&self) -> usize {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut bm = QueueBitmap::new(130);
        assert!(!bm.any());
        bm.set(0, true);
        bm.set(64, true);
        bm.set(129, true);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        assert_eq!(bm.count_ones(), 3);
        bm.set(64, false);
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut bm = QueueBitmap::new(70);
        bm.set(3, true);
        bm.set(69, true);
        bm.clear();
        assert!(!bm.any());
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn next_set_wrapping_finds_forward_first() {
        let mut bm = QueueBitmap::new(8);
        bm.set(1, true);
        bm.set(5, true);
        assert_eq!(bm.next_set_wrapping(0), Some(1));
        assert_eq!(bm.next_set_wrapping(2), Some(5));
        assert_eq!(bm.next_set_wrapping(6), Some(1)); // wraps
        assert_eq!(bm.next_set_wrapping(5), Some(5));
    }

    #[test]
    fn next_set_across_word_boundary() {
        let mut bm = QueueBitmap::new(200);
        bm.set(150, true);
        assert_eq!(bm.next_set_wrapping(10), Some(150));
        assert_eq!(bm.next_set_wrapping(151), Some(150)); // wraps
    }

    #[test]
    fn empty_bitmap_grants_nothing() {
        let bm = QueueBitmap::new(16);
        assert_eq!(bm.next_set_wrapping(3), None);
        let mut cur = RoundRobinCursor::new();
        assert_eq!(cur.grant(&bm), None);
    }

    #[test]
    fn round_robin_visits_all_set_bits_in_turn() {
        let mut bm = QueueBitmap::new(8);
        for i in [1usize, 3, 6] {
            bm.set(i, true);
        }
        let mut cur = RoundRobinCursor::new();
        let grants: Vec<_> = (0..6).map(|_| cur.grant(&bm).unwrap()).collect();
        assert_eq!(grants, vec![1, 3, 6, 1, 3, 6]);
    }

    #[test]
    fn round_robin_adapts_to_bitmap_changes() {
        let mut bm = QueueBitmap::new(4);
        bm.set(0, true);
        bm.set(2, true);
        let mut cur = RoundRobinCursor::new();
        assert_eq!(cur.grant(&bm), Some(0));
        bm.set(0, false);
        bm.set(3, true);
        assert_eq!(cur.grant(&bm), Some(2));
        assert_eq!(cur.grant(&bm), Some(3));
        assert_eq!(cur.grant(&bm), Some(2));
    }

    #[test]
    fn iter_ones_ascending() {
        let mut bm = QueueBitmap::new(100);
        for i in [99usize, 0, 64, 63] {
            bm.set(i, true);
        }
        let ones: Vec<_> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 99]);
    }

    #[test]
    fn single_bit_round_robin_repeats() {
        let mut bm = QueueBitmap::new(3);
        bm.set(1, true);
        let mut cur = RoundRobinCursor::new();
        assert_eq!(cur.grant(&bm), Some(1));
        assert_eq!(cur.grant(&bm), Some(1));
    }
}
