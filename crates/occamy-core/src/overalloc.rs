//! Incremental over-allocation tracking (paper §4.3, Fig. 9 part 1).
//!
//! In hardware the over-allocation bitmap is a row of comparators that
//! refreshes every cycle; the original software port re-derived the whole
//! bitmap — one threshold computation per queue — on *every* victim
//! grant, which put an O(N) floating-point scan on the per-packet hot
//! path. This module maintains the same bitmap incrementally.
//!
//! The key observation: queue `q` is over-allocated iff
//! `len_q > T_q(free) = trunc(min(α_q · free, B))`, and `T_q` is monotone
//! in the free space. So each queue has a single integer *flip bound*
//! `bound_q` — the smallest `free` at which it is **not** over-allocated —
//! and the over-allocated set is exactly `{q : free < bound_q}`. Keeping
//! the queues sorted by `bound` makes that set a suffix of the order: a
//! change of free space moves one split index and touches only the queues
//! whose status actually flipped, and a length change repositions one
//! queue. Victim selection then never recomputes a threshold at all.

use crate::dt::dt_threshold;
use crate::maxtrack::MaxTracker;
use crate::{BufferState, QueueBitmap, QueueId};
use std::cmp::Reverse;

/// Tie-breaking key for the longest over-allocated queue: maximize
/// length, break ties toward the lowest queue index.
type LongestKey = (u64, Reverse<u32>);

/// Incrementally maintained over-allocation state for DT-thresholded
/// queues (Occamy's reactive path).
///
/// Driven by [`OverAllocTracker::on_len_change`] from the buffer-manager
/// bookkeeping hooks; [`OverAllocTracker::sync`] lazily (re)builds from
/// scratch when the tracker provably missed an update (capacity or total
/// occupancy mismatch), so a freshly constructed tracker needs no
/// explicit initialization.
#[derive(Debug, Clone)]
pub struct OverAllocTracker {
    alpha: Vec<f64>,
    /// `1/α` per queue, so the per-update flip-bound guess is a multiply
    /// instead of a divide.
    inv_alpha: Vec<f64>,
    /// `k` where `α = 2^k`, for the exact integer flip-bound fast path
    /// (every configuration in the paper uses power-of-two `α`).
    pow2: Vec<Option<i8>>,
    capacity: u64,
    total: u64,
    free: u64,
    lens: Vec<u64>,
    /// Smallest free-space value at which the queue is *not*
    /// over-allocated (`0` for an empty queue: it is never a victim).
    bounds: Vec<u64>,
    /// Queue ids sorted ascending by `(bound, id)`.
    order: Vec<u32>,
    /// Position of each queue in `order`.
    pos: Vec<u32>,
    /// First position in `order` whose bound exceeds `free`; everything
    /// at or after it is over-allocated.
    split: usize,
    bitmap: QueueBitmap,
    /// Longest-over-allocated tournament, maintained only when a caller
    /// needs it (the `Occamy-Longest` ablation).
    longest: Option<MaxTracker<LongestKey>>,
    synced: bool,
}

impl OverAllocTracker {
    /// Creates an unsynced tracker for queues with the given `α` values.
    pub fn new(alpha: Vec<f64>) -> Self {
        let n = alpha.len();
        let inv_alpha = alpha.iter().map(|&a| 1.0 / a).collect();
        let pow2 = alpha.iter().map(|&a| pow2_exponent(a)).collect();
        OverAllocTracker {
            alpha,
            inv_alpha,
            pow2,
            capacity: 0,
            total: 0,
            free: 0,
            lens: vec![0; n],
            bounds: vec![0; n],
            order: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            split: n,
            bitmap: QueueBitmap::new(n),
            longest: None,
            synced: false,
        }
    }

    /// Like [`OverAllocTracker::new`], additionally maintaining the
    /// longest over-allocated queue ([`OverAllocTracker::longest_over`]).
    pub fn with_longest(alpha: Vec<f64>) -> Self {
        let n = alpha.len();
        let mut t = Self::new(alpha);
        t.longest = Some(MaxTracker::new(n));
        t
    }

    /// Number of queues tracked.
    pub fn num_queues(&self) -> usize {
        self.lens.len()
    }

    /// The over-allocation bitmap (bit `q` set iff queue `q` exceeds its
    /// DT threshold at the last synchronized state).
    #[inline]
    pub fn bitmap(&self) -> &QueueBitmap {
        &self.bitmap
    }

    /// Number of over-allocated queues.
    #[inline]
    pub fn over_count(&self) -> usize {
        self.order.len() - self.split
    }

    /// The longest over-allocated queue (ties to the lowest index), or
    /// `None` when nothing is over-allocated.
    ///
    /// # Panics
    ///
    /// Panics if the tracker was not built with
    /// [`OverAllocTracker::with_longest`].
    #[inline]
    pub fn longest_over(&self) -> Option<QueueId> {
        let t = self
            .longest
            .as_ref()
            .expect("tracker built without longest-queue tracking");
        t.max().map(|(_, Reverse(q))| q as QueueId)
    }

    /// Ensures the tracker matches `state`, rebuilding from scratch when
    /// the cheap consistency probe (capacity + total occupancy) fails.
    ///
    /// Substrates that invoke the [`crate::BufferManager`] bookkeeping
    /// hooks on every enqueue/dequeue never trigger the rebuild.
    #[inline]
    pub fn sync(&mut self, state: &BufferState) {
        if !self.synced || self.capacity != state.capacity() || self.total != state.total() {
            self.rebuild(state);
        }
    }

    /// Recomputes everything from `state` in O(N log N).
    pub fn rebuild(&mut self, state: &BufferState) {
        self.capacity = state.capacity();
        self.total = state.total();
        self.free = state.free();
        for (q, len) in state.iter() {
            self.lens[q] = len;
            self.bounds[q] = self.bound_of(q, len);
        }
        self.order
            .sort_unstable_by_key(|&q| (self.bounds[q as usize], q));
        for (p, &q) in self.order.iter().enumerate() {
            self.pos[q as usize] = p as u32;
        }
        self.split = self
            .order
            .partition_point(|&q| self.bounds[q as usize] <= self.free);
        self.bitmap.clear();
        if let Some(longest) = &mut self.longest {
            longest.clear();
        }
        for p in self.split..self.order.len() {
            let q = self.order[p] as usize;
            self.bitmap.set(q, true);
            if let Some(longest) = &mut self.longest {
                longest.set(q, Some((self.lens[q], Reverse(q as u32))));
            }
        }
        self.synced = true;
    }

    /// Bookkeeping after queue `q`'s length changed (the hook path).
    ///
    /// Repositions `q` by its new flip bound, then sweeps the split index
    /// across the free-space change, touching only the queues whose
    /// over/under status flipped.
    #[inline]
    pub fn on_len_change(&mut self, q: QueueId, state: &BufferState) {
        if !self.synced || self.capacity != state.capacity() {
            self.rebuild(state);
            return;
        }
        let len = state.queue_len(q);
        self.total = state.total();
        self.lens[q] = len;
        let bound = self.bound_of(q, len);
        if bound != self.bounds[q] {
            self.reposition(q, bound);
        }
        self.set_free(state.free());
        // A length change of a still-over-allocated queue must reach the
        // longest-queue tournament even when no bit flipped.
        if let Some(longest) = &mut self.longest {
            if self.bitmap.get(q) {
                longest.set(q, Some((len, Reverse(q as u32))));
            }
        }
    }

    #[inline]
    fn bound_of(&self, q: QueueId, len: u64) -> u64 {
        match self.pow2[q] {
            // α = 2^k: the f64 product `α·F` is exact (dyadic times
            // integer), so the boundary has a closed integer form —
            // `min F with α·F ≥ len` — and the capacity clamp never
            // binds because `len ≤ capacity`.
            Some(k) if len > 0 => {
                if k >= 0 {
                    let k = k as u32;
                    (len + (1u64 << k) - 1) >> k
                } else {
                    {
                        let j = (-k) as u32;
                        if len.leading_zeros() >= j {
                            len << j
                        } else {
                            u64::MAX
                        }
                    }
                }
            }
            _ => flip_bound(len, self.alpha[q], self.inv_alpha[q], self.capacity),
        }
    }

    /// Moves `q` to the slot matching its new bound, keeping `order`
    /// sorted and the split index pointing at the same boundary value.
    ///
    /// Single-packet length changes barely move the bound, so the slot
    /// is found by bubbling from the old position — usually zero or one
    /// swap — rather than a binary search plus block move.
    fn reposition(&mut self, q: QueueId, bound: u64) {
        let old = self.pos[q] as usize;
        self.bounds[q] = bound;
        let key = (bound, q as u32);
        let mut new = old;
        while new + 1 < self.order.len() {
            let right = self.order[new + 1];
            if (self.bounds[right as usize], right) > key {
                break;
            }
            self.order[new] = right;
            self.pos[right as usize] = new as u32;
            new += 1;
        }
        if new == old {
            while new > 0 {
                let left = self.order[new - 1];
                if (self.bounds[left as usize], left) < key {
                    break;
                }
                self.order[new] = left;
                self.pos[left as usize] = new as u32;
                new -= 1;
            }
        }
        self.order[new] = q as u32;
        self.pos[q] = new as u32;
        // Removing q shrinks the under-allocated prefix if it lived
        // there; re-inserting grows it again iff its new bound keeps it
        // under. Sortedness guarantees the prefix stays contiguous.
        let was_over = self.bitmap.get(q);
        if old < self.split {
            self.split -= 1;
        }
        let is_over = bound > self.free;
        if !is_over {
            self.split += 1;
        }
        if is_over != was_over {
            self.flip(q, is_over);
        }
    }

    /// Moves the split to the new free-space value, flipping exactly the
    /// queues whose status changed.
    fn set_free(&mut self, free: u64) {
        self.free = free;
        while self.split > 0 && self.bounds[self.order[self.split - 1] as usize] > free {
            self.split -= 1;
            let q = self.order[self.split] as usize;
            self.flip(q, true);
        }
        while self.split < self.order.len() && self.bounds[self.order[self.split] as usize] <= free
        {
            let q = self.order[self.split] as usize;
            self.flip(q, false);
            self.split += 1;
        }
    }

    fn flip(&mut self, q: QueueId, over: bool) {
        self.bitmap.set(q, over);
        if let Some(longest) = &mut self.longest {
            longest.set(q, over.then_some((self.lens[q], Reverse(q as u32))));
        }
    }

    /// Verifies the incremental state against a from-scratch derivation;
    /// used by debug assertions and the equivalence property tests.
    pub fn is_consistent_with(&self, state: &BufferState) -> bool {
        if !self.synced {
            return false;
        }
        for (q, len) in state.iter() {
            let over = len > dt_threshold(self.alpha[q], state.free(), state.capacity());
            if self.bitmap.get(q) != over {
                return false;
            }
            if let Some(longest) = &self.longest {
                if longest.get(q) != over.then_some((len, Reverse(q as u32))) {
                    return false;
                }
            }
        }
        true
    }
}

/// `k` such that `alpha == 2^k` exactly, if any.
fn pow2_exponent(alpha: f64) -> Option<i8> {
    if !alpha.is_finite() || alpha <= 0.0 {
        return None;
    }
    let k = alpha.log2().round();
    if (-60.0..=60.0).contains(&k)
        && (k as i32 as f64 - k).abs() == 0.0
        && 2f64.powi(k as i32) == alpha
    {
        Some(k as i8)
    } else {
        None
    }
}

/// The smallest free-space value `F` at which a queue of `len` bytes and
/// control parameter `alpha` is *not* over-allocated, i.e. satisfies
/// `len <= trunc(min(alpha * F, capacity))`.
///
/// Computed with the *same* floating-point expression as the admission
/// threshold so the incremental bitmap is bit-for-bit identical to a
/// from-scratch comparator scan. The predicate is monotone in `F`, so an
/// f64 guess (`len · 1/α`, within a couple of units of the boundary)
/// plus a short exact probe in the right direction finds the integer
/// flip point — one or two threshold evaluations in the common case.
#[inline]
fn flip_bound(len: u64, alpha: f64, inv_alpha: f64, capacity: u64) -> u64 {
    if len == 0 {
        return 0; // empty queues are never over-allocated
    }
    if alpha <= 0.0 {
        return u64::MAX; // zero threshold: over-allocated at any free
    }
    let guess = len as f64 * inv_alpha;
    if guess >= u64::MAX as f64 {
        // len > α·u64::MAX ≥ α·free for any representable free space:
        // over-allocated everywhere (and the walk below must not start
        // from a saturated cast).
        return u64::MAX;
    }
    let mut f = guess as u64;
    if len <= dt_threshold(alpha, f, capacity) {
        while f > 0 && len <= dt_threshold(alpha, f - 1, capacity) {
            f -= 1;
        }
    } else {
        loop {
            f += 1;
            if len <= dt_threshold(alpha, f, capacity) {
                break;
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_bitmap(alpha: &[f64], state: &BufferState) -> Vec<bool> {
        state
            .iter()
            .map(|(q, len)| len > dt_threshold(alpha[q], state.free(), state.capacity()))
            .collect()
    }

    #[test]
    fn flip_bound_is_exact_boundary() {
        for &alpha in &[0.25f64, 0.5, 1.0, 2.0, 7.77, 8.0] {
            for len in [1u64, 7, 100, 999, 4_001, 65_536] {
                let b = flip_bound(len, alpha, 1.0 / alpha, 1 << 40);
                assert!(
                    len <= dt_threshold(alpha, b, 1 << 40),
                    "α={alpha} len={len}: not ok at bound {b}"
                );
                if b > 0 {
                    assert!(
                        len > dt_threshold(alpha, b - 1, 1 << 40),
                        "α={alpha} len={len}: already ok below bound {b}"
                    );
                }
            }
        }
        assert_eq!(flip_bound(0, 1.0, 1.0, 1_000), 0);
        assert_eq!(flip_bound(5, 0.0, f64::INFINITY, 1_000), u64::MAX);
    }

    #[test]
    fn tracks_random_walk_exactly() {
        let alpha = vec![0.5, 1.0, 2.0, 8.0];
        let mut t = OverAllocTracker::with_longest(alpha.clone());
        let mut state = BufferState::new(50_000, 4);
        let mut x = 42u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let q = (x % 4) as usize;
            let amount = x % 3_000 + 1;
            if x & 8 == 0 {
                if state.enqueue(q, amount).is_err() {
                    continue;
                }
            } else {
                let take = amount.min(state.queue_len(q));
                if take == 0 {
                    continue;
                }
                state.dequeue(q, take).unwrap();
            }
            t.on_len_change(q, &state);
            assert!(t.is_consistent_with(&state));
            let scratch = scratch_bitmap(&alpha, &state);
            for (q, &over) in scratch.iter().enumerate() {
                assert_eq!(t.bitmap().get(q), over);
            }
            assert_eq!(t.over_count(), scratch.iter().filter(|&&o| o).count());
        }
    }

    #[test]
    fn lazy_sync_rebuilds_after_untracked_mutation() {
        let mut t = OverAllocTracker::new(vec![1.0; 3]);
        let mut state = BufferState::new(3_000, 3);
        state.enqueue(0, 2_500).unwrap(); // free = 500 < len ⇒ over
        t.sync(&state);
        assert!(t.bitmap().get(0));
        assert!(!t.bitmap().get(1));
        state.dequeue(0, 2_400).unwrap(); // no hook: total changed
        t.sync(&state);
        assert!(!t.bitmap().get(0), "sync must notice the stale total");
    }

    #[test]
    fn longest_over_breaks_ties_low() {
        let mut t = OverAllocTracker::with_longest(vec![0.25; 3]);
        let mut state = BufferState::new(3_000, 3);
        for q in 0..3 {
            state.enqueue(q, 700).unwrap();
            t.on_len_change(q, &state);
        }
        // free = 900, T = 225: all over; equal lengths ⇒ queue 0.
        assert_eq!(t.longest_over(), Some(0));
        state.enqueue(2, 100).unwrap();
        t.on_len_change(2, &state);
        assert_eq!(t.longest_over(), Some(2));
        assert!(t.is_consistent_with(&state));
    }
}
