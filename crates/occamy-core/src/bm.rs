//! The [`BufferManager`] trait and scheme-independent configuration.

use crate::{
    Abm, BShare, BufferState, CompleteSharing, Damq, DynamicThreshold, Occamy, Pushout, QueueId,
    StaticThreshold,
};

/// Admission decision for an arriving packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admit the packet into its queue.
    Accept,
    /// Drop the arriving packet (tail drop).
    Drop(DropReason),
    /// Admit the packet *after* evicting enough bytes from
    /// [`BufferManager::select_victim`] queues to make room.
    ///
    /// Only synchronous-preemption schemes (Pushout) return this; Occamy
    /// decouples admission from expulsion and never blocks an enqueue on
    /// an eviction (paper §4.1, idea 1).
    Evict,
}

/// Why an arriving packet was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The physical buffer has no room for the packet.
    BufferFull,
    /// The packet's queue is at or above its dynamic threshold.
    OverThreshold,
}

/// Per-queue static configuration shared by all BM schemes.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// `α` control parameter per queue (paper Eq. 1). Usually a power of
    /// two so hardware can compute `α · free` with a shift.
    pub alpha: Vec<f64>,
    /// Drain capacity of each queue's egress port in bits/s (used by ABM's
    /// normalized dequeue rate).
    pub port_rate_bps: Vec<u64>,
    /// Scheduling priority class per queue (0 = highest). ABM counts
    /// congested queues per priority class.
    pub priority: Vec<u8>,
}

impl QueueConfig {
    /// A configuration with `n` queues, all with the same `alpha` and all
    /// attached to ports of `port_rate_bps`.
    pub fn uniform(n: usize, port_rate_bps: u64, alpha: f64) -> Self {
        QueueConfig {
            alpha: vec![alpha; n],
            port_rate_bps: vec![port_rate_bps; n],
            priority: vec![0; n],
        }
    }

    /// Number of queues configured.
    pub fn num_queues(&self) -> usize {
        self.alpha.len()
    }

    /// Sets `alpha` for one queue (builder style).
    pub fn with_alpha(mut self, q: QueueId, alpha: f64) -> Self {
        self.alpha[q] = alpha;
        self
    }

    /// Sets the priority class for one queue (builder style).
    pub fn with_priority(mut self, q: QueueId, prio: u8) -> Self {
        self.priority[q] = prio;
        self
    }

    /// Asserts internal vectors have equal lengths.
    ///
    /// # Panics
    ///
    /// Panics if the per-queue vectors disagree in length.
    pub fn validate(&self) {
        assert_eq!(self.alpha.len(), self.port_rate_bps.len());
        assert_eq!(self.alpha.len(), self.priority.len());
    }
}

/// How a preemptive scheme picks the next queue to head-drop from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Iterate over all over-allocated queues in round-robin order
    /// (Occamy's default; cheap in hardware, paper §4.3).
    RoundRobin,
    /// Always pick the longest over-allocated queue (the ablation variant
    /// of paper §6.4 / Fig. 21; needs a Maximum Finder in hardware).
    Longest,
}

/// A buffer-management scheme.
///
/// The scheme never owns occupancy state — the substrate (simulator or
/// cycle-level TM) owns a [`BufferState`] and passes it in. Schemes keep
/// only their private auxiliary state (round-robin cursors, drain-rate
/// estimators), which keeps one implementation usable from both substrates.
pub trait BufferManager {
    /// Admission threshold `T(t)` for queue `q`, in bytes.
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64;

    /// Decides the fate of a `len`-byte packet arriving for queue `q`.
    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict;

    /// Bookkeeping hook invoked after a packet is enqueued.
    ///
    /// Substrates must call this after **every** occupancy increase:
    /// preemptive schemes maintain their victim-selection state (the
    /// over-allocation bitmap, longest-queue tournaments) incrementally
    /// from these hooks instead of rescanning all queues per grant. A
    /// missed update is caught by a cheap consistency probe inside
    /// [`BufferManager::select_victim`] (and by debug assertions), at
    /// the cost of a full rebuild.
    fn on_enqueue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        let _ = (q, len, now_ns, state);
    }

    /// Bookkeeping hook invoked after a packet leaves (dequeue or drop).
    ///
    /// Same contract as [`BufferManager::on_enqueue`]: required after
    /// every occupancy decrease.
    fn on_dequeue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        let _ = (q, len, now_ns, state);
    }

    /// Batched [`BufferManager::on_dequeue`]: `count` equal-size packets
    /// leaving queue `q` at one timestamp — the shape of a port (or a
    /// drop burst) draining back-to-back within a nanosecond quantum.
    /// `state` must already reflect all `count` departures.
    ///
    /// The default loops over `on_dequeue`; schemes that feed rate
    /// estimators from this hook (ABM's per-queue drain EWMA) override
    /// it with [`crate::RateEstimator::record_many`], which is bit-exact
    /// with the loop but prices the repeated sample once. Only safe for
    /// schemes whose dequeue hook does not feed victim selection
    /// between departures (preemptive trackers need the per-packet
    /// default).
    ///
    /// The discrete-event simulator deliberately does **not** call this
    /// from its drop loops today: the schemes reachable there (Occamy,
    /// Pushout) re-select a victim after every departure, so their
    /// hooks must run per packet, and ABM — the one scheme with a rate
    /// estimator — is never preempted. The hook exists so a batching
    /// substrate (a cycle-level TM draining same-size cell runs, or a
    /// future coalesced drain path) gets the cheap bit-exact update
    /// without re-deriving the equivalence argument; until then its
    /// contract is pinned by the ABM/`AnyBm` equivalence tests and the
    /// `transport_hot` microbenches.
    fn on_dequeue_many(
        &mut self,
        q: QueueId,
        len: u64,
        count: u64,
        now_ns: u64,
        state: &BufferState,
    ) {
        for _ in 0..count {
            self.on_dequeue(q, len, now_ns, state);
        }
    }

    /// Picks a queue to head-drop from, or `None` if no queue is
    /// over-allocated (non-preemptive schemes always return `None`).
    fn select_victim(&mut self, state: &BufferState) -> Option<QueueId>;

    /// Whether this scheme ever expels already-admitted packets.
    fn is_preemptive(&self) -> bool {
        false
    }

    /// Short human-readable name used in experiment output.
    fn name(&self) -> &'static str;
}

/// Identifier for constructing any of the built-in schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmKind {
    /// Dynamic Threshold.
    Dt,
    /// Occamy with round-robin expulsion.
    Occamy,
    /// Occamy with longest-queue expulsion (Fig. 21 ablation).
    OccamyLongest,
    /// Active Buffer Management.
    Abm,
    /// Pushout.
    Pushout,
    /// Per-queue static threshold.
    Static,
    /// Complete sharing (admit whenever there is space).
    CompleteSharing,
    /// BShare (delay-driven buffer sharing).
    BShare,
    /// DAMQ (reserved-minimum + shared-pool allocation).
    Damq,
}

/// Scheme-specific tuning knobs. The defaults reproduce each scheme's
/// canonical constants (`BShare::new` / `Damq::new`), so a default
/// `BmTuning` is byte-identical to not tuning at all; schemes without
/// knobs ignore it entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BmTuning {
    /// BShare's delay target `d` in nanoseconds.
    pub bshare_delay_ns: u64,
    /// DAMQ's reserved fraction `ρ` in permille.
    pub damq_reserve_permille: u32,
}

impl Default for BmTuning {
    fn default() -> Self {
        BmTuning {
            bshare_delay_ns: BShare::DEFAULT_DELAY_TARGET_NS,
            damq_reserve_permille: Damq::DEFAULT_RESERVE_PERMILLE,
        }
    }
}

impl BmKind {
    /// All schemes compared in the paper's end-to-end evaluation.
    pub const EVALUATED: [BmKind; 4] = [BmKind::Occamy, BmKind::Abm, BmKind::Dt, BmKind::Pushout];

    /// Instantiates the scheme with the given queue configuration.
    pub fn build(self, cfg: QueueConfig) -> AnyBm {
        self.build_tuned(cfg, BmTuning::default())
    }

    /// Instantiates the scheme with explicit tuning knobs; schemes
    /// without knobs behave exactly as [`BmKind::build`].
    pub fn build_tuned(self, cfg: QueueConfig, tuning: BmTuning) -> AnyBm {
        match self {
            BmKind::Dt => AnyBm::Dt(DynamicThreshold::new(cfg)),
            BmKind::Occamy => AnyBm::Occamy(Occamy::new(cfg)),
            BmKind::OccamyLongest => AnyBm::Occamy(Occamy::with_policy(cfg, VictimPolicy::Longest)),
            BmKind::Abm => AnyBm::Abm(Abm::new(cfg)),
            BmKind::Pushout => AnyBm::Pushout(Pushout::new(cfg)),
            BmKind::Static => AnyBm::Static(StaticThreshold::fair_share(cfg)),
            BmKind::CompleteSharing => AnyBm::CompleteSharing(CompleteSharing::new(cfg)),
            BmKind::BShare => AnyBm::BShare(BShare::with_delay_target(cfg, tuning.bshare_delay_ns)),
            BmKind::Damq => AnyBm::Damq(Damq::with_reserve_permille(
                cfg,
                tuning.damq_reserve_permille,
            )),
        }
    }
}

/// Enum dispatch over the built-in schemes.
///
/// Using an enum (rather than `Box<dyn BufferManager>`) keeps the hot
/// admission path monomorphic and the simulator `Clone`-able.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
// Occamy's inline victim-selection state makes its variant the largest;
// one AnyBm exists per buffer partition, so boxing it would only add a
// pointer chase to the per-packet dispatch.
#[allow(clippy::large_enum_variant)]
pub enum AnyBm {
    Dt(DynamicThreshold),
    Occamy(Occamy),
    Abm(Abm),
    Pushout(Pushout),
    Static(StaticThreshold),
    CompleteSharing(CompleteSharing),
    BShare(BShare),
    Damq(Damq),
}

macro_rules! dispatch {
    ($self:ident, $inner:ident => $body:expr) => {
        match $self {
            AnyBm::Dt($inner) => $body,
            AnyBm::Occamy($inner) => $body,
            AnyBm::Abm($inner) => $body,
            AnyBm::Pushout($inner) => $body,
            AnyBm::Static($inner) => $body,
            AnyBm::CompleteSharing($inner) => $body,
            AnyBm::BShare($inner) => $body,
            AnyBm::Damq($inner) => $body,
        }
    };
}

impl BufferManager for AnyBm {
    #[inline]
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        dispatch!(self, bm => bm.threshold(q, state))
    }

    #[inline]
    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        dispatch!(self, bm => bm.admit(q, len, state))
    }

    #[inline]
    fn on_enqueue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        dispatch!(self, bm => bm.on_enqueue(q, len, now_ns, state))
    }

    #[inline]
    fn on_dequeue(&mut self, q: QueueId, len: u64, now_ns: u64, state: &BufferState) {
        dispatch!(self, bm => bm.on_dequeue(q, len, now_ns, state))
    }

    #[inline]
    fn on_dequeue_many(
        &mut self,
        q: QueueId,
        len: u64,
        count: u64,
        now_ns: u64,
        state: &BufferState,
    ) {
        dispatch!(self, bm => bm.on_dequeue_many(q, len, count, now_ns, state))
    }

    #[inline]
    fn select_victim(&mut self, state: &BufferState) -> Option<QueueId> {
        dispatch!(self, bm => bm.select_victim(state))
    }

    fn is_preemptive(&self) -> bool {
        dispatch!(self, bm => bm.is_preemptive())
    }

    fn name(&self) -> &'static str {
        dispatch!(self, bm => bm.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_config_shape() {
        let cfg = QueueConfig::uniform(8, 10_000_000_000, 1.0);
        cfg.validate();
        assert_eq!(cfg.num_queues(), 8);
        assert!(cfg.alpha.iter().all(|&a| (a - 1.0).abs() < 1e-12));
    }

    #[test]
    fn builder_overrides() {
        let cfg = QueueConfig::uniform(4, 1, 1.0)
            .with_alpha(2, 8.0)
            .with_priority(3, 1);
        assert_eq!(cfg.alpha[2], 8.0);
        assert_eq!(cfg.priority[3], 1);
        assert_eq!(cfg.priority[0], 0);
    }

    #[test]
    fn kind_builds_matching_scheme() {
        let cfg = QueueConfig::uniform(2, 1_000, 1.0);
        for kind in [
            BmKind::Dt,
            BmKind::Occamy,
            BmKind::OccamyLongest,
            BmKind::Abm,
            BmKind::Pushout,
            BmKind::Static,
            BmKind::CompleteSharing,
            BmKind::BShare,
            BmKind::Damq,
        ] {
            let bm = kind.build(cfg.clone());
            assert!(!bm.name().is_empty());
            match kind {
                BmKind::Occamy | BmKind::OccamyLongest | BmKind::Pushout => {
                    assert!(bm.is_preemptive())
                }
                _ => assert!(!bm.is_preemptive()),
            }
        }
    }

    #[test]
    fn evaluated_set_matches_paper() {
        assert_eq!(BmKind::EVALUATED.len(), 4);
        assert!(BmKind::EVALUATED.contains(&BmKind::Occamy));
        assert!(BmKind::EVALUATED.contains(&BmKind::Pushout));
    }
}
