//! Occamy — the paper's preemptive buffer management scheme.

use crate::{
    BufferManager, BufferState, DynamicThreshold, OverAllocTracker, QueueBitmap, QueueConfig,
    QueueId, RoundRobinCursor, Verdict, VictimPolicy,
};

/// Occamy: DT admission plus reactive round-robin packet expulsion.
///
/// Occamy combines two components (paper §4.1):
///
/// - **Proactive**: admission is plain [`DynamicThreshold`] with a large
///   `α` (the paper recommends `α = 8`), reserving only a small fraction of
///   free buffer (`B / (1 + αN)`) because the reactive path can vacate
///   buffer quickly for newly active queues.
/// - **Reactive**: a queue is *over-allocated* iff its length exceeds its
///   current threshold `T(t)`. An [`OverAllocTracker`] maintains the
///   over-allocation bitmap *incrementally* from the
///   [`BufferManager::on_enqueue`] / [`BufferManager::on_dequeue`]
///   bookkeeping hooks — the software analogue of the paper's per-cycle
///   comparator row (§4.3, Fig. 9) — and [`Occamy::select_victim`] grants
///   victims in round-robin order without recomputing a single threshold.
///
/// Unlike Pushout, admission never waits for an expulsion: `admit` only
/// ever answers `Accept` or `Drop` (idea 1 of §4.1), so the enqueue
/// pipeline stays simple.
///
/// # Hook contract
///
/// The substrate must invoke `on_enqueue` / `on_dequeue` after every
/// occupancy change, as `occamy-sim` and `occamy-hw` do. A substrate that
/// mutated the [`BufferState`] behind the scheme's back can call
/// [`Occamy::resync`]; `select_victim` also re-derives everything from
/// scratch when its cheap consistency probe (capacity + total occupancy)
/// detects a missed update.
#[derive(Debug, Clone)]
pub struct Occamy {
    dt: DynamicThreshold,
    policy: VictimPolicy,
    cursor: RoundRobinCursor,
    tracker: OverAllocTracker,
}

impl Occamy {
    /// Recommended admission `α` from the paper's §4.4 / §6.3 analysis.
    pub const RECOMMENDED_ALPHA: f64 = 8.0;

    /// Creates Occamy with round-robin victim selection.
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_policy(cfg, VictimPolicy::RoundRobin)
    }

    /// Creates Occamy with an explicit victim policy (the `Longest`
    /// variant is the Fig. 21 ablation).
    pub fn with_policy(cfg: QueueConfig, policy: VictimPolicy) -> Self {
        let alpha = cfg.alpha.clone();
        let tracker = match policy {
            VictimPolicy::RoundRobin => OverAllocTracker::new(alpha),
            // The ablation needs the longest over-allocated queue, so the
            // tracker also maintains its max-length tournament.
            VictimPolicy::Longest => OverAllocTracker::with_longest(alpha),
        };
        Occamy {
            dt: DynamicThreshold::new(cfg),
            policy,
            cursor: RoundRobinCursor::new(),
            tracker,
        }
    }

    /// The victim-selection policy in use.
    pub fn policy(&self) -> VictimPolicy {
        self.policy
    }

    /// Read-only view of the incrementally maintained over-allocation
    /// bitmap (for instrumentation and tests). Fresh as of the last
    /// bookkeeping hook or [`Occamy::select_victim`] call.
    pub fn bitmap(&self) -> &QueueBitmap {
        self.tracker.bitmap()
    }

    /// Rebuilds the incremental victim-selection state from `state`.
    ///
    /// Only needed after mutating the buffer state *without* the
    /// [`BufferManager`] bookkeeping hooks (the equivalence property
    /// tests use it to compare against a from-scratch derivation).
    pub fn resync(&mut self, state: &BufferState) {
        self.tracker.rebuild(state);
    }
}

impl BufferManager for Occamy {
    #[inline]
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        self.dt.threshold(q, state)
    }

    #[inline]
    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        // Admission is exactly DT (paper §4.2): no new mechanism, only an
        // adjusted α supplied through the queue configuration.
        self.dt.admit(q, len, state)
    }

    #[inline]
    fn on_enqueue(&mut self, q: QueueId, _len: u64, _now_ns: u64, state: &BufferState) {
        self.tracker.on_len_change(q, state);
    }

    #[inline]
    fn on_dequeue(&mut self, q: QueueId, _len: u64, _now_ns: u64, state: &BufferState) {
        self.tracker.on_len_change(q, state);
    }

    #[inline]
    fn select_victim(&mut self, state: &BufferState) -> Option<QueueId> {
        self.tracker.sync(state);
        debug_assert!(
            self.tracker.is_consistent_with(state),
            "over-allocation tracker diverged from buffer state \
             (bookkeeping hooks not invoked?)"
        );
        if self.tracker.over_count() == 0 {
            // Common case on the per-packet path: nothing over-allocated.
            return None;
        }
        match self.policy {
            VictimPolicy::RoundRobin => self.cursor.grant(self.tracker.bitmap()),
            VictimPolicy::Longest => self.tracker.longest_over(),
        }
    }

    fn is_preemptive(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        match self.policy {
            VictimPolicy::RoundRobin => "Occamy",
            VictimPolicy::Longest => "Occamy-Longest",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(alpha: f64) -> (Occamy, BufferState) {
        let cfg = QueueConfig::uniform(4, 10_000_000_000, alpha);
        (Occamy::new(cfg), BufferState::new(4_000, 4))
    }

    /// Enqueue plus the bookkeeping hook, as a substrate would do.
    fn enq(bm: &mut Occamy, state: &mut BufferState, q: QueueId, len: u64) {
        state.enqueue(q, len).unwrap();
        bm.on_enqueue(q, len, 0, state);
    }

    /// Dequeue plus the bookkeeping hook.
    fn deq(bm: &mut Occamy, state: &mut BufferState, q: QueueId, len: u64) {
        state.dequeue(q, len).unwrap();
        bm.on_dequeue(q, len, 0, state);
    }

    #[test]
    fn admission_matches_dt() {
        let (bm, state) = setup(1.0);
        let dt = DynamicThreshold::new(QueueConfig::uniform(4, 10_000_000_000, 1.0));
        for len in [1u64, 100, 1_000, 4_000, 5_000] {
            assert_eq!(bm.admit(0, len, &state), dt.admit(0, len, &state));
        }
    }

    #[test]
    fn no_victim_when_under_threshold() {
        let (mut bm, mut state) = setup(8.0);
        enq(&mut bm, &mut state, 0, 1_000);
        // T = 8 * 3000 = capped at capacity; queue 0 is far below it.
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.bitmap().any());
    }

    #[test]
    fn over_allocated_queue_becomes_victim() {
        let (mut bm, mut state) = setup(1.0);
        // Fill queue 0 to 3000: free = 1000, T = 1000 < 3000 ⇒ over-allocated.
        enq(&mut bm, &mut state, 0, 3_000);
        assert_eq!(bm.select_victim(&state), Some(0));
        assert!(bm.bitmap().get(0));
    }

    #[test]
    fn round_robin_across_over_allocated_queues() {
        let (mut bm, mut state) = setup(0.25);
        // All four queues hold 600; free = 1600, T = 400 ⇒ all over-allocated.
        for q in 0..4 {
            enq(&mut bm, &mut state, q, 600);
        }
        let grants: Vec<_> = (0..8).map(|_| bm.select_victim(&state).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn longest_policy_picks_longest_over_allocated() {
        let cfg = QueueConfig::uniform(3, 1, 0.25);
        let mut bm = Occamy::with_policy(cfg, VictimPolicy::Longest);
        let mut state = BufferState::new(3_000, 3);
        enq(&mut bm, &mut state, 0, 700);
        enq(&mut bm, &mut state, 1, 900);
        enq(&mut bm, &mut state, 2, 800);
        // free = 600, T = 150: all over-allocated; longest is queue 1.
        assert_eq!(bm.select_victim(&state), Some(1));
        // Longest policy is stateless: repeated calls return the same queue.
        assert_eq!(bm.select_victim(&state), Some(1));
        assert_eq!(bm.name(), "Occamy-Longest");
    }

    #[test]
    fn victim_disappears_once_drained_below_threshold() {
        let (mut bm, mut state) = setup(1.0);
        enq(&mut bm, &mut state, 0, 3_000);
        assert_eq!(bm.select_victim(&state), Some(0));
        // Drain 2500: queue = 500, free = 3500, T = 3500 ⇒ no longer over.
        deq(&mut bm, &mut state, 0, 2_500);
        assert_eq!(bm.select_victim(&state), None);
    }

    #[test]
    fn select_victim_resyncs_after_untracked_mutation() {
        // Mutating the state behind the scheme's back (no hooks) must be
        // caught by the consistency probe, not silently mis-selected.
        let (mut bm, mut state) = setup(1.0);
        state.enqueue(0, 3_000).unwrap();
        assert_eq!(bm.select_victim(&state), Some(0));
        state.dequeue(0, 2_500).unwrap();
        assert_eq!(bm.select_victim(&state), None);
    }

    #[test]
    fn expulsion_lets_newcomer_reach_fair_share() {
        // The headline behavior (paper Fig. 11): queue 0 is entrenched at a
        // high occupancy; when queue 1 activates, repeated head drops of
        // queue 0 must release buffer until both hold the fair share.
        let (mut bm, mut state) = setup(8.0);
        // Entrench queue 0 at its solo steady state: q = αB/(1+α) = 3555.
        while bm.admit(0, 1, &state) == Verdict::Accept {
            enq(&mut bm, &mut state, 0, 1);
        }
        let entrenched = state.queue_len(0);
        assert!(entrenched > 3_500);
        // Queue 1 activates; interleave arrivals with expulsions.
        let mut q1_accepted = 0u64;
        for _ in 0..40_000 {
            if bm.admit(1, 1, &state) == Verdict::Accept {
                enq(&mut bm, &mut state, 1, 1);
                q1_accepted += 1;
            }
            if let Some(victim) = bm.select_victim(&state) {
                deq(&mut bm, &mut state, victim, 1);
            }
        }
        // Fair share for 2 congested queues: αB/(1+2α) = 1882.
        let fair = (8.0 * 4_000.0 / 17.0) as u64;
        assert!(
            q1_accepted >= fair * 9 / 10,
            "queue 1 only reached {q1_accepted} of fair {fair}"
        );
        let q0 = state.queue_len(0);
        assert!(
            q0 < entrenched && q0 <= fair * 11 / 10,
            "queue 0 still entrenched at {q0} (fair share {fair})"
        );
    }

    #[test]
    fn recommended_alpha_is_eight() {
        assert_eq!(Occamy::RECOMMENDED_ALPHA, 8.0);
    }
}
