//! Buffer-management (BM) algorithms for on-chip shared-memory switches.
//!
//! This crate implements the algorithmic contribution of *"Occamy: A
//! Preemptive Buffer Management for On-chip Shared-memory Switches"*
//! (EuroSys 2025) together with the baselines it is evaluated against:
//!
//! - [`DynamicThreshold`] — the de-facto non-preemptive BM (Choudhury &
//!   Hahne, ToN 1998). The admission threshold of every queue is
//!   `T(t) = α · (B − Σqᵢ(t))`, proportional to the free buffer.
//! - [`Occamy`] — the paper's preemptive BM. It reuses DT for admission
//!   (with a large `α`, default 8) and adds a *reactive* expulsion path
//!   that head-drops packets from all over-allocated queues (queues whose
//!   length exceeds their threshold) in round-robin order, consuming only
//!   redundant memory bandwidth.
//! - [`Abm`] — Active Buffer Management (SIGCOMM 2022), a non-preemptive
//!   baseline whose threshold also scales with the number of congested
//!   queues per priority and each queue's normalized drain rate.
//! - [`Pushout`] — the classically optimal preemptive BM: admit whenever
//!   there is free space; when full, evict from the longest queue.
//! - [`BShare`] — delay-driven buffer sharing: caps each queue's backlog
//!   at a target queueing delay times its measured drain rate.
//! - [`Damq`] — DAMQ-style reserved-minimum + shared-pool allocation.
//! - [`StaticThreshold`] and [`CompleteSharing`] — context baselines.
//!
//! The algorithms are substrate-independent value types: the same code is
//! driven by the cycle-level traffic manager in `occamy-hw` and by the
//! packet-level network simulator in `occamy-sim`.
//!
//! # Quickstart
//!
//! ```
//! use occamy_core::{BufferManager, BufferState, Occamy, QueueConfig, Verdict};
//!
//! // A 12 KB shared buffer with two queues on a 10 Gbps port.
//! let cfg = QueueConfig::uniform(2, 10_000_000_000, 8.0);
//! let mut state = BufferState::new(12_000, 2);
//! let mut bm = Occamy::new(cfg);
//!
//! // An empty buffer admits a packet into queue 0.
//! assert_eq!(bm.admit(0, 1_500, &state), Verdict::Accept);
//! state.enqueue(0, 1_500).unwrap();
//!
//! // No queue exceeds its threshold yet, so there is nothing to expel.
//! assert_eq!(bm.select_victim(&state), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abm;
mod bitmap;
mod bm;
mod bshare;
mod damq;
mod dt;
mod error;
mod maxtrack;
mod occamy;
mod overalloc;
mod pushout;
mod rate;
mod state;
mod static_threshold;
mod token_bucket;

pub use abm::Abm;
pub use bitmap::{QueueBitmap, RoundRobinCursor};
pub use bm::{
    AnyBm, BmKind, BmTuning, BufferManager, DropReason, QueueConfig, Verdict, VictimPolicy,
};
pub use bshare::BShare;
pub use damq::Damq;
pub use dt::DynamicThreshold;
pub use error::CoreError;
pub use maxtrack::MaxTracker;
pub use occamy::Occamy;
pub use overalloc::OverAllocTracker;
pub use pushout::Pushout;
pub use rate::RateEstimator;
pub use state::BufferState;
pub use static_threshold::{CompleteSharing, StaticThreshold};
pub use token_bucket::TokenBucket;

/// Queue identifier within one shared-buffer partition.
pub type QueueId = usize;
