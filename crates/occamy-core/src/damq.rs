//! DAMQ — dynamically-allocated multi-queue buffer sharing
//! (Tamir & Frazier, ToC 1992; NoC variant: Jamali & Khademzadeh, 2009).

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, Verdict};

/// DAMQ-style reserved-minimum + shared-pool allocation.
///
/// The buffer is split in two at a construction-time ratio: a reserved
/// fraction `ρ` of the buffer (default ½, the classic DAMQ design
/// point) is divided evenly into private per-queue reservations
/// `R = ρ·B / N` each queue can always fill, and the remainder
/// `S = B − N·R` is a common pool any queue may claim
/// first-come-first-served. A queue's admission threshold is therefore
///
/// ```text
/// T_q(t) = R + excess_q(t) + (S − Σᵢ excessᵢ(t))
/// excess_i(t) = max(len_i(t) − R, 0)
/// ```
///
/// — its reservation, plus what it already borrowed, plus whatever is
/// left of the pool. Unlike DT the threshold does not shrink with free
/// buffer symmetrically: a queue can never be denied its reservation
/// (no starvation), but once the pool is spent no queue grows past
/// `R + excess_q`, which bounds monopolization exactly at `R + S`.
///
/// The pool accounting `Σ excessᵢ` is maintained *incrementally* from
/// the enqueue/dequeue hooks (each mutation adjusts the sum by the
/// change in that queue's excess), so `threshold` — called on every
/// admit — is O(1) instead of a scan over the partition's queues.
/// Debug builds cross-check the cache against the scan on every
/// threshold call, and a proptest drives random workloads through both.
///
/// The `α` knob is accepted for interface uniformity but unused: DAMQ
/// predates dynamic thresholds and allocates by reservation, not by a
/// free-space multiplier.
#[derive(Debug, Clone)]
pub struct Damq {
    cfg: QueueConfig,
    /// Reserved fraction of the buffer in permille (`ρ · 1000`).
    reserve_permille: u32,
    /// Cached `Σᵢ max(len_i − R, 0)` — bytes of shared pool in use.
    excess_sum: u64,
}

impl Damq {
    /// The default reservation split (`ρ = ½`, i.e. 500 ‰) — exported so
    /// callers that make the split tunable (e.g. the `damq_reserve_frac`
    /// grid knob) can reproduce `Damq::new` exactly at the default point.
    pub const DEFAULT_RESERVE_PERMILLE: u32 = 500;

    /// Creates a DAMQ manager with the classic half/half split.
    pub fn new(cfg: QueueConfig) -> Self {
        Self::with_reserve_permille(cfg, Self::DEFAULT_RESERVE_PERMILLE)
    }

    /// Creates a DAMQ manager reserving `reserve_permille / 1000` of the
    /// buffer (split evenly across queues); the rest is the shared pool.
    pub fn with_reserve_permille(cfg: QueueConfig, reserve_permille: u32) -> Self {
        cfg.validate();
        assert!(
            (1..=999).contains(&reserve_permille),
            "DAMQ reserve split must be in (0, 1) exclusive, got {reserve_permille} permille"
        );
        Damq {
            cfg,
            reserve_permille,
            excess_sum: 0,
        }
    }

    /// Per-queue reservation: the reserved fraction of the buffer divided
    /// evenly (`ρ = ½` by default; the remainder forms the shared pool).
    /// Integer permille arithmetic so the default reproduces the classic
    /// `B / 2N` byte-exactly.
    fn reservation(&self, state: &BufferState) -> u64 {
        (state.capacity() * self.reserve_permille as u64 / 1000) / self.cfg.num_queues() as u64
    }

    /// Shared-pool bytes in use by full scan — the reference the
    /// incremental cache is checked against (debug assert + proptest).
    fn excess_sum_scan(&self, state: &BufferState) -> u64 {
        let r = self.reservation(state);
        state.iter().map(|(_, len)| len.saturating_sub(r)).sum()
    }
}

impl BufferManager for Damq {
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        debug_assert_eq!(
            self.excess_sum,
            self.excess_sum_scan(state),
            "shared-pool cache drifted from the scan"
        );
        let r = self.reservation(state);
        let pool = state.capacity() - r * self.cfg.num_queues() as u64;
        let excess_q = state.queue_len(q).saturating_sub(r);
        // Saturate: substrates that bypass admission (tests, pushout
        // interleavings) can briefly overdraw the pool.
        (r + excess_q + pool.saturating_sub(self.excess_sum)).min(state.capacity())
    }

    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.threshold(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn on_enqueue(&mut self, q: QueueId, len: u64, _now_ns: u64, state: &BufferState) {
        // `state` already reflects the enqueue.
        let r = self.reservation(state);
        let new_len = state.queue_len(q);
        self.excess_sum += new_len.saturating_sub(r) - (new_len - len).saturating_sub(r);
    }

    fn on_dequeue(&mut self, q: QueueId, len: u64, _now_ns: u64, state: &BufferState) {
        let r = self.reservation(state);
        let new_len = state.queue_len(q);
        self.excess_sum -= (new_len + len).saturating_sub(r) - new_len.saturating_sub(r);
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "DAMQ"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_threshold_is_reservation_plus_pool() {
        // B = 80 000, N = 4 → R = 10 000, S = 40 000.
        let bm = Damq::new(QueueConfig::uniform(4, 1_000, 1.0));
        let state = BufferState::new(80_000, 4);
        assert_eq!(bm.threshold(0, &state), 50_000);
    }

    #[test]
    fn reservation_survives_pool_exhaustion() {
        let mut bm = Damq::new(QueueConfig::uniform(4, 1_000, 1.0));
        let mut state = BufferState::new(80_000, 4);
        // Queue 0 takes its reservation plus the whole 40 KB pool.
        state.enqueue(0, 50_000).unwrap();
        bm.on_enqueue(0, 50_000, 0, &state);
        // Queue 0 is pinned at exactly its current claim...
        assert_eq!(bm.threshold(0, &state), 50_000);
        assert_eq!(
            bm.admit(0, 1, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        // ...but every other queue still gets its full 10 KB reservation.
        assert_eq!(bm.threshold(1, &state), 10_000);
        assert_eq!(bm.admit(1, 10_000, &state), Verdict::Accept);
    }

    #[test]
    fn pool_is_first_come_first_served() {
        let mut bm = Damq::new(QueueConfig::uniform(2, 1_000, 1.0));
        let mut state = BufferState::new(40_000, 2);
        // R = 10 000, S = 20 000. Queue 0 borrows 5 KB of pool.
        state.enqueue(0, 15_000).unwrap();
        bm.on_enqueue(0, 15_000, 0, &state);
        // Queue 1 sees its reservation plus the remaining 15 KB of pool.
        assert_eq!(bm.threshold(1, &state), 25_000);
        // Releasing queue 0's borrow restores the pool.
        state.dequeue(0, 6_000).unwrap();
        bm.on_dequeue(0, 6_000, 0, &state);
        assert_eq!(bm.threshold(1, &state), 30_000);
    }

    #[test]
    fn reserve_split_is_tunable_and_default_matches_classic() {
        // B = 80 000, N = 4. ρ = 0.25 → R = 5 000, S = 60 000.
        let bm = Damq::with_reserve_permille(QueueConfig::uniform(4, 1_000, 1.0), 250);
        let state = BufferState::new(80_000, 4);
        assert_eq!(bm.threshold(0, &state), 65_000);
        // ρ = 0.75 → R = 15 000, S = 20 000.
        let bm = Damq::with_reserve_permille(QueueConfig::uniform(4, 1_000, 1.0), 750);
        assert_eq!(bm.threshold(0, &state), 35_000);
        // The default permille reproduces the classic B / 2N reservation
        // byte-exactly, including the floor on an odd capacity.
        let classic = Damq::new(QueueConfig::uniform(4, 1_000, 1.0));
        let odd = BufferState::new(80_001, 4);
        assert_eq!(classic.reservation(&odd), 80_001 / (2 * 4));
    }

    #[test]
    fn is_non_preemptive() {
        let mut bm = Damq::new(QueueConfig::uniform(2, 1_000, 1.0));
        let mut state = BufferState::new(10_000, 2);
        state.enqueue(0, 9_000).unwrap();
        bm.on_enqueue(0, 9_000, 0, &state);
        assert_eq!(bm.select_victim(&state), None);
        assert!(!bm.is_preemptive());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The incremental shared-pool cache equals the full scan
            /// after every hook-paired mutation of a random workload,
            /// and the O(1) threshold equals the from-scratch formula —
            /// the invariant that makes DAMQ admission exact.
            #[test]
            fn cached_pool_usage_matches_scan(
                ops in prop::collection::vec(
                    (0usize..6, 1u64..40_000, prop::bool::ANY),
                    1..200,
                )
            ) {
                let mut bm = Damq::new(QueueConfig::uniform(6, 1_000, 1.0));
                let mut state = BufferState::new(300_000, 6);
                for (q, bytes, is_enq) in ops {
                    if is_enq {
                        if state.enqueue(q, bytes).is_ok() {
                            bm.on_enqueue(q, bytes, 0, &state);
                        }
                    } else {
                        let take = bytes.min(state.queue_len(q));
                        if take > 0 {
                            state.dequeue(q, take).unwrap();
                            bm.on_dequeue(q, take, 0, &state);
                        }
                    }
                    prop_assert_eq!(bm.excess_sum, bm.excess_sum_scan(&state));
                    // The threshold built on the cache equals the one
                    // built on the scan (the pre-cache formula).
                    let r = bm.reservation(&state);
                    let pool = state.capacity() - r * 6;
                    let scratch = (r
                        + state.queue_len(q).saturating_sub(r)
                        + pool.saturating_sub(bm.excess_sum_scan(&state)))
                    .min(state.capacity());
                    prop_assert_eq!(bm.threshold(q, &state), scratch);
                }
            }
        }
    }
}
