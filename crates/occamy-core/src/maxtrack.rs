//! Incremental maximum tracking — the software analogue of the paper's
//! Maximum Finder (Fig. 4).
//!
//! Pushout needs "the longest queue" on every eviction and the
//! `Occamy-Longest` ablation needs "the longest over-allocated queue" on
//! every grant. Scanning all queues per decision is O(N); a tournament
//! tree updates one leaf in O(log N) and answers the maximum in O(1),
//! which is exactly how the hardware Maximum Finder amortizes its
//! comparator tree across cycles.

/// A tournament (max) tree over `n` slots holding optional keys.
///
/// Empty slots (`None`) lose every comparison. Keys should embed the slot
/// index (e.g. `(len, Reverse(queue))`) so ties break deterministically
/// and the winner identifies itself.
#[derive(Debug, Clone)]
pub struct MaxTracker<K: Ord + Copy> {
    /// `tree[base + i]` is leaf `i`; `tree[k]` is the max of its children.
    tree: Vec<Option<K>>,
    base: usize,
    len: usize,
}

impl<K: Ord + Copy> MaxTracker<K> {
    /// Creates a tracker with `n` empty slots.
    pub fn new(n: usize) -> Self {
        let base = n.next_power_of_two().max(1);
        MaxTracker {
            tree: vec![None; 2 * base],
            base,
            len: n,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tracker has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets slot `i` to `key` (or clears it with `None`) and replays the
    /// tournament along the leaf-to-root path.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, key: Option<K>) {
        assert!(i < self.len, "slot {i} out of range {}", self.len);
        let mut node = self.base + i;
        self.tree[node] = key;
        while node > 1 {
            node /= 2;
            let replay = self.tree[2 * node].max(self.tree[2 * node + 1]);
            if self.tree[node] == replay {
                break;
            }
            self.tree[node] = replay;
        }
    }

    /// Current key of slot `i`.
    pub fn get(&self, i: usize) -> Option<K> {
        self.tree[self.base + i]
    }

    /// The maximum key over all occupied slots, or `None` if all empty.
    #[inline]
    pub fn max(&self) -> Option<K> {
        self.tree[1]
    }

    /// Clears every slot.
    pub fn clear(&mut self) {
        self.tree.iter_mut().for_each(|k| *k = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn empty_tracker_has_no_max() {
        let t: MaxTracker<u64> = MaxTracker::new(8);
        assert_eq!(t.max(), None);
        assert_eq!(t.len(), 8);
        assert!(!t.is_empty());
    }

    #[test]
    fn max_follows_updates() {
        let mut t = MaxTracker::new(5);
        t.set(0, Some(10u64));
        t.set(3, Some(40));
        t.set(4, Some(25));
        assert_eq!(t.max(), Some(40));
        t.set(3, Some(5));
        assert_eq!(t.max(), Some(25));
        t.set(4, None);
        assert_eq!(t.max(), Some(10));
        t.set(0, None);
        assert_eq!(t.max(), Some(5));
        t.set(3, None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn ties_break_via_embedded_index() {
        // (len, Reverse(queue)): equal lengths prefer the lowest queue.
        let mut t = MaxTracker::new(4);
        for q in 0..4u32 {
            t.set(q as usize, Some((7u64, Reverse(q))));
        }
        assert_eq!(t.max(), Some((7, Reverse(0))));
        t.set(0, None);
        assert_eq!(t.max(), Some((7, Reverse(1))));
    }

    #[test]
    fn non_power_of_two_and_single_slot() {
        let mut t = MaxTracker::new(1);
        assert_eq!(t.max(), None);
        t.set(0, Some(3u64));
        assert_eq!(t.max(), Some(3));
        let mut t7 = MaxTracker::new(7);
        for i in 0..7u64 {
            t7.set(i as usize, Some(i));
        }
        assert_eq!(t7.max(), Some(6));
        t7.clear();
        assert_eq!(t7.max(), None);
    }

    #[test]
    fn matches_naive_scan_under_random_updates() {
        // Deterministic pseudo-random update sequence.
        let mut t = MaxTracker::new(13);
        let mut shadow = vec![None; 13];
        let mut x = 0x9E3779B97F4A7C15u64;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let i = (x % 13) as usize;
            let key = if x & 1 == 0 {
                Some(((x >> 8) % 1_000, Reverse(i as u32)))
            } else {
                None
            };
            t.set(i, key);
            shadow[i] = key;
            assert_eq!(t.max(), shadow.iter().flatten().max().copied());
        }
    }
}
