//! Static-threshold and complete-sharing context baselines (paper §7).

use crate::{BufferManager, BufferState, DropReason, QueueConfig, QueueId, Verdict};

/// Static per-queue thresholds (SMXQ-family, Irland 1978).
///
/// Each queue may hold at most a fixed number of bytes regardless of the
/// buffer's overall occupancy. Simple and perfectly isolating, but either
/// wastes buffer (small thresholds) or loses isolation (thresholds whose
/// sum exceeds `B`); the paper cites this family as the pre-DT state of
/// the art.
#[derive(Debug, Clone)]
pub struct StaticThreshold {
    cfg: QueueConfig,
    limits: Vec<u64>,
}

impl StaticThreshold {
    /// Creates static thresholds with explicit per-queue byte limits.
    ///
    /// # Panics
    ///
    /// Panics if `limits.len() != cfg.num_queues()`.
    pub fn new(cfg: QueueConfig, limits: Vec<u64>) -> Self {
        cfg.validate();
        assert_eq!(limits.len(), cfg.num_queues(), "one limit per queue");
        StaticThreshold { cfg, limits }
    }

    /// The queue configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Creates static thresholds at the fair share `B/N`.
    ///
    /// The capacity is not known until the first `admit`/`threshold` call,
    /// so the fair share is computed on demand from the passed-in state;
    /// this constructor records a sentinel meaning "fair share".
    pub fn fair_share(cfg: QueueConfig) -> Self {
        let n = cfg.num_queues();
        StaticThreshold {
            cfg,
            limits: vec![u64::MAX; n],
        }
    }

    fn limit(&self, q: QueueId, state: &BufferState) -> u64 {
        let raw = self.limits[q];
        if raw == u64::MAX {
            state.capacity() / state.num_queues().max(1) as u64
        } else {
            raw
        }
    }
}

impl BufferManager for StaticThreshold {
    fn threshold(&self, q: QueueId, state: &BufferState) -> u64 {
        self.limit(q, state)
    }

    fn admit(&self, q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if state.queue_len(q) + len > self.limit(q, state) {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        Verdict::Accept
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "Static"
    }
}

/// Complete sharing: admit whenever the buffer has room.
///
/// Maximally efficient, zero isolation — one queue can monopolize the
/// whole buffer. Included as the no-management endpoint of the design
/// space.
#[derive(Debug, Clone)]
pub struct CompleteSharing {
    cfg: QueueConfig,
}

impl CompleteSharing {
    /// Creates a complete-sharing instance.
    pub fn new(cfg: QueueConfig) -> Self {
        cfg.validate();
        CompleteSharing { cfg }
    }

    /// The queue configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }
}

impl BufferManager for CompleteSharing {
    fn threshold(&self, _q: QueueId, state: &BufferState) -> u64 {
        state.capacity()
    }

    fn admit(&self, _q: QueueId, len: u64, state: &BufferState) -> Verdict {
        if state.total() + len > state.capacity() {
            Verdict::Drop(DropReason::BufferFull)
        } else {
            Verdict::Accept
        }
    }

    fn select_victim(&mut self, _state: &BufferState) -> Option<QueueId> {
        None
    }

    fn name(&self) -> &'static str {
        "CompleteSharing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_enforces_fixed_limits() {
        let cfg = QueueConfig::uniform(2, 1, 1.0);
        let bm = StaticThreshold::new(cfg, vec![300, 700]);
        let mut state = BufferState::new(1_000, 2);
        assert_eq!(bm.admit(0, 300, &state), Verdict::Accept);
        state.enqueue(0, 300).unwrap();
        assert_eq!(
            bm.admit(0, 1, &state),
            Verdict::Drop(DropReason::OverThreshold)
        );
        assert_eq!(bm.admit(1, 700, &state), Verdict::Accept);
    }

    #[test]
    fn fair_share_splits_capacity_evenly() {
        let bm = StaticThreshold::fair_share(QueueConfig::uniform(4, 1, 1.0));
        let state = BufferState::new(1_000, 4);
        assert_eq!(bm.threshold(0, &state), 250);
        assert_eq!(bm.threshold(3, &state), 250);
    }

    #[test]
    #[should_panic(expected = "one limit per queue")]
    fn limit_count_must_match_queues() {
        StaticThreshold::new(QueueConfig::uniform(2, 1, 1.0), vec![100]);
    }

    #[test]
    fn complete_sharing_admits_until_full() {
        let bm = CompleteSharing::new(QueueConfig::uniform(2, 1, 1.0));
        let mut state = BufferState::new(1_000, 2);
        state.enqueue(0, 999).unwrap();
        assert_eq!(bm.admit(1, 1, &state), Verdict::Accept);
        state.enqueue(1, 1).unwrap();
        assert_eq!(
            bm.admit(1, 1, &state),
            Verdict::Drop(DropReason::BufferFull)
        );
    }

    #[test]
    fn neither_is_preemptive() {
        let mut s = StaticThreshold::fair_share(QueueConfig::uniform(1, 1, 1.0));
        let mut c = CompleteSharing::new(QueueConfig::uniform(1, 1, 1.0));
        let mut state = BufferState::new(100, 1);
        state.enqueue(0, 100).unwrap();
        assert_eq!(s.select_victim(&state), None);
        assert_eq!(c.select_victim(&state), None);
    }
}
