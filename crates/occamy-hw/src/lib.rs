//! Cell-level traffic-manager model and hardware circuits for Occamy.
//!
//! This crate models the parts of a shared-memory switch chip that the
//! paper's hardware discussion covers:
//!
//! - [`CellPointerMemory`], [`PdMemory`], [`PdQueue`] — the three-memory
//!   buffer structure of Fig. 2 (cell data, cell pointers with a free
//!   list, packet descriptors organized as per-queue linked lists);
//! - [`TrafficManager`] — enqueue/dequeue/head-drop on top of those
//!   memories with per-memory access accounting, demonstrating that a head
//!   drop never touches the cell *data* memory (§3.2, reason 2);
//! - [`DequeuePipeline`] — the 5-operation dequeue pipeline of Fig. 10,
//!   its head-drop recomposition, and the interruption semantics of §4.5;
//! - [`HeadDropSelector`], [`RoundRobinArbiter`], [`FixedPriorityArbiter`]
//!   — the circuits of Fig. 9;
//! - [`MaxFinder`] — the binary comparator tree of Fig. 4 that makes
//!   Pushout expensive (Difficulty 3);
//! - [`cost`] — an analytic gate-level cost model calibrated against the
//!   paper's Table 1 (Vivado + FreePDK45 numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod cells;
pub mod cost;
mod maxfinder;
mod pd;
mod pipeline;
mod selector;
mod tm;

pub use arbiter::{FixedPriorityArbiter, Requester, RoundRobinArbiter};
pub use cells::{CellPointerMemory, CellPtr, CELL_SIZE};
pub use maxfinder::MaxFinder;
pub use pd::{PacketDescriptor, PdMemory, PdPtr, PdQueue};
pub use pipeline::{DequeuePipeline, InterruptOutcome, PipelineCost};
pub use selector::HeadDropSelector;
pub use tm::{EnqueueOutcome, MemoryAccessStats, TmStats, TrafficManager};
