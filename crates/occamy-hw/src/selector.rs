//! Head-drop selector circuit (paper Fig. 9).

use crate::RoundRobinArbiter;
use occamy_core::QueueBitmap;

/// The head-drop selector: comparators → bitmap → round-robin arbiter.
///
/// Part ① maintains a bitmap with one bit per queue, set when the queue's
/// length exceeds the shared threshold `T(t)` — a row of cheap
/// comparators. Part ② iterates over the set bits with a round-robin
/// arbiter, yielding the index of the next queue to head-drop from.
///
/// The paper implements this in 215 lines of Verilog for 64 queues; it
/// dominates Occamy's hardware cost (Table 1: ~1262 LUTs). The
/// behavioral model here is driven by the cycle-level
/// [`crate::TrafficManager`] and by `occamy-sim`'s expulsion process.
#[derive(Debug, Clone)]
pub struct HeadDropSelector {
    bitmap: QueueBitmap,
    arbiter: RoundRobinArbiter,
}

impl HeadDropSelector {
    /// Creates a selector for `n` queues.
    pub fn new(n: usize) -> Self {
        HeadDropSelector {
            bitmap: QueueBitmap::new(n),
            arbiter: RoundRobinArbiter::new(n),
        }
    }

    /// Number of queues monitored.
    pub fn num_queues(&self) -> usize {
        self.bitmap.len()
    }

    /// Refreshes the over-allocation bitmap from queue lengths and
    /// per-queue thresholds (the comparator row, part ① of Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from the selector width.
    pub fn refresh(&mut self, qlens: &[u64], thresholds: &[u64]) {
        assert_eq!(qlens.len(), self.bitmap.len(), "qlen width mismatch");
        assert_eq!(
            thresholds.len(),
            self.bitmap.len(),
            "threshold width mismatch"
        );
        for (q, (&len, &t)) in qlens.iter().zip(thresholds).enumerate() {
            self.bitmap.set(q, len > t);
        }
    }

    /// Refreshes against a single shared threshold (the common case in
    /// Fig. 9, where all queues compare against one `T(t)`).
    pub fn refresh_shared(&mut self, qlens: &[u64], threshold: u64) {
        assert_eq!(qlens.len(), self.bitmap.len(), "qlen width mismatch");
        for (q, &len) in qlens.iter().enumerate() {
            self.bitmap.set(q, len > threshold);
        }
    }

    /// Grants the next over-allocated queue in round-robin order
    /// (part ② of Fig. 9).
    pub fn select(&mut self) -> Option<usize> {
        self.arbiter.grant(&self.bitmap)
    }

    /// Number of queues currently marked over-allocated.
    pub fn over_allocated(&self) -> usize {
        self.bitmap.count_ones()
    }

    /// Whether any queue is over-allocated.
    pub fn any(&self) -> bool {
        self.bitmap.any()
    }

    /// Read-only view of the bitmap (diagnostics / tests).
    pub fn bitmap(&self) -> &QueueBitmap {
        &self.bitmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparator_row_sets_expected_bits() {
        let mut sel = HeadDropSelector::new(8);
        let qlens = [10u64, 50, 30, 0, 70, 20, 90, 40];
        sel.refresh_shared(&qlens, 40);
        // Strictly greater than 40: queues 1 (50), 4 (70), 6 (90).
        assert_eq!(sel.over_allocated(), 3);
        assert!(sel.bitmap().get(1) && sel.bitmap().get(4) && sel.bitmap().get(6));
        assert!(!sel.bitmap().get(7), "equal to threshold is not over");
    }

    #[test]
    fn per_queue_thresholds() {
        let mut sel = HeadDropSelector::new(3);
        sel.refresh(&[100, 100, 100], &[50, 100, 150]);
        assert!(sel.bitmap().get(0));
        assert!(!sel.bitmap().get(1));
        assert!(!sel.bitmap().get(2));
    }

    #[test]
    fn select_round_robins_over_set_bits() {
        let mut sel = HeadDropSelector::new(4);
        sel.refresh_shared(&[9, 9, 0, 9], 5);
        let picks: Vec<_> = (0..6).map(|_| sel.select().unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 3, 0, 1, 3]);
    }

    #[test]
    fn nothing_over_allocated_selects_none() {
        let mut sel = HeadDropSelector::new(4);
        sel.refresh_shared(&[1, 2, 3, 4], 100);
        assert!(!sel.any());
        assert_eq!(sel.select(), None);
    }

    #[test]
    fn refresh_between_selects_tracks_drain() {
        let mut sel = HeadDropSelector::new(2);
        sel.refresh_shared(&[100, 100], 50);
        assert_eq!(sel.select(), Some(0));
        // Queue 0 drained below the threshold; only queue 1 remains.
        sel.refresh_shared(&[40, 100], 50);
        assert_eq!(sel.select(), Some(1));
        assert_eq!(sel.select(), Some(1));
    }

    #[test]
    #[should_panic(expected = "qlen width mismatch")]
    fn width_checked() {
        let mut sel = HeadDropSelector::new(4);
        sel.refresh_shared(&[1, 2], 0);
    }
}
