//! Round-robin and fixed-priority arbiters (paper Fig. 9 / §4.3).

use occamy_core::{QueueBitmap, RoundRobinCursor};

/// The two requesters competing for PD/cell-pointer read bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The output scheduler fetching a packet for transmission.
    Scheduler,
    /// The head-drop selector fetching a packet to expel.
    HeadDrop,
}

/// Fixed-priority arbiter: the scheduler always wins (paper §4.3).
///
/// This is the mechanism that guarantees expulsion can never hurt
/// line-rate forwarding: head-drop read requests are blocked whenever the
/// output scheduler needs to fetch a packet. The paper implements it in
/// 11 lines of Verilog (3 LUTs — Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPriorityArbiter;

impl FixedPriorityArbiter {
    /// Creates the arbiter.
    pub fn new() -> Self {
        FixedPriorityArbiter
    }

    /// Grants one of the active requesters, scheduler first.
    pub fn grant(&self, scheduler_req: bool, head_drop_req: bool) -> Option<Requester> {
        if scheduler_req {
            Some(Requester::Scheduler)
        } else if head_drop_req {
            Some(Requester::HeadDrop)
        } else {
            None
        }
    }
}

/// Round-robin arbiter over a request bitmap (paper Fig. 9, part 2).
///
/// Common in crossbar schedulers: each grant starts the search one past
/// the previous grant so all requesters are served in turn. This is the
/// component Occamy uses to iterate over the over-allocated queues instead
/// of tracking the longest queue.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    cursor: RoundRobinCursor,
    n: usize,
    grants: u64,
}

impl RoundRobinArbiter {
    /// Creates an arbiter for `n` requesters.
    pub fn new(n: usize) -> Self {
        RoundRobinArbiter {
            cursor: RoundRobinCursor::new(),
            n,
            grants: 0,
        }
    }

    /// Number of requesters.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Total grants issued (diagnostics).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants the next requester in round-robin order.
    ///
    /// # Panics
    ///
    /// Panics if the bitmap width differs from the arbiter width.
    pub fn grant(&mut self, requests: &QueueBitmap) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "bitmap width mismatch");
        let g = self.cursor.grant(requests)?;
        self.grants += 1;
        Some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_beats_head_drop() {
        let arb = FixedPriorityArbiter::new();
        assert_eq!(arb.grant(true, true), Some(Requester::Scheduler));
        assert_eq!(arb.grant(true, false), Some(Requester::Scheduler));
        assert_eq!(arb.grant(false, true), Some(Requester::HeadDrop));
        assert_eq!(arb.grant(false, false), None);
    }

    #[test]
    fn round_robin_is_fair_over_many_grants() {
        let n = 8;
        let mut arb = RoundRobinArbiter::new(n);
        let mut req = QueueBitmap::new(n);
        for i in 0..n {
            req.set(i, true);
        }
        let mut counts = vec![0u32; n];
        for _ in 0..800 {
            let g = arb.grant(&req).unwrap();
            counts[g] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == 100),
            "unfair grants: {counts:?}"
        );
        assert_eq!(arb.grants(), 800);
    }

    #[test]
    fn no_requests_no_grant() {
        let mut arb = RoundRobinArbiter::new(4);
        let req = QueueBitmap::new(4);
        assert_eq!(arb.grant(&req), None);
        assert_eq!(arb.grants(), 0);
    }

    #[test]
    #[should_panic(expected = "bitmap width mismatch")]
    fn width_mismatch_panics() {
        let mut arb = RoundRobinArbiter::new(4);
        let req = QueueBitmap::new(8);
        let _ = arb.grant(&req);
    }

    #[test]
    fn starvation_freedom_with_skewed_requests() {
        // Requester 7 requests rarely; it must still be granted when it does.
        let mut arb = RoundRobinArbiter::new(8);
        let mut req = QueueBitmap::new(8);
        req.set(0, true);
        req.set(1, true);
        let mut seen7 = false;
        for round in 0..100 {
            if round == 50 {
                req.set(7, true);
            }
            let g = arb.grant(&req).unwrap();
            if g == 7 {
                seen7 = true;
                req.set(7, false);
            }
        }
        assert!(seen7, "rare requester was starved");
    }
}
