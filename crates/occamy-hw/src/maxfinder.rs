//! Maximum Finder — the binary comparator tree of paper Fig. 4.
//!
//! Pushout must know the longest queue at all times. The canonical circuit
//! is a tree of compare-and-multiplex nodes: `⌈log₂N⌉` levels, `N − 1`
//! nodes. The paper's Difficulty 3 argument is that its *latency*
//! (`O(log₂k · log₂N)` gate delays) cannot keep up with per-cycle queue
//! length changes on a multi-hundred-queue chip, while its area is merely
//! large. This module implements the tree faithfully (level by level, the
//! way the circuit evaluates) and exposes the area/delay model used by
//! [`crate::cost`].

/// A binary comparator-tree maximum finder.
#[derive(Debug, Clone)]
pub struct MaxFinder {
    n_inputs: usize,
    bit_width: u32,
}

impl MaxFinder {
    /// Creates a finder for `n_inputs` values of `bit_width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs == 0` or `bit_width == 0` or `bit_width > 64`.
    pub fn new(n_inputs: usize, bit_width: u32) -> Self {
        assert!(n_inputs > 0, "need at least one input");
        assert!((1..=64).contains(&bit_width), "bit width must be 1..=64");
        MaxFinder {
            n_inputs,
            bit_width,
        }
    }

    /// Number of inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Compared value width in bits.
    pub fn bit_width(&self) -> u32 {
        self.bit_width
    }

    /// Number of comparator levels: `⌈log₂N⌉`.
    pub fn levels(&self) -> u32 {
        (self.n_inputs.max(1) as u64)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// Number of CMP&MUX nodes: `N − 1` for a full tree.
    pub fn comparator_count(&self) -> usize {
        self.n_inputs.saturating_sub(1)
    }

    /// Combinational delay of one CMP&MUX node in picoseconds.
    ///
    /// A k-bit comparator is itself a tree of depth `⌈log₂k⌉`; we charge
    /// `GATE_DELAY_PS` per gate level plus a mux level. The constant is a
    /// typical *loaded* 45 nm standard-cell delay (wire + fan-out
    /// included), chosen on the same scale as the calibrated selector
    /// timing in [`crate::cost`] so the two circuits are comparable.
    pub fn node_delay_ps(&self) -> u64 {
        const GATE_DELAY_PS: u64 = 70;
        let cmp_levels = 32 - (self.bit_width.max(1) - 1).leading_zeros().min(31);
        (cmp_levels as u64 + 1) * GATE_DELAY_PS
    }

    /// End-to-end combinational delay in picoseconds:
    /// `O(log₂k · log₂N)` (paper §2.2, Difficulty 3).
    pub fn delay_ps(&self) -> u64 {
        self.levels() as u64 * self.node_delay_ps()
    }

    /// Whether the finder meets a clock of `period_ps` (single-cycle).
    ///
    /// The paper's argument: queue lengths change every cycle, so the
    /// maximum must resolve within one cycle — which fails for large `N`.
    pub fn meets_cycle(&self, period_ps: u64) -> bool {
        self.delay_ps() <= period_ps
    }

    /// Evaluates the tree level by level, as the hardware does.
    ///
    /// Returns `(index, value)` of the maximum; ties resolve to the lower
    /// index (the `a > b` mux select of Fig. 4 keeps the left operand on
    /// ties). Returns `None` for an empty input slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n_inputs`.
    pub fn find(&self, values: &[u64]) -> Option<(usize, u64)> {
        assert_eq!(values.len(), self.n_inputs, "input width mismatch");
        if values.is_empty() {
            return None;
        }
        // Level 0: each input is a (index, value) candidate.
        let mut level: Vec<(usize, u64)> = values.iter().copied().enumerate().collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                match *pair {
                    [a, b] => next.push(if b.1 > a.1 { b } else { a }),
                    [a] => next.push(a),
                    _ => unreachable!("chunks(2) yields 1–2 items"),
                }
            }
            level = next;
        }
        Some(level[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_maximum_and_index() {
        let mf = MaxFinder::new(8, 16);
        let vals = [3u64, 9, 2, 9, 1, 0, 8, 4];
        // Two 9s: tie resolves to the lower index (1).
        assert_eq!(mf.find(&vals), Some((1, 9)));
    }

    #[test]
    fn single_input_is_its_own_max() {
        let mf = MaxFinder::new(1, 8);
        assert_eq!(mf.find(&[42]), Some((0, 42)));
        assert_eq!(mf.levels(), 0);
        assert_eq!(mf.comparator_count(), 0);
    }

    #[test]
    fn non_power_of_two_inputs() {
        let mf = MaxFinder::new(5, 8);
        assert_eq!(mf.find(&[1, 2, 3, 4, 5]), Some((4, 5)));
        assert_eq!(mf.find(&[5, 4, 3, 2, 1]), Some((0, 5)));
        assert_eq!(mf.levels(), 3);
    }

    #[test]
    fn matches_software_argmax_on_many_inputs() {
        let mf = MaxFinder::new(64, 20);
        let vals: Vec<u64> = (0..64).map(|i| (i * 2_654_435_761u64) % 100_000).collect();
        let (idx, val) = mf.find(&vals).unwrap();
        let exp = vals
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap();
        assert_eq!((idx, val), exp);
    }

    #[test]
    fn delay_grows_with_inputs_and_width() {
        let small = MaxFinder::new(8, 8);
        let wide = MaxFinder::new(8, 32);
        let big = MaxFinder::new(512, 8);
        assert!(wide.delay_ps() > small.delay_ps());
        assert!(big.delay_ps() > small.delay_ps());
    }

    #[test]
    fn large_trees_miss_a_1ghz_cycle() {
        // The paper's point: at switch scale (hundreds of queues, ~20-bit
        // lengths) the tree cannot resolve within a 1 GHz cycle.
        let big = MaxFinder::new(512, 20);
        assert!(!big.meets_cycle(1_000), "512-input tree should miss 1 ns");
        let tiny = MaxFinder::new(4, 8);
        assert!(tiny.meets_cycle(1_000), "4-input tree should meet 1 ns");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn input_width_is_checked() {
        let mf = MaxFinder::new(4, 8);
        let _ = mf.find(&[1, 2, 3]);
    }
}
