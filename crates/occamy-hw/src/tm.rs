//! The traffic manager: admission, queues, dequeue and head drop over the
//! three-memory buffer structure (paper Fig. 1, Fig. 2, Fig. 8).

use crate::{CellPointerMemory, DequeuePipeline, PdMemory, PdQueue, PipelineCost, CELL_SIZE};
use occamy_core::{BufferManager, BufferState, DropReason, QueueId, Verdict};

/// Aggregate per-memory access counters.
///
/// These quantify the paper's §3.2 argument: head drops consume PD and
/// cell-pointer bandwidth but **zero** cell-data bandwidth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryAccessStats {
    /// PD memory accesses.
    pub pd: u64,
    /// Cell-pointer memory accesses.
    pub cell_ptr: u64,
    /// Cell data memory reads/writes.
    pub cell_data: u64,
}

impl MemoryAccessStats {
    fn add_pipeline(&mut self, c: &PipelineCost) {
        self.pd += c.pd_accesses;
        self.cell_ptr += c.cell_ptr_accesses;
        self.cell_data += c.cell_data_reads;
    }
}

/// Counters kept by the traffic manager.
#[derive(Debug, Clone, Copy, Default)]
pub struct TmStats {
    /// Packets admitted and enqueued.
    pub enqueued_pkts: u64,
    /// Packets transmitted (normal dequeue).
    pub dequeued_pkts: u64,
    /// Packets expelled by head drop (Occamy reactive path / Pushout).
    pub head_dropped_pkts: u64,
    /// Bytes expelled by head drop.
    pub head_dropped_bytes: u64,
    /// Arrivals refused because the queue exceeded its threshold.
    pub tail_drops_threshold: u64,
    /// Arrivals refused because the buffer was physically full.
    pub tail_drops_full: u64,
    /// Arrivals refused because PD or cell memory was exhausted.
    pub resource_drops: u64,
    /// Memory accesses, split per physical memory.
    pub accesses: MemoryAccessStats,
}

/// Outcome of offering a packet to the traffic manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Packet admitted and enqueued.
    Accepted,
    /// Packet admitted after synchronously evicting `evicted_pkts`
    /// packets (Pushout only).
    AcceptedAfterEviction {
        /// Packets head-dropped to make room.
        evicted_pkts: u64,
    },
    /// Packet refused.
    Dropped(DropReason),
}

/// A shared-memory traffic manager driven at cell granularity.
///
/// Composes the cell-pointer memory, PD memory and per-queue PD lists of
/// Fig. 2 with a [`BufferManager`] for admission (and victim selection,
/// for preemptive schemes). Occupancy is accounted in *cell-rounded*
/// bytes, as real chips do: a 201-byte packet occupies two 200-byte
/// cells.
///
/// The caller owns time (`now_ns`), which only feeds the BM bookkeeping
/// hooks; all memory operations are charged in cycles via
/// [`DequeuePipeline`] and accumulated into [`TmStats`].
#[derive(Debug, Clone)]
pub struct TrafficManager<B: BufferManager> {
    cells: CellPointerMemory,
    pds: PdMemory,
    queues: Vec<PdQueue>,
    state: BufferState,
    bm: B,
    pipeline: DequeuePipeline,
    stats: TmStats,
}

impl<B: BufferManager> TrafficManager<B> {
    /// Creates a traffic manager with `total_cells` buffer cells shared by
    /// `num_queues` queues, managed by `bm`.
    pub fn new(total_cells: usize, num_queues: usize, bm: B) -> Self {
        TrafficManager {
            cells: CellPointerMemory::new(total_cells),
            // One PD per cell is the worst case (all minimum-size packets).
            pds: PdMemory::new(total_cells),
            queues: (0..num_queues).map(|_| PdQueue::new()).collect(),
            state: BufferState::new(total_cells as u64 * CELL_SIZE, num_queues),
            bm,
            pipeline: DequeuePipeline::default(),
            stats: TmStats::default(),
        }
    }

    /// Shared-buffer occupancy view.
    pub fn state(&self) -> &BufferState {
        &self.state
    }

    /// The buffer-management scheme (mutable, e.g. to re-tune `α`).
    pub fn bm_mut(&mut self) -> &mut B {
        &mut self.bm
    }

    /// The buffer-management scheme.
    pub fn bm(&self) -> &B {
        &self.bm
    }

    /// Counters.
    pub fn stats(&self) -> &TmStats {
        &self.stats
    }

    /// Packets currently queued in queue `q`.
    pub fn queue_pkts(&self, q: QueueId) -> usize {
        self.queues[q].len_pkts()
    }

    /// Wire bytes currently queued in queue `q` (not cell-rounded).
    pub fn queue_wire_bytes(&self, q: QueueId) -> u64 {
        self.queues[q].len_bytes()
    }

    /// Offers a packet to the switch.
    ///
    /// Runs BM admission on the *cell-rounded* size; on `Evict` (Pushout)
    /// it synchronously head-drops victims until the packet fits.
    pub fn enqueue(&mut self, q: QueueId, pkt_id: u64, len: u64, now_ns: u64) -> EnqueueOutcome {
        let cells = CellPointerMemory::cells_for(len);
        let charge = cells as u64 * CELL_SIZE;
        match self.bm.admit(q, charge, &self.state) {
            Verdict::Accept => {
                if self.do_enqueue(q, pkt_id, len, cells, charge, now_ns) {
                    EnqueueOutcome::Accepted
                } else {
                    self.stats.resource_drops += 1;
                    EnqueueOutcome::Dropped(DropReason::BufferFull)
                }
            }
            Verdict::Evict => {
                let mut evicted = 0u64;
                while self.state.free() < charge {
                    match self.bm.select_victim(&self.state) {
                        Some(victim) if !self.queues[victim].is_empty() => {
                            if self.head_drop(victim, now_ns).is_none() {
                                break;
                            }
                            evicted += 1;
                        }
                        _ => break,
                    }
                }
                if self.state.free() >= charge
                    && self.do_enqueue(q, pkt_id, len, cells, charge, now_ns)
                {
                    EnqueueOutcome::AcceptedAfterEviction {
                        evicted_pkts: evicted,
                    }
                } else {
                    self.stats.tail_drops_full += 1;
                    EnqueueOutcome::Dropped(DropReason::BufferFull)
                }
            }
            Verdict::Drop(reason) => {
                match reason {
                    DropReason::BufferFull => self.stats.tail_drops_full += 1,
                    DropReason::OverThreshold => self.stats.tail_drops_threshold += 1,
                }
                EnqueueOutcome::Dropped(reason)
            }
        }
    }

    fn do_enqueue(
        &mut self,
        q: QueueId,
        pkt_id: u64,
        len: u64,
        cells: u32,
        charge: u64,
        now_ns: u64,
    ) -> bool {
        let Some(cell_head) = self.cells.alloc_chain(cells, pkt_id) else {
            return false;
        };
        let Some(pd) = self.pds.alloc(pkt_id, len as u32, cell_head, cells) else {
            self.cells.free_chain(cell_head, pkt_id);
            return false;
        };
        self.queues[q].push_back(pd, &mut self.pds);
        self.state
            .enqueue(q, charge)
            .expect("BM admitted beyond capacity");
        self.bm.on_enqueue(q, charge, now_ns, &self.state);
        self.stats.enqueued_pkts += 1;
        // Writing the packet costs one PD write, `cells` pointer writes
        // and `cells` data writes.
        self.stats.accesses.pd += 1;
        self.stats.accesses.cell_ptr += cells as u64;
        self.stats.accesses.cell_data += cells as u64;
        true
    }

    /// Dequeues the head packet of queue `q` for transmission.
    ///
    /// Returns `(pkt_id, wire_len)`; `None` if the queue is empty.
    pub fn dequeue(&mut self, q: QueueId, now_ns: u64) -> Option<(u64, u64)> {
        let (pkt_id, len, cells) = self.remove_head(q)?;
        let cost = self.pipeline.dequeue_cost(cells);
        self.stats.accesses.add_pipeline(&cost);
        self.finish_removal(q, cells, now_ns);
        self.stats.dequeued_pkts += 1;
        Some((pkt_id, len))
    }

    /// Head-drops the head packet of queue `q` (Occamy's expulsion /
    /// Pushout's eviction).
    ///
    /// Identical to [`TrafficManager::dequeue`] except the cell data
    /// memory is never read.
    pub fn head_drop(&mut self, q: QueueId, now_ns: u64) -> Option<(u64, u64)> {
        let (pkt_id, len, cells) = self.remove_head(q)?;
        let cost = self.pipeline.head_drop_cost(cells);
        debug_assert_eq!(cost.cell_data_reads, 0);
        self.stats.accesses.add_pipeline(&cost);
        self.finish_removal(q, cells, now_ns);
        self.stats.head_dropped_pkts += 1;
        self.stats.head_dropped_bytes += len;
        Some((pkt_id, len))
    }

    fn remove_head(&mut self, q: QueueId) -> Option<(u64, u64, u32)> {
        let pd = self.queues[q].pop_front(&mut self.pds)?;
        let d = *self.pds.read(pd);
        self.cells.free_chain(d.cell_head, d.pkt_id);
        self.pds.free(pd);
        Some((d.pkt_id, d.len_bytes as u64, d.cell_count))
    }

    fn finish_removal(&mut self, q: QueueId, cells: u32, now_ns: u64) {
        let charge = cells as u64 * CELL_SIZE;
        self.state
            .dequeue(q, charge)
            .expect("queue accounting out of sync");
        self.bm.on_dequeue(q, charge, now_ns, &self.state);
    }

    /// Selects the next expulsion victim via the BM (Occamy's reactive
    /// path); `None` when no queue is over-allocated.
    pub fn select_victim(&mut self) -> Option<QueueId> {
        self.bm.select_victim(&self.state)
    }

    /// Verifies all cross-structure invariants; returns `false` on any
    /// inconsistency (used heavily by property tests).
    pub fn check_invariants(&self) -> bool {
        // Cell conservation inside the pointer memory.
        if !self.cells.check_conservation() {
            return false;
        }
        // Per-queue cell counts must match the shared accounting.
        let mut total = 0u64;
        for (q, queue) in self.queues.iter().enumerate() {
            let charge = queue.len_cells() * CELL_SIZE;
            if self.state.queue_len(q) != charge {
                return false;
            }
            total += charge;
        }
        if total != self.state.total() {
            return false;
        }
        // Every queued packet holds exactly one PD.
        let queued: usize = self.queues.iter().map(|q| q.len_pkts()).sum();
        queued == self.pds.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_core::{Occamy, Pushout, QueueConfig};

    fn occamy_tm(cells: usize, queues: usize, alpha: f64) -> TrafficManager<Occamy> {
        let cfg = QueueConfig::uniform(queues, 10_000_000_000, alpha);
        TrafficManager::new(cells, queues, Occamy::new(cfg))
    }

    #[test]
    fn enqueue_dequeue_roundtrip() {
        let mut tm = occamy_tm(100, 2, 8.0);
        assert_eq!(tm.enqueue(0, 1, 450, 0), EnqueueOutcome::Accepted);
        // 450 B → 3 cells → 600 B charged.
        assert_eq!(tm.state().queue_len(0), 600);
        assert_eq!(tm.queue_wire_bytes(0), 450);
        assert!(tm.check_invariants());
        assert_eq!(tm.dequeue(0, 10), Some((1, 450)));
        assert_eq!(tm.state().total(), 0);
        assert!(tm.check_invariants());
    }

    #[test]
    fn threshold_drop_is_counted() {
        let mut tm = occamy_tm(10, 2, 1.0); // B = 2000
                                            // Fill queue 0 to its DT limit.
        let mut accepted = 0;
        for id in 0..20 {
            if tm.enqueue(0, id, 200, 0) == EnqueueOutcome::Accepted {
                accepted += 1;
            }
        }
        assert!(accepted < 20);
        assert!(tm.stats().tail_drops_threshold > 0);
        assert!(tm.check_invariants());
    }

    #[test]
    fn occamy_head_drop_frees_room() {
        let mut tm = occamy_tm(20, 2, 1.0); // B = 4000
        for id in 0..10 {
            tm.enqueue(0, id, 200, 0);
        }
        let before = tm.state().queue_len(0);
        // Make queue 0 over-allocated by filling queue 1.
        for id in 100..108 {
            tm.enqueue(1, id, 200, 0);
        }
        let victim = tm.select_victim();
        assert_eq!(victim, Some(0), "queue 0 should be over-allocated");
        let dropped = tm.head_drop(0, 50).unwrap();
        assert_eq!(dropped.1, 200);
        assert!(tm.state().queue_len(0) < before);
        assert_eq!(tm.stats().head_dropped_pkts, 1);
        assert!(tm.check_invariants());
    }

    #[test]
    fn head_drop_touches_no_cell_data() {
        let mut tm = occamy_tm(100, 1, 8.0);
        tm.enqueue(0, 1, 1_000, 0);
        let writes = tm.stats().accesses.cell_data;
        tm.head_drop(0, 1).unwrap();
        assert_eq!(
            tm.stats().accesses.cell_data,
            writes,
            "head drop must not access cell data memory"
        );
        // A normal dequeue of the same size *does* read the data.
        tm.enqueue(0, 2, 1_000, 2);
        tm.dequeue(0, 3).unwrap();
        assert!(tm.stats().accesses.cell_data > writes);
    }

    #[test]
    fn pushout_evicts_longest_to_admit() {
        let cfg = QueueConfig::uniform(2, 10_000_000_000, 1.0);
        let mut tm = TrafficManager::new(10, 2, Pushout::new(cfg)); // B = 2000
                                                                    // Fill the whole buffer from queue 0.
        for id in 0..10 {
            assert_eq!(tm.enqueue(0, id, 200, 0), EnqueueOutcome::Accepted);
        }
        assert_eq!(tm.state().free(), 0);
        // Queue 1's arrival pushes a queue-0 packet out.
        let out = tm.enqueue(1, 100, 200, 1);
        assert_eq!(
            out,
            EnqueueOutcome::AcceptedAfterEviction { evicted_pkts: 1 }
        );
        assert_eq!(tm.state().queue_len(1), 200);
        assert_eq!(tm.queue_pkts(0), 9);
        assert_eq!(tm.stats().head_dropped_pkts, 1);
        assert!(tm.check_invariants());
    }

    #[test]
    fn fifo_order_survives_head_drops() {
        let mut tm = occamy_tm(100, 1, 8.0);
        for id in 0..5 {
            tm.enqueue(0, id, 200, 0);
        }
        tm.head_drop(0, 1).unwrap(); // drops packet 0
        assert_eq!(tm.dequeue(0, 2), Some((1, 200)));
        assert_eq!(tm.dequeue(0, 3), Some((2, 200)));
    }

    #[test]
    fn empty_queue_ops_return_none() {
        let mut tm = occamy_tm(10, 2, 1.0);
        assert_eq!(tm.dequeue(0, 0), None);
        assert_eq!(tm.head_drop(1, 0), None);
    }

    #[test]
    fn oversized_packet_is_dropped() {
        let mut tm = occamy_tm(4, 1, 100.0); // B = 800
        assert!(matches!(
            tm.enqueue(0, 1, 900, 0),
            EnqueueOutcome::Dropped(DropReason::BufferFull)
        ));
        assert_eq!(tm.stats().tail_drops_full, 1);
        assert!(tm.check_invariants());
    }

    #[test]
    fn cell_rounding_charges_full_cells() {
        let mut tm = occamy_tm(100, 1, 8.0);
        tm.enqueue(0, 1, 1, 0); // 1 byte → 1 cell → 200 B
        tm.enqueue(0, 2, 201, 0); // 201 bytes → 2 cells → 400 B
        assert_eq!(tm.state().queue_len(0), 600);
        assert_eq!(tm.queue_wire_bytes(0), 202);
    }
}
