//! Cell-pointer memory with a free-cell linked list (paper Fig. 2, middle).

/// Cell size in bytes.
///
/// The paper assumes 200 B cells in both its historical analysis (§2.2)
/// and the DPDK prototype's token accounting (§5.3).
pub const CELL_SIZE: u64 = 200;

/// Index into the cell-pointer memory (one entry per cell).
pub type CellPtr = u32;

/// Sentinel for "no next cell".
const NIL: u32 = u32::MAX;

/// The cell-pointer memory of Fig. 2.
///
/// Each entry holds the pointer to the *next* cell of the same packet (a
/// cell-pointer list); free cells are themselves chained through the same
/// memory as the *free cell pointer list*. Allocation pops from the free
/// list, deallocation pushes back — exactly the operations a head drop
/// performs without ever touching the cell **data** memory.
///
/// For verification, every cell also records the packet it belongs to;
/// [`CellPointerMemory::check_conservation`] proves no cell is leaked or
/// double-owned.
#[derive(Debug, Clone)]
pub struct CellPointerMemory {
    /// `next[c]` chains both packet cell lists and the free list.
    next: Vec<u32>,
    /// Owning packet id per cell (`None` when free). Verification only.
    owner: Vec<Option<u64>>,
    free_head: u32,
    free_count: usize,
}

impl CellPointerMemory {
    /// Creates a memory of `total_cells` cells, all free.
    pub fn new(total_cells: usize) -> Self {
        assert!(total_cells > 0, "cell memory cannot be empty");
        assert!((total_cells as u64) < NIL as u64, "too many cells");
        // Chain every cell into the free list: 0 → 1 → … → n−1 → NIL.
        let mut next: Vec<u32> = (1..=total_cells as u32).collect();
        next[total_cells - 1] = NIL;
        CellPointerMemory {
            next,
            owner: vec![None; total_cells],
            free_head: 0,
            free_count: total_cells,
        }
    }

    /// Total number of cells.
    pub fn total_cells(&self) -> usize {
        self.next.len()
    }

    /// Number of free cells.
    pub fn free_cells(&self) -> usize {
        self.free_count
    }

    /// Number of cells needed for a packet of `len` bytes.
    pub fn cells_for(len: u64) -> u32 {
        (len.div_ceil(CELL_SIZE)).max(1) as u32
    }

    /// Allocates a chain of `n` cells for packet `pkt_id`.
    ///
    /// Returns the head of the chain, or `None` if fewer than `n` cells
    /// are free (the BM admission check should prevent this).
    pub fn alloc_chain(&mut self, n: u32, pkt_id: u64) -> Option<CellPtr> {
        if (n as usize) > self.free_count || n == 0 {
            return None;
        }
        let head = self.free_head;
        let mut last = NIL;
        let mut cur = self.free_head;
        for _ in 0..n {
            debug_assert_ne!(cur, NIL, "free list shorter than free_count");
            self.owner[cur as usize] = Some(pkt_id);
            last = cur;
            cur = self.next[cur as usize];
        }
        self.free_head = cur;
        self.free_count -= n as usize;
        // Terminate the packet's chain.
        self.next[last as usize] = NIL;
        Some(head)
    }

    /// Returns a packet's cell chain to the free list.
    ///
    /// `head` must be the value returned by [`CellPointerMemory::alloc_chain`]
    /// for a packet that has not been freed yet.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double-free or foreign pointers, which
    /// indicate substrate bugs.
    pub fn free_chain(&mut self, head: CellPtr, pkt_id: u64) -> u32 {
        let mut cur = head;
        let mut freed = 0u32;
        let mut last = NIL;
        while cur != NIL {
            debug_assert_eq!(
                self.owner[cur as usize],
                Some(pkt_id),
                "cell {cur} not owned by packet {pkt_id}"
            );
            self.owner[cur as usize] = None;
            last = cur;
            freed += 1;
            cur = self.next[cur as usize];
        }
        // Splice the whole chain onto the free list head.
        if freed > 0 {
            self.next[last as usize] = self.free_head;
            self.free_head = head;
            self.free_count += freed as usize;
        }
        freed
    }

    /// Walks a packet's chain, returning its cell count (verification).
    pub fn chain_len(&self, head: CellPtr) -> u32 {
        let mut cur = head;
        let mut n = 0;
        while cur != NIL {
            n += 1;
            cur = self.next[cur as usize];
        }
        n
    }

    /// Verifies cell conservation: every cell is either on the free list
    /// or owned by exactly one packet, and the free list length matches
    /// `free_cells()`.
    pub fn check_conservation(&self) -> bool {
        let mut on_free = vec![false; self.next.len()];
        let mut cur = self.free_head;
        let mut count = 0usize;
        while cur != NIL {
            if on_free[cur as usize] {
                return false; // cycle in free list
            }
            on_free[cur as usize] = true;
            count += 1;
            if count > self.next.len() {
                return false;
            }
            cur = self.next[cur as usize];
        }
        if count != self.free_count {
            return false;
        }
        self.owner
            .iter()
            .zip(on_free.iter())
            .all(|(owner, free)| owner.is_some() != *free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_all_free() {
        let m = CellPointerMemory::new(16);
        assert_eq!(m.free_cells(), 16);
        assert!(m.check_conservation());
    }

    #[test]
    fn cells_for_rounds_up() {
        assert_eq!(CellPointerMemory::cells_for(1), 1);
        assert_eq!(CellPointerMemory::cells_for(200), 1);
        assert_eq!(CellPointerMemory::cells_for(201), 2);
        assert_eq!(CellPointerMemory::cells_for(1_500), 8);
        assert_eq!(CellPointerMemory::cells_for(0), 1); // even empty frames occupy a cell
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = CellPointerMemory::new(8);
        let h = m.alloc_chain(3, 42).unwrap();
        assert_eq!(m.free_cells(), 5);
        assert_eq!(m.chain_len(h), 3);
        assert!(m.check_conservation());
        assert_eq!(m.free_chain(h, 42), 3);
        assert_eq!(m.free_cells(), 8);
        assert!(m.check_conservation());
    }

    #[test]
    fn alloc_fails_when_insufficient() {
        let mut m = CellPointerMemory::new(4);
        assert!(m.alloc_chain(5, 1).is_none());
        let _a = m.alloc_chain(3, 1).unwrap();
        assert!(m.alloc_chain(2, 2).is_none());
        assert!(m.alloc_chain(1, 2).is_some());
        assert_eq!(m.free_cells(), 0);
    }

    #[test]
    fn zero_cell_alloc_is_rejected() {
        let mut m = CellPointerMemory::new(4);
        assert!(m.alloc_chain(0, 1).is_none());
    }

    #[test]
    fn interleaved_packets_keep_conservation() {
        let mut m = CellPointerMemory::new(32);
        let a = m.alloc_chain(5, 1).unwrap();
        let b = m.alloc_chain(7, 2).unwrap();
        let c = m.alloc_chain(3, 3).unwrap();
        assert!(m.check_conservation());
        m.free_chain(b, 2);
        assert!(m.check_conservation());
        let d = m.alloc_chain(9, 4).unwrap();
        assert!(m.check_conservation());
        m.free_chain(a, 1);
        m.free_chain(c, 3);
        m.free_chain(d, 4);
        assert_eq!(m.free_cells(), 32);
        assert!(m.check_conservation());
    }

    #[test]
    fn chains_are_disjoint() {
        let mut m = CellPointerMemory::new(16);
        let a = m.alloc_chain(4, 1).unwrap();
        let b = m.alloc_chain(4, 2).unwrap();
        // Walk both chains and ensure no shared cells.
        let collect = |m: &CellPointerMemory, mut cur: u32| {
            let mut v = vec![];
            while cur != NIL {
                v.push(cur);
                cur = m.next[cur as usize];
            }
            v
        };
        let ca = collect(&m, a);
        let cb = collect(&m, b);
        assert_eq!(ca.len(), 4);
        assert_eq!(cb.len(), 4);
        assert!(ca.iter().all(|x| !cb.contains(x)));
    }
}
