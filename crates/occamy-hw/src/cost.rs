//! Analytic hardware cost model, calibrated against paper Table 1.
//!
//! The paper evaluates its Verilog with Vivado (FPGA LUTs/FFs) and Design
//! Compiler on FreePDK45 (timing, area, power). We cannot run those tools,
//! so this module provides a *structural* cost model: each circuit's LUT,
//! flip-flop and delay counts are derived from its logic structure
//! (comparator widths, bitmap sizes, arbiter fan-in), with technology
//! coefficients **calibrated so the model reproduces Table 1 exactly at
//! the paper's design point** (64 queues, ~19-bit queue lengths). The
//! model then predicts how costs scale with queue count and counter width
//! — the axis along which Occamy's selector (O(N) comparators, O(log N)
//! arbiter depth) beats Pushout's Maximum Finder (O(N) comparators *in
//! series-parallel tree form* with O(log k · log N) delay).

use crate::MaxFinder;

/// Cost of one hardware module, in the units of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCost {
    /// FPGA look-up tables (Vivado).
    pub luts: u64,
    /// FPGA flip-flops (Vivado).
    pub flip_flops: u64,
    /// Critical-path delay in ns (Design Compiler, FreePDK45).
    pub timing_ns: f64,
    /// ASIC area in mm² (FreePDK45).
    pub area_mm2: f64,
    /// Power in mW (FreePDK45).
    pub power_mw: f64,
}

/// Paper Table 1, row "Selector" (64-bit bitmap).
pub const PAPER_SELECTOR: HwCost = HwCost {
    luts: 1262,
    flip_flops: 47,
    timing_ns: 1.49,
    area_mm2: 0.023,
    power_mw: 0.895,
};

/// Paper Table 1, row "Arbiter" (fixed-priority).
pub const PAPER_ARBITER: HwCost = HwCost {
    luts: 3,
    flip_flops: 0,
    timing_ns: 0.17,
    area_mm2: 2.3e-5,
    power_mw: 0.003,
};

/// Paper Table 1, row "Executor" (head-drop executor).
pub const PAPER_EXECUTOR: HwCost = HwCost {
    luts: 47,
    flip_flops: 7,
    timing_ns: 0.38,
    area_mm2: 7.3e-4,
    power_mw: 0.044,
};

/// Queue-length counter width at the paper's design point.
///
/// A 2 MB buffer in 200 B cells gives ~10 486 cells → 14 bits, but the
/// selector compares byte-granular lengths against `T(t)`: 19 bits cover
/// 512 KB per-queue lengths and calibrate the model exactly to Table 1.
pub const PAPER_QLEN_BITS: u32 = 19;

/// Number of queues in the paper's Verilog (64-bit bitmap).
pub const PAPER_NUM_QUEUES: usize = 64;

// Technology coefficients, calibrated at the Table 1 design point.
const LUTS_PER_CMP_BIT: f64 = 1.0; // carry-chain magnitude comparator
const ARBITER_LUTS_PER_QUEUE: f64 = 46.0 / 64.0;
const BITMAP_FFS_PER_QUEUE: f64 = 47.0 / 64.0;
const CMP_DELAY_PER_LEVEL_NS: f64 = 0.048;
const ARB_DELAY_PER_LEVEL_NS: f64 = 0.2083;
const AREA_MM2_PER_LUT: f64 = 0.023 / 1262.0;
const POWER_MW_PER_LUT: f64 = 0.895 / 1262.0;

fn ceil_log2(n: u64) -> u32 {
    64 - n.max(1).saturating_sub(1).leading_zeros()
}

/// Cost of the head-drop selector (Fig. 9) for `n_queues` queues whose
/// lengths are `qlen_bits` wide.
///
/// Structure: `n` parallel magnitude comparators (one per queue, each
/// `qlen_bits` LUTs in carry-chain form), an `n`-bit bitmap register, and
/// a round-robin arbiter (a rotating priority encoder, ~0.72 LUT/queue
/// with `log₂ n` levels of depth).
pub fn selector(n_queues: usize, qlen_bits: u32) -> HwCost {
    let cmp_luts = n_queues as f64 * qlen_bits as f64 * LUTS_PER_CMP_BIT;
    let arb_luts = (n_queues as f64 * ARBITER_LUTS_PER_QUEUE).round();
    let luts = (cmp_luts + arb_luts) as u64;
    let flip_flops = (n_queues as f64 * BITMAP_FFS_PER_QUEUE).round() as u64;
    let timing_ns = CMP_DELAY_PER_LEVEL_NS * ceil_log2(qlen_bits as u64) as f64
        + ARB_DELAY_PER_LEVEL_NS * ceil_log2(n_queues as u64) as f64;
    HwCost {
        luts,
        flip_flops,
        timing_ns,
        area_mm2: luts as f64 * AREA_MM2_PER_LUT,
        power_mw: luts as f64 * POWER_MW_PER_LUT,
    }
}

/// Cost of the two-input fixed-priority arbiter (§4.3).
///
/// A constant: one AND-NOT per requester plus a grant mux (11 lines of
/// Verilog in the paper).
pub fn fixed_priority_arbiter() -> HwCost {
    PAPER_ARBITER
}

/// Cost of the head-drop executor: a small FSM that issues the dequeue-PD
/// and free-cell operations. Independent of queue count.
pub fn head_drop_executor() -> HwCost {
    PAPER_EXECUTOR
}

/// Total cost of Occamy's additions for a given configuration.
pub fn occamy_total(n_queues: usize, qlen_bits: u32) -> HwCost {
    let s = selector(n_queues, qlen_bits);
    let a = fixed_priority_arbiter();
    let e = head_drop_executor();
    HwCost {
        luts: s.luts + a.luts + e.luts,
        flip_flops: s.flip_flops + a.flip_flops + e.flip_flops,
        // Modules are pipeline stages, not chained combinationally: the
        // critical path is the worst single module.
        timing_ns: s.timing_ns.max(a.timing_ns).max(e.timing_ns),
        area_mm2: s.area_mm2 + a.area_mm2 + e.area_mm2,
        power_mw: s.power_mw + a.power_mw + e.power_mw,
    }
}

/// Cost of a Maximum Finder (Fig. 4) — what Pushout would need instead of
/// the selector. Each CMP&MUX node costs ~1.5 LUT/bit (comparator + mux);
/// delay comes from [`MaxFinder::delay_ps`].
pub fn maxfinder(n_inputs: usize, bit_width: u32) -> HwCost {
    let mf = MaxFinder::new(n_inputs, bit_width);
    let luts = (mf.comparator_count() as f64 * bit_width as f64 * 1.5) as u64;
    HwCost {
        luts,
        flip_flops: 0,
        timing_ns: mf.delay_ps() as f64 / 1_000.0,
        area_mm2: luts as f64 * AREA_MM2_PER_LUT,
        power_mw: luts as f64 * POWER_MW_PER_LUT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-12)
    }

    #[test]
    fn selector_matches_table1_at_design_point() {
        let c = selector(PAPER_NUM_QUEUES, PAPER_QLEN_BITS);
        assert_eq!(c.luts, PAPER_SELECTOR.luts, "LUTs must calibrate exactly");
        assert_eq!(c.flip_flops, PAPER_SELECTOR.flip_flops);
        assert!(
            close(c.timing_ns, PAPER_SELECTOR.timing_ns, 0.02),
            "timing {} vs paper {}",
            c.timing_ns,
            PAPER_SELECTOR.timing_ns
        );
        assert!(close(c.area_mm2, PAPER_SELECTOR.area_mm2, 0.02));
        assert!(close(c.power_mw, PAPER_SELECTOR.power_mw, 0.01));
    }

    #[test]
    fn selector_scales_linearly_in_queues() {
        let c64 = selector(64, PAPER_QLEN_BITS);
        let c128 = selector(128, PAPER_QLEN_BITS);
        // Area roughly doubles; delay only gains one arbiter level.
        assert!(c128.luts > c64.luts * 19 / 10);
        assert!(c128.luts < c64.luts * 21 / 10);
        assert!(c128.timing_ns - c64.timing_ns < 0.25);
    }

    #[test]
    fn selector_delay_grows_only_logarithmically() {
        // The paper's timing argument: the selector can expel a packet
        // every ~2 cycles at 1 GHz because its delay grows with log₂ N
        // (one extra arbiter level per doubling), not with N.
        let c64 = selector(64, PAPER_QLEN_BITS);
        let c512 = selector(512, PAPER_QLEN_BITS);
        let per_doubling = (c512.timing_ns - c64.timing_ns) / 3.0;
        assert!(
            per_doubling < 0.25,
            "delay grew {per_doubling} ns per doubling"
        );
        assert!(
            c512.timing_ns < 2.5,
            "512-queue selector {} ns",
            c512.timing_ns
        );
    }

    #[test]
    fn maxfinder_is_slower_than_selector_at_scale() {
        // Difficulty 3: Pushout's Maximum Finder misses the cycle budget
        // where Occamy's selector does not.
        let sel = selector(512, 20);
        let mf = maxfinder(512, 20);
        assert!(
            mf.timing_ns > sel.timing_ns,
            "MF {} ns should exceed selector {} ns",
            mf.timing_ns,
            sel.timing_ns
        );
        assert!(mf.luts > sel.luts, "MF should also cost more logic");
    }

    #[test]
    fn occamy_total_is_dominated_by_selector() {
        let total = occamy_total(PAPER_NUM_QUEUES, PAPER_QLEN_BITS);
        let s = selector(PAPER_NUM_QUEUES, PAPER_QLEN_BITS);
        assert!(total.luts < s.luts + 60);
        assert!(close(total.timing_ns, s.timing_ns, 1e-9));
        // Under 0.03 mm² and ~1 mW, as the abstract claims.
        assert!(total.area_mm2 < 0.03);
        assert!(total.power_mw < 1.0);
    }

    #[test]
    fn arbiter_and_executor_are_paper_constants() {
        assert_eq!(fixed_priority_arbiter(), PAPER_ARBITER);
        assert_eq!(head_drop_executor(), PAPER_EXECUTOR);
    }

    #[test]
    fn ceil_log2_edge_cases() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(64), 6);
        assert_eq!(ceil_log2(65), 7);
    }
}
