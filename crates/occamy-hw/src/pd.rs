//! Packet-descriptor memory and PD linked-list queues (paper Fig. 2, top).

use crate::CellPtr;

/// Index into the PD memory.
pub type PdPtr = u32;

/// Sentinel for "no next PD".
const NIL: u32 = u32::MAX;

/// A packet descriptor: metadata plus the head of the cell-pointer list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketDescriptor {
    /// Substrate-assigned packet identity.
    pub pkt_id: u64,
    /// Wire length in bytes.
    pub len_bytes: u32,
    /// Head of this packet's cell chain.
    pub cell_head: CellPtr,
    /// Number of cells in the chain.
    pub cell_count: u32,
    /// Next PD in the queue (linked list).
    next: u32,
}

/// Slab of packet descriptors with an internal free list.
#[derive(Debug, Clone)]
pub struct PdMemory {
    slots: Vec<PacketDescriptor>,
    /// Free slots, used LIFO.
    free: Vec<PdPtr>,
    in_use: usize,
}

impl PdMemory {
    /// Creates a PD memory with `capacity` descriptors.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "PD memory cannot be empty");
        let blank = PacketDescriptor {
            pkt_id: 0,
            len_bytes: 0,
            cell_head: 0,
            cell_count: 0,
            next: NIL,
        };
        PdMemory {
            slots: vec![blank; capacity],
            free: (0..capacity as u32).rev().collect(),
            in_use: 0,
        }
    }

    /// Number of descriptors currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Total descriptor slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a descriptor; `None` when the PD memory is exhausted.
    pub fn alloc(
        &mut self,
        pkt_id: u64,
        len_bytes: u32,
        cell_head: CellPtr,
        cell_count: u32,
    ) -> Option<PdPtr> {
        let slot = self.free.pop()?;
        self.slots[slot as usize] = PacketDescriptor {
            pkt_id,
            len_bytes,
            cell_head,
            cell_count,
            next: NIL,
        };
        self.in_use += 1;
        Some(slot)
    }

    /// Frees a descriptor.
    pub fn free(&mut self, pd: PdPtr) {
        debug_assert!(!self.free.contains(&pd), "double free of PD {pd}");
        self.free.push(pd);
        self.in_use -= 1;
    }

    /// Reads a descriptor (the "Read PD" pipeline operation).
    pub fn read(&self, pd: PdPtr) -> &PacketDescriptor {
        &self.slots[pd as usize]
    }

    fn set_next(&mut self, pd: PdPtr, next: u32) {
        self.slots[pd as usize].next = next;
    }
}

/// A queue organized as a linked list of PDs (Fig. 2).
///
/// Byte and packet counts are maintained redundantly so the traffic
/// manager can check them against the shared [`occamy_core::BufferState`].
#[derive(Debug, Clone)]
pub struct PdQueue {
    head: u32,
    tail: u32,
    pkts: usize,
    bytes: u64,
    cells: u64,
}

impl Default for PdQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl PdQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PdQueue {
            head: NIL,
            tail: NIL,
            pkts: 0,
            bytes: 0,
            cells: 0,
        }
    }

    /// Number of packets queued.
    pub fn len_pkts(&self) -> usize {
        self.pkts
    }

    /// Number of bytes queued (wire bytes, not cell-rounded).
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cells held by queued packets.
    pub fn len_cells(&self) -> u64 {
        self.cells
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pkts == 0
    }

    /// PD at the head (next to dequeue or head-drop), if any.
    pub fn head(&self) -> Option<PdPtr> {
        if self.head == NIL {
            None
        } else {
            Some(self.head)
        }
    }

    /// Appends a PD at the tail (the "enqueue PD" operation).
    pub fn push_back(&mut self, pd: PdPtr, mem: &mut PdMemory) {
        mem.set_next(pd, NIL);
        if self.tail == NIL {
            self.head = pd;
        } else {
            mem.set_next(self.tail, pd);
        }
        self.tail = pd;
        let d = mem.read(pd);
        self.pkts += 1;
        self.bytes += d.len_bytes as u64;
        self.cells += d.cell_count as u64;
    }

    /// Removes and returns the head PD (the "Dequeue PD" operation —
    /// shared by normal dequeue and head drop).
    pub fn pop_front(&mut self, mem: &mut PdMemory) -> Option<PdPtr> {
        if self.head == NIL {
            return None;
        }
        let pd = self.head;
        let d = *mem.read(pd);
        self.head = d.next;
        if self.head == NIL {
            self.tail = NIL;
        }
        self.pkts -= 1;
        self.bytes -= d.len_bytes as u64;
        self.cells -= d.cell_count as u64;
        Some(pd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut mem = PdMemory::new(4);
        let a = mem.alloc(1, 100, 0, 1).unwrap();
        let b = mem.alloc(2, 200, 1, 1).unwrap();
        assert_eq!(mem.in_use(), 2);
        assert_eq!(mem.read(a).pkt_id, 1);
        assert_eq!(mem.read(b).len_bytes, 200);
        mem.free(a);
        assert_eq!(mem.in_use(), 1);
        // Freed slot is reusable.
        let c = mem.alloc(3, 300, 2, 2).unwrap();
        assert_eq!(mem.read(c).pkt_id, 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut mem = PdMemory::new(2);
        assert!(mem.alloc(1, 1, 0, 1).is_some());
        assert!(mem.alloc(2, 1, 0, 1).is_some());
        assert!(mem.alloc(3, 1, 0, 1).is_none());
    }

    #[test]
    fn queue_is_fifo() {
        let mut mem = PdMemory::new(8);
        let mut q = PdQueue::new();
        for id in 0..5u64 {
            let pd = mem.alloc(id, 100, 0, 1).unwrap();
            q.push_back(pd, &mut mem);
        }
        assert_eq!(q.len_pkts(), 5);
        assert_eq!(q.len_bytes(), 500);
        for id in 0..5u64 {
            let pd = q.pop_front(&mut mem).unwrap();
            assert_eq!(mem.read(pd).pkt_id, id, "FIFO order violated");
            mem.free(pd);
        }
        assert!(q.is_empty());
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn pop_empty_is_none() {
        let mut mem = PdMemory::new(2);
        let mut q = PdQueue::new();
        assert!(q.pop_front(&mut mem).is_none());
    }

    #[test]
    fn head_peek_matches_pop() {
        let mut mem = PdMemory::new(4);
        let mut q = PdQueue::new();
        let a = mem.alloc(7, 64, 0, 1).unwrap();
        q.push_back(a, &mut mem);
        assert_eq!(q.head(), Some(a));
        assert_eq!(q.pop_front(&mut mem), Some(a));
        assert_eq!(q.head(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_counts() {
        let mut mem = PdMemory::new(16);
        let mut q = PdQueue::new();
        let mut expected_bytes = 0u64;
        let mut next_id = 0u64;
        for round in 0..10 {
            for _ in 0..=round % 3 {
                let len = 60 + round * 10;
                let pd = mem.alloc(next_id, len, 0, 1).unwrap();
                next_id += 1;
                q.push_back(pd, &mut mem);
                expected_bytes += len as u64;
            }
            if round % 2 == 1 {
                if let Some(pd) = q.pop_front(&mut mem) {
                    expected_bytes -= mem.read(pd).len_bytes as u64;
                    mem.free(pd);
                }
            }
            assert_eq!(q.len_bytes(), expected_bytes);
        }
    }

    #[test]
    fn single_element_queue_resets_tail() {
        let mut mem = PdMemory::new(4);
        let mut q = PdQueue::new();
        let a = mem.alloc(1, 10, 0, 1).unwrap();
        q.push_back(a, &mut mem);
        q.pop_front(&mut mem).unwrap();
        mem.free(a);
        // Pushing after draining must not chain onto a stale tail.
        let b = mem.alloc(2, 20, 0, 1).unwrap();
        q.push_back(b, &mut mem);
        assert_eq!(q.head(), Some(b));
        assert_eq!(q.len_pkts(), 1);
    }
}
