//! The packet dequeue pipeline and its head-drop recomposition
//! (paper Fig. 10 and §4.5).

/// Per-memory access counts for one pipeline pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineCost {
    /// Cycles occupied in the PD / cell-pointer pipeline.
    pub cycles: u64,
    /// PD memory accesses (read PD + dequeue PD).
    pub pd_accesses: u64,
    /// Cell-pointer memory accesses (read pointer + free cell per cell).
    pub cell_ptr_accesses: u64,
    /// Cell **data** memory reads — zero for head drops (§3.2, reason 2).
    pub cell_data_reads: u64,
}

/// Result of interrupting an in-flight head drop (paper §4.5, point ②).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptOutcome {
    /// Interrupted at the start of cycle 1 or 2: the PD linked list has
    /// not been modified; the scheduler dequeues as if the head drop never
    /// started.
    QueueUntouched,
    /// Interrupted at the start of cycle 3 or later: the PD has already
    /// been removed from the queue; the scheduler observes the packet as
    /// dequeued and proceeds to the next one.
    PdAlreadyRemoved,
}

/// Model of the 5-operation dequeue pipeline of Fig. 10.
///
/// A dequeue performs: ① read PD, ② dequeue PD (advance the linked-list
/// head), then per cell ③ read cell pointer, ④ free the cell, ⑤ read the
/// cell data. The three memories are physically separate, so ③/④/⑤ for
/// consecutive cells are pipelined one per cycle (per sub-list); a PD with
/// `k` parallel cell-pointer sub-lists reads `k` pointers per cycle
/// (§2.1). A **head drop** runs the same pipeline minus operation ⑤ —
/// that is the entire hardware delta Occamy needs on the dequeue path.
#[derive(Debug, Clone)]
pub struct DequeuePipeline {
    /// Number of parallel cell-pointer sub-lists per PD (≥ 1).
    parallel_lists: u32,
}

impl DequeuePipeline {
    /// Creates a pipeline with `parallel_lists` cell-pointer sub-lists.
    ///
    /// # Panics
    ///
    /// Panics if `parallel_lists == 0`.
    pub fn new(parallel_lists: u32) -> Self {
        assert!(parallel_lists > 0, "need at least one cell-pointer list");
        DequeuePipeline { parallel_lists }
    }

    /// Number of parallel cell-pointer sub-lists.
    pub fn parallel_lists(&self) -> u32 {
        self.parallel_lists
    }

    /// Cost of a normal dequeue of a `cell_count`-cell packet.
    pub fn dequeue_cost(&self, cell_count: u32) -> PipelineCost {
        self.cost(cell_count, true)
    }

    /// Cost of a head drop of a `cell_count`-cell packet.
    ///
    /// Identical to a dequeue except operation ⑤ (read cell data) is
    /// skipped, so the cell **data** memory is never touched.
    pub fn head_drop_cost(&self, cell_count: u32) -> PipelineCost {
        self.cost(cell_count, false)
    }

    fn cost(&self, cell_count: u32, read_data: bool) -> PipelineCost {
        let cell_count = cell_count.max(1);
        // Cycle 1: read PD. Cycle 2: dequeue PD + first pointer batch.
        // Each subsequent cycle retires one batch of `parallel_lists`
        // pointers; free-cell and (for dequeues) data reads overlap in the
        // separate memories one cycle behind.
        let batches = cell_count.div_ceil(self.parallel_lists) as u64;
        PipelineCost {
            cycles: 2 + batches,
            pd_accesses: 2,
            cell_ptr_accesses: 2 * cell_count as u64, // read + free per cell
            cell_data_reads: if read_data { cell_count as u64 } else { 0 },
        }
    }

    /// Semantics of interrupting a head drop at the start of `cycle`
    /// (1-based), per §4.5: the PD is removed from the queue at the end of
    /// cycle 2, so interruptions split into "not yet started" and "appears
    /// dequeued".
    pub fn interrupt_head_drop(&self, cycle: u64) -> InterruptOutcome {
        if cycle <= 2 {
            InterruptOutcome::QueueUntouched
        } else {
            InterruptOutcome::PdAlreadyRemoved
        }
    }
}

impl Default for DequeuePipeline {
    /// Four parallel sub-lists, the example in §3.2 (3).
    fn default() -> Self {
        DequeuePipeline::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_drop_never_reads_cell_data() {
        let p = DequeuePipeline::default();
        for cells in [1, 4, 8, 64] {
            assert_eq!(p.head_drop_cost(cells).cell_data_reads, 0);
            assert_eq!(p.dequeue_cost(cells).cell_data_reads, cells as u64);
        }
    }

    #[test]
    fn costs_match_fig10_shape() {
        // Single-cell packet with one list: ① ② ③ ④ (⑤) = 3 cycles.
        let p = DequeuePipeline::new(1);
        let c = p.dequeue_cost(1);
        assert_eq!(c.cycles, 3);
        assert_eq!(c.pd_accesses, 2);
        assert_eq!(c.cell_ptr_accesses, 2);
    }

    #[test]
    fn parallel_lists_cut_pointer_cycles() {
        let serial = DequeuePipeline::new(1);
        let quad = DequeuePipeline::new(4);
        // An 8-cell packet: 8 pointer cycles vs 2.
        assert_eq!(serial.dequeue_cost(8).cycles, 10);
        assert_eq!(quad.dequeue_cost(8).cycles, 4);
        // Access counts are identical — parallelism is about cycles only.
        assert_eq!(
            serial.dequeue_cost(8).cell_ptr_accesses,
            quad.dequeue_cost(8).cell_ptr_accesses
        );
    }

    #[test]
    fn zero_cell_packets_still_cost_a_cell() {
        let p = DequeuePipeline::default();
        assert_eq!(p.dequeue_cost(0).cycles, p.dequeue_cost(1).cycles);
    }

    #[test]
    fn interrupt_semantics_split_at_cycle_two() {
        let p = DequeuePipeline::default();
        assert_eq!(p.interrupt_head_drop(1), InterruptOutcome::QueueUntouched);
        assert_eq!(p.interrupt_head_drop(2), InterruptOutcome::QueueUntouched);
        assert_eq!(p.interrupt_head_drop(3), InterruptOutcome::PdAlreadyRemoved);
        assert_eq!(p.interrupt_head_drop(9), InterruptOutcome::PdAlreadyRemoved);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_lists_rejected() {
        DequeuePipeline::new(0);
    }
}
