//! Property-based tests for the cell-level traffic manager and circuits.

use occamy_core::{BmKind, QueueConfig};
use occamy_hw::{CellPointerMemory, MaxFinder, TrafficManager, CELL_SIZE};
use proptest::prelude::*;

proptest! {
    /// Cell allocation/free conserves cells under arbitrary interleavings
    /// and never aliases chains.
    #[test]
    fn cell_memory_conservation(
        ops in prop::collection::vec((1u32..20, prop::bool::ANY), 1..200)
    ) {
        let mut mem = CellPointerMemory::new(256);
        let mut live: Vec<(u32, u64, u32)> = Vec::new(); // (head, pkt, cells)
        let mut next_pkt = 0u64;
        for (cells, alloc) in ops {
            if alloc {
                if let Some(head) = mem.alloc_chain(cells, next_pkt) {
                    live.push((head, next_pkt, cells));
                    next_pkt += 1;
                }
            } else if let Some((head, pkt, cells)) = live.pop() {
                prop_assert_eq!(mem.free_chain(head, pkt), cells);
            }
            let live_cells: u32 = live.iter().map(|&(_, _, c)| c).sum();
            prop_assert_eq!(mem.free_cells(), 256 - live_cells as usize);
            prop_assert!(mem.check_conservation());
        }
    }

    /// Each allocated chain's walked length equals the requested count.
    #[test]
    fn chains_have_requested_length(sizes in prop::collection::vec(1u32..30, 1..12)) {
        let mut mem = CellPointerMemory::new(512);
        for (i, &n) in sizes.iter().enumerate() {
            if let Some(head) = mem.alloc_chain(n, i as u64) {
                prop_assert_eq!(mem.chain_len(head), n);
            }
        }
    }

    /// The traffic manager keeps every cross-structure invariant under a
    /// random mix of enqueues, dequeues and head drops — with every BM
    /// scheme.
    #[test]
    fn tm_invariants_under_random_ops(
        kind_idx in 0usize..4,
        ops in prop::collection::vec((0usize..4, 40u64..2_000, 0u8..3), 1..300)
    ) {
        let kinds = [BmKind::Dt, BmKind::Occamy, BmKind::Abm, BmKind::Pushout];
        let cfg = QueueConfig::uniform(4, 10_000_000_000, 2.0);
        let mut tm = TrafficManager::new(200, 4, kinds[kind_idx].build(cfg));
        let mut pkt = 0u64;
        let mut now = 0u64;
        for (q, len, op) in ops {
            now += 100;
            match op {
                0 => {
                    tm.enqueue(q, pkt, len, now);
                    pkt += 1;
                }
                1 => {
                    tm.dequeue(q, now);
                }
                _ => {
                    tm.head_drop(q, now);
                }
            }
            prop_assert!(tm.check_invariants(), "invariants broke");
        }
        // Conservation across counters: everything enqueued is either
        // still queued, transmitted, or head-dropped.
        let st = tm.stats();
        let queued: u64 = (0..4).map(|q| tm.queue_pkts(q) as u64).sum();
        prop_assert_eq!(
            st.enqueued_pkts,
            queued + st.dequeued_pkts + st.head_dropped_pkts
        );
    }

    /// Draining a traffic manager returns the buffer to pristine state.
    #[test]
    fn tm_drains_clean(fills in prop::collection::vec((0usize..3, 40u64..1_500), 1..60)) {
        let cfg = QueueConfig::uniform(3, 10_000_000_000, 8.0);
        let mut tm = TrafficManager::new(300, 3, BmKind::Occamy.build(cfg));
        for (i, &(q, len)) in fills.iter().enumerate() {
            tm.enqueue(q, i as u64, len, i as u64);
        }
        for q in 0..3 {
            while tm.dequeue(q, 1_000_000).is_some() {}
        }
        prop_assert_eq!(tm.state().total(), 0);
        prop_assert!(tm.check_invariants());
    }

    /// Cell-rounded accounting: occupancy is always a multiple of the
    /// cell size and at least the wire bytes.
    #[test]
    fn tm_accounts_in_cells(lens in prop::collection::vec(1u64..4_000, 1..40)) {
        let cfg = QueueConfig::uniform(1, 10_000_000_000, 64.0);
        let mut tm = TrafficManager::new(10_000, 1, BmKind::Dt.build(cfg));
        let mut wire = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            if matches!(tm.enqueue(0, i as u64, len, 0), occamy_hw::EnqueueOutcome::Accepted) {
                wire += len;
            }
        }
        prop_assert_eq!(tm.state().total() % CELL_SIZE, 0);
        prop_assert!(tm.state().total() >= wire);
        prop_assert_eq!(tm.queue_wire_bytes(0), wire);
    }

    /// The comparator tree finds exactly the argmax (lowest index on
    /// ties) for arbitrary inputs and widths.
    #[test]
    fn maxfinder_matches_argmax(vals in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mf = MaxFinder::new(vals.len(), 20);
        let got = mf.find(&vals).unwrap();
        let exp = vals
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap();
        prop_assert_eq!(got, exp);
    }

    /// Tree delay is monotone in both input count and bit width.
    #[test]
    fn maxfinder_delay_monotone(n in 1usize..512, k in 1u32..63) {
        let base = MaxFinder::new(n, k);
        let wider = MaxFinder::new(n, k + 1);
        let bigger = MaxFinder::new(n * 2, k);
        prop_assert!(wider.delay_ps() >= base.delay_ps());
        prop_assert!(bigger.delay_ps() >= base.delay_ps());
    }
}
