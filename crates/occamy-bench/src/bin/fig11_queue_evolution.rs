//! Reproduces paper **Fig. 11**: queue-length evolution under Occamy vs
//! DT with α ∈ {1, 4} on the P4-testbed scenario.
//!
//! Topology (Fig. 12a): a sender with two fast NICs, two 10 G receivers,
//! one 1.2 MB shared-buffer switch. Long-lived traffic entrenches
//! queue 1; a bursty stream then arrives at queue 2. The paper's shape:
//! with Occamy, `q1` is actively drained (head-dropped) as soon as the
//! burst arrives, so `q2` climbs to the fair share before losing a
//! packet; with DT and a large α (little reserve), `q2` is choked far
//! below the fair share while `q1` stays entrenched.
//!
//! Timescale note: the paper's x-axis (µs) is inconsistent with draining
//! ~1 MB at 10 Gbps (~0.8 ms); we report milliseconds.

use occamy_bench::results_path;
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{ps_to_ms, CbrDesc, SimConfig, World, MS, US};
use occamy_stats::Table;

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;
const BUFFER: u64 = 1_200_000;
const BURST_AT: u64 = 3 * MS;

fn run(kind: BmKind, alpha: f64) -> World {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G100, G100, G10, G10],
        prop_ps: 1 * US,
        buffer_bytes: BUFFER,
        classes: 1,
        bm: BmSpec::uniform(kind, alpha),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    // Long-lived traffic: 20 G → 10 G, from t = 0, entrenches queue 1.
    w.add_cbr(CbrDesc {
        host: 0,
        dst: 2,
        rate_bps: 20_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: 8 * MS,
        budget_bytes: None,
    });
    // Bursty traffic: 100 G line-rate burst of 800 KB at t = BURST_AT.
    w.add_cbr(CbrDesc {
        host: 1,
        dst: 3,
        rate_bps: G100,
        pkt_len: 1_460,
        prio: 0,
        start_ps: BURST_AT,
        stop_ps: 8 * MS,
        budget_bytes: Some(800_000),
    });
    w.add_queue_sampler(0, 0, 50 * US, 8 * MS);
    w.run_to_completion(8 * MS);
    w
}

fn panel(label: &str, kind: BmKind, alpha: f64, csv: &str) -> (u64, u64) {
    let w = run(kind, alpha);
    let mut t = Table::new(label, &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
    for s in w
        .metrics
        .queue_samples
        .iter()
        .filter(|s| s.t % (250 * US) == 0)
    {
        t.row(vec![
            format!("{:.2}", ps_to_ms(s.t)),
            format!("{:.0}", s.qlens[2] as f64 / 1e3),
            format!("{:.0}", s.qlens[3] as f64 / 1e3),
            format!("{:.0}", s.thresholds[3] as f64 / 1e3),
        ]);
    }
    t.print();
    t.to_csv(&results_path(csv)).ok();
    let q2_peak = w
        .metrics
        .queue_samples
        .iter()
        .map(|s| s.qlens[3])
        .max()
        .unwrap_or(0);
    (q2_peak, w.metrics.drops.total_losses())
}

fn main() {
    let (o1_peak, _) = panel("Fig 11a: Occamy, α = 1", BmKind::Occamy, 1.0, "fig11a.csv");
    let (o4_peak, _) = panel("Fig 11b: Occamy, α = 4", BmKind::Occamy, 4.0, "fig11b.csv");
    let (d1_peak, _) = panel("Fig 11c: DT, α = 1", BmKind::Dt, 1.0, "fig11c.csv");
    let (d4_peak, _) = panel("Fig 11d: DT, α = 4", BmKind::Dt, 4.0, "fig11d.csv");

    // Fair share with two congested queues: αB/(1+2α).
    let fair = |a: f64| (a * BUFFER as f64 / (1.0 + 2.0 * a)) as u64 / 1000;
    println!(
        "Shape check (q2 peak vs fair share, KB): Occamy α1 {}/{}  \
         Occamy α4 {}/{}  DT α1 {}/{}  DT α4 {}/{}",
        o1_peak / 1000,
        fair(1.0),
        o4_peak / 1000,
        fair(4.0),
        d1_peak / 1000,
        fair(1.0),
        d4_peak / 1000,
        fair(4.0),
    );
    println!(
        "Expected: Occamy reaches the fair share at both αs; DT reaches it \
         only at α = 1 and is choked at α = 4 (paper Fig. 11d)."
    );
}
