//! Reproduces paper **Fig. 17**: large-scale leaf-spine simulation with
//! web-search background traffic.
//!
//! Query (incast) traffic over a 90%-loaded web-search background; four
//! panels vs query size (% of a buffer partition): average / p99 QCT
//! slowdown, overall background average FCT slowdown, small-background
//! p99 FCT slowdown.
//!
//! Paper shape: Occamy reduces average QCT slowdown by up to ~44% vs DT
//! and ~36% vs ABM, tracks Pushout closely, and also helps background
//! flows (up to ~20% on average FCT, ~32% on small-flow p99).

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![40, 100]
    } else {
        vec![20, 60, 100]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["query_pct_buffer"];
    cols.extend(&names);

    let mut t_avg = Table::new("Fig 17a: average QCT slowdown", &cols);
    let mut t_p99 = Table::new("Fig 17b: p99 QCT slowdown", &cols);
    let mut t_bg = Table::new("Fig 17c: overall bg average FCT slowdown", &cols);
    let mut t_small = Table::new("Fig 17d: small bg p99 FCT slowdown", &cols);

    let mut dt_avg_at_mid = None;
    let mut occamy_avg_at_mid = None;
    for &pct in &sizes_pct {
        let mut rows: [Vec<String>; 4] = Default::default();
        for r in rows.iter_mut() {
            r.push(pct.to_string());
        }
        for &(kind, alpha, name) in &schemes {
            let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
            sc.query_bytes = sc.buffer_per_8ports * pct / 100;
            if quick_mode() {
                sc.duration_ps = 10 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            let avg = r.qct_slowdown.mean();
            if pct == 40 {
                if name == "DT" {
                    dt_avg_at_mid = avg;
                }
                if name == "Occamy" {
                    occamy_avg_at_mid = avg;
                }
            }
            rows[0].push(fmt(avg));
            rows[1].push(fmt(r.qct_slowdown.p99()));
            rows[2].push(fmt(r.bg_slowdown.mean()));
            rows[3].push(fmt(r.small_bg_slowdown.p99()));
        }
        t_avg.row(rows[0].clone());
        t_p99.row(rows[1].clone());
        t_bg.row(rows[2].clone());
        t_small.row(rows[3].clone());
    }
    for (t, csv) in [
        (&t_avg, "fig17a.csv"),
        (&t_p99, "fig17b.csv"),
        (&t_bg, "fig17c.csv"),
        (&t_small, "fig17d.csv"),
    ] {
        t.print();
        t.to_csv(&results_path(csv)).ok();
    }
    if let (Some(d), Some(o)) = (dt_avg_at_mid, occamy_avg_at_mid) {
        println!(
            "Shape check at 40% query size: Occamy cuts DT's average QCT \
             slowdown by {:.0}% (paper: up to ~44%).",
            (1.0 - o / d) * 100.0
        );
    }
}
