//! Reproduces paper **Fig. 21**: effectiveness of round-robin drop.
//!
//! Occamy deliberately expels from over-allocated queues in round-robin
//! order instead of tracking the longest queue (which needs a Maximum
//! Finder, Fig. 4). This ablation compares Occamy against its
//! longest-queue-drop variant on the leaf-spine scenario at 40%
//! background load.
//!
//! Paper shape: the difference is small — within ~15% on average QCT and
//! within ~8.8% on average FCT — justifying the cheap RR arbiter.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{BgPattern, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_core::BmKind;
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![40, 100]
    } else {
        vec![20, 60, 100]
    };
    let variants = [
        (BmKind::Occamy, "RoundRobin"),
        (BmKind::OccamyLongest, "Longest"),
    ];
    let cols = &[
        "query_pct_buffer",
        "avg_qct_RR",
        "avg_qct_Longest",
        "p99_qct_RR",
        "p99_qct_Longest",
        "avg_fct_RR",
        "avg_fct_Longest",
        "p99_small_RR",
        "p99_small_Longest",
    ];
    let mut t = Table::new(
        "Fig 21: round-robin vs longest-queue drop (slowdowns)",
        cols,
    );
    let mut max_qct_gap = 0.0f64;
    let mut max_fct_gap = 0.0f64;
    for &pct in &sizes_pct {
        let mut cells = vec![pct.to_string()];
        let mut qct = Vec::new();
        let mut p99q = Vec::new();
        let mut fct = Vec::new();
        let mut small = Vec::new();
        for &(kind, _) in &variants {
            let mut sc = LeafSpineScenario::paper_scaled(kind, 8.0);
            sc.bg = BgPattern::WebSearch { load: 0.4 };
            sc.query_bytes = sc.buffer_per_8ports * pct / 100;
            if quick_mode() {
                sc.duration_ps = 10 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            qct.push(r.qct_slowdown.mean());
            p99q.push(r.qct_slowdown.p99());
            fct.push(r.bg_slowdown.mean());
            small.push(r.small_bg_slowdown.p99());
        }
        if let (Some(a), Some(b)) = (qct[0], qct[1]) {
            max_qct_gap = max_qct_gap.max((a - b).abs() / b.max(1e-9));
        }
        if let (Some(a), Some(b)) = (fct[0], fct[1]) {
            max_fct_gap = max_fct_gap.max((a - b).abs() / b.max(1e-9));
        }
        for pair in [qct, p99q, fct, small] {
            cells.push(fmt(pair[0]));
            cells.push(fmt(pair[1]));
        }
        t.row(cells);
    }
    t.print();
    t.to_csv(&results_path("fig21.csv")).ok();
    println!(
        "Shape check: max avg-QCT gap {:.1}% (paper: within ~15%), max \
         avg-FCT gap {:.1}% (paper: within ~8.8%).",
        max_qct_gap * 100.0,
        max_fct_gap * 100.0
    );
}
