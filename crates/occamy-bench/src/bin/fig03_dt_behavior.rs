//! Reproduces paper **Fig. 3**: healthy vs anomalous DT dynamics.
//!
//! Two queues share a buffer under DT. Queue 1 is congested and sits at
//! its threshold; at t = 1 ms a burst arrives at queue 2.
//!
//! - *Healthy* (Fig. 3a): the burst arrives just above queue 2's drain
//!   rate, so DT has time to walk queue 1 down along `T(t)` and both
//!   queues converge to the fair share.
//! - *Anomalous* (Fig. 3b): the burst arrives far faster than queue 1
//!   can drain; `T(t)` collapses below `q1`, and queue 2 starts dropping
//!   packets *before* reaching its fair share ("drop before fair").

use occamy_bench::results_path;
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{ps_to_ms, CbrDesc, SimConfig, World, MS, US};
use occamy_stats::Table;

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;
const BUFFER: u64 = 1_200_000;

/// Runs the two-queue scenario with the given queue-2 arrival rate.
fn run(q2_rate_bps: u64) -> World {
    let mut w = single_switch(SingleSwitchCfg {
        // Hosts 0/1 send (fast NICs); hosts 2/3 receive at 10 G.
        host_rates_bps: vec![G100, G100, G10, G10],
        prop_ps: 1 * US,
        buffer_bytes: BUFFER,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 1.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    // Queue 1 (toward host 2): persistently congested from t = 0.
    w.add_cbr(CbrDesc {
        host: 0,
        dst: 2,
        rate_bps: 20_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: 12 * MS,
        budget_bytes: None,
    });
    // Queue 2 (toward host 3): burst begins at t = 1 ms.
    w.add_cbr(CbrDesc {
        host: 1,
        dst: 3,
        rate_bps: q2_rate_bps,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 1 * MS,
        stop_ps: 12 * MS,
        budget_bytes: None,
    });
    w.add_queue_sampler(0, 0, 100 * US, 12 * MS);
    w.run_to_completion(12 * MS);
    w
}

fn series(w: &World, title: &str, csv: &str) {
    let mut t = Table::new(title, &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
    for s in w
        .metrics
        .queue_samples
        .iter()
        .filter(|s| s.t % (500 * US) == 0)
    {
        t.row(vec![
            format!("{:.1}", ps_to_ms(s.t)),
            format!("{:.1}", s.qlens[2] as f64 / 1e3),
            format!("{:.1}", s.qlens[3] as f64 / 1e3),
            format!("{:.1}", s.thresholds[2] as f64 / 1e3),
        ]);
    }
    t.print();
    t.to_csv(&results_path(csv)).ok();
}

fn main() {
    // Healthy: queue 2 grows slowly (11 G in, 10 G out ⇒ 1 G net).
    let healthy = run(11_000_000_000);
    series(
        &healthy,
        "Fig 3a: healthy DT behavior (slow burst)",
        "fig03a.csv",
    );
    let h_drops = healthy.metrics.drops.total_losses();

    // Anomalous: queue 2 grows at ~90 G net — far faster than q1 drains.
    let anomalous = run(G100);
    series(
        &anomalous,
        "Fig 3b: anomalous DT behavior (fast burst)",
        "fig03b.csv",
    );

    // Shape check. In the healthy case queue 2 grows slowly enough that
    // DT walks queue 1 down along T(t): queue 2 itself loses (almost)
    // nothing. In the anomalous case the burst outruns queue 1's drain,
    // T(t) collapses below q1, and queue 2 is dropped heavily *before*
    // receiving its fair share ("drop before fair", Fig. 3b).
    let fair = BUFFER / 3; // q1 = q2 = T = B/3 at α = 1 with 2 queues
    let q2_loss_healthy = healthy.metrics.cbr[1].loss_rate();
    let q2_loss_anom = anomalous.metrics.cbr[1].loss_rate();
    let q2_end_healthy = healthy
        .metrics
        .queue_samples
        .iter()
        .last()
        .map(|s| s.qlens[3])
        .unwrap_or(0);
    println!(
        "Shape check: fair share = {} KB; healthy q2 converges to {} KB \
         with q2 loss rate {:.4} (total drops {}, mostly q1's own \
         overload); anomalous q2 suffers loss rate {:.4} before its fair \
         share.",
        fair / 1000,
        q2_end_healthy / 1000,
        q2_loss_healthy,
        h_drops,
        q2_loss_anom,
    );
}
