//! Reproduces paper **Fig. 18**: performance with all-to-all background
//! traffic (the AI-workload scenario).
//!
//! Background: repeated all-to-all rounds of identical-size flows; the
//! flow size is swept 16 KB – 2 MB. Incast queries run on top.
//!
//! Paper shape: Occamy improves average QCT by up to ~33% and p99
//! background FCT by up to ~88% versus DT.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, BgPattern, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let sizes: Vec<u64> = if quick_mode() {
        vec![64_000, 512_000]
    } else {
        vec![32_000, 128_000, 512_000, 2_000_000]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["flow_size"];
    cols.extend(&names);

    let mut t_qct = Table::new("Fig 18a: average QCT slowdown", &cols);
    let mut t_bg = Table::new("Fig 18b: overall bg p99 FCT slowdown", &cols);
    for &size in &sizes {
        let mut row_q = vec![size.to_string()];
        let mut row_b = vec![size.to_string()];
        for &(kind, alpha, _) in &schemes {
            let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
            sc.bg = BgPattern::AllToAll {
                flow_bytes: size,
                load: 0.4,
            };
            sc.query_bytes = sc.buffer_per_8ports * 40 / 100;
            if quick_mode() {
                sc.duration_ps = 10 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            row_q.push(fmt(r.qct_slowdown.mean()));
            row_b.push(fmt(r.bg_slowdown.p99()));
        }
        t_qct.row(row_q);
        t_bg.row(row_b);
    }
    t_qct.print();
    t_qct.to_csv(&results_path("fig18a.csv")).ok();
    t_bg.print();
    t_bg.to_csv(&results_path("fig18b.csv")).ok();
    println!(
        "Shape check: columns {names:?}; Occamy ≈ Pushout should lead on \
         both panels, most visibly at mid flow sizes."
    );
}
