//! Reproduces paper **Fig. 6**: performance degradation of DT due to
//! anomalous behavior (the §3.1 motivation testbed).
//!
//! - Fig. 6a (buffer choking): high-priority incast shares a port with 14
//!   low-priority long-lived CUBIC flows under strict priority. DT is
//!   configured so the incast deserves the *same* buffer with and without
//!   the LP traffic (α = 8 for HP with LP present, α = 1 without); QCT
//!   should therefore be unaffected — but LP queues drain slowly and choke
//!   the buffer, inflating QCT several-fold.
//! - Fig. 6b (inter-port influence): the same comparison with the
//!   background on a *different* port — the degradation persists because
//!   DT cannot reallocate buffer fast enough for the incast.
//!
//! Scaled from the paper's 8 × 40 G / 2 MB testbed to 8 × 10 G / 500 KB
//! (same buffer per port per Gbps); query sizes scale by the same 4×.

use occamy_bench::report::fmt;
use occamy_bench::results_path;
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{CcAlgo, FlowDesc, SimConfig, MS, US};
use occamy_stats::{Summary, Table};

const G10: u64 = 10_000_000_000;
const BUFFER: u64 = 500_000;
const QUERIES: usize = 8;
const GAP: u64 = 100 * MS;

struct Setup {
    /// Background: None, same-port (choking), or other-port (inter-port).
    bg_port: Option<usize>,
    hp_alpha: f64,
}

/// Runs sequential incast queries of `query_bytes` and returns QCTs (ms).
fn run(setup: &Setup, query_bytes: u64) -> Summary {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 8],
        prop_ps: 1 * US,
        buffer_bytes: BUFFER,
        classes: 8,
        bm: BmSpec {
            kind: BmKind::Dt,
            alpha_per_class: {
                let mut a = vec![1.0; 8];
                a[0] = setup.hp_alpha;
                a
            },
        },
        sched: SchedKind::StrictPriority,
        sim: SimConfig {
            min_rto: 10 * MS,
            ..SimConfig::default()
        },
    });
    // Low-priority background: 14 long-lived CUBIC flows from hosts 6/7,
    // one per LP class 1..=7 (paper: "14 long-lived flows from 2 other
    // senders, each classified into one of 7 low-priority queues").
    if let Some(dst) = setup.bg_port {
        for i in 0..14 {
            w.add_flow(FlowDesc {
                src: 6 + i % 2,
                dst,
                bytes: u64::MAX / 4, // effectively long-lived
                start_ps: 0,
                prio: 1 + (i % 7) as u8,
                cc: CcAlgo::Cubic,
                query: None,
                is_query: false,
            });
        }
    }
    // High-priority incast to host 0: degree 40 = 5 senders × 8 flows.
    for q in 0..QUERIES {
        let start = 20 * MS + q as u64 * GAP;
        for s in 0..5 {
            for f in 0..8 {
                w.add_flow(FlowDesc {
                    src: 1 + s,
                    dst: 0,
                    bytes: (query_bytes / 40).max(1),
                    start_ps: start,
                    prio: 0,
                    cc: CcAlgo::Dctcp,
                    query: Some(q as u64),
                    is_query: true,
                });
                let _ = f;
            }
        }
    }
    w.run_to_completion(20 * MS + QUERIES as u64 * GAP + 500 * MS);
    w.flow_records().qct_ms()
}

fn main() {
    // Query sizes: the paper sweeps 2–14 MB on 40 G; scaled 4× down.
    let sizes_kb: Vec<u64> = vec![500, 1_000, 1_500, 2_000, 2_500, 3_000, 3_500];

    let mut a = Table::new(
        "Fig 6a: buffer choking (HP incast vs LP traffic on the same port)",
        &["query_KB", "qct_ms_no_lp", "qct_ms_with_lp", "degradation"],
    );
    let mut worst_a = 0.0f64;
    for &kb in &sizes_kb {
        let without = run(
            &Setup {
                bg_port: None,
                hp_alpha: 1.0,
            },
            kb * 1000,
        )
        .mean();
        let with = run(
            &Setup {
                bg_port: Some(0),
                hp_alpha: 8.0,
            },
            kb * 1000,
        )
        .mean();
        if let (Some(w0), Some(w1)) = (without, with) {
            worst_a = worst_a.max(w1 / w0);
        }
        a.row(vec![
            kb.to_string(),
            fmt(without),
            fmt(with),
            match (without, with) {
                (Some(x), Some(y)) => format!("{:.1}x", y / x),
                _ => "-".into(),
            },
        ]);
    }
    a.print();
    a.to_csv(&results_path("fig06a.csv")).ok();

    let mut b = Table::new(
        "Fig 6b: inter-port influence (background on a different port)",
        &["query_KB", "qct_ms_no_bg", "qct_ms_with_bg", "degradation"],
    );
    let mut worst_b = 0.0f64;
    for &kb in &sizes_kb {
        let without = run(
            &Setup {
                bg_port: None,
                hp_alpha: 1.0,
            },
            kb * 1000,
        )
        .mean();
        // Background congests port 5; incast still deserves the same
        // buffer (α = 1 for it in both runs — the bg holds its own share).
        let with = run(
            &Setup {
                bg_port: Some(5),
                hp_alpha: 1.0,
            },
            kb * 1000,
        )
        .mean();
        if let (Some(w0), Some(w1)) = (without, with) {
            worst_b = worst_b.max(w1 / w0);
        }
        b.row(vec![
            kb.to_string(),
            fmt(without),
            fmt(with),
            match (without, with) {
                (Some(x), Some(y)) => format!("{:.1}x", y / x),
                _ => "-".into(),
            },
        ]);
    }
    b.print();
    b.to_csv(&results_path("fig06b.csv")).ok();

    println!(
        "Shape check: paper reports up to ~8x degradation with LP traffic \
         (6a) and up to ~2x with inter-port background (6b); measured \
         {worst_a:.1}x and {worst_b:.1}x."
    );
}
