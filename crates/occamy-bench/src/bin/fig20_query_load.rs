//! Reproduces paper **Fig. 20**: performance with higher query-traffic
//! rates.
//!
//! The query load is swept from 10% to 80% (via the query rate, with
//! query size fixed at 80% of a buffer partition and light 10%
//! background).
//!
//! Paper shape: Occamy improves average QCT by up to ~38% vs DT and ~34%
//! vs ABM; the improvement is *largest at low query load* (DT's
//! inefficiency is most pronounced with few active ports); background
//! FCT is barely affected by the BM choice.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, BgPattern, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let loads_pct: Vec<u64> = if quick_mode() {
        vec![20, 60]
    } else {
        vec![10, 30, 50, 80]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["query_load_pct"];
    cols.extend(&names);

    let mut t_qct = Table::new("Fig 20a: average QCT slowdown", &cols);
    let mut t_bg = Table::new("Fig 20b: overall bg average FCT slowdown", &cols);

    for &load in &loads_pct {
        let mut row_q = vec![load.to_string()];
        let mut row_b = vec![load.to_string()];
        for &(kind, alpha, _) in &schemes {
            let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
            sc.bg = BgPattern::WebSearch { load: 0.1 };
            sc.query_bytes = sc.buffer_per_8ports * 80 / 100;
            // Load = qps × size × oversubscription / link rate (paper's
            // footnote 5); our fabric has the same 2:1 oversubscription.
            let oversub = 2.0;
            sc.qps_per_host = load as f64 / 100.0 * sc.link_rate_bps as f64
                / (8.0 * sc.query_bytes as f64 * oversub);
            if quick_mode() {
                sc.duration_ps = 10 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            row_q.push(fmt(r.qct_slowdown.mean()));
            row_b.push(fmt(r.bg_slowdown.mean()));
        }
        t_qct.row(row_q);
        t_bg.row(row_b);
    }
    t_qct.print();
    t_qct.to_csv(&results_path("fig20a.csv")).ok();
    t_bg.print();
    t_bg.to_csv(&results_path("fig20b.csv")).ok();
    println!(
        "Shape check: columns {names:?}; Occamy/Pushout lead most at low \
         loads; panel (b) roughly flat across schemes."
    );
}
