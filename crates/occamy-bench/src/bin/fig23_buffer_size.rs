//! Reproduces paper **Fig. 23**: impact of the buffer size.
//!
//! The per-port-per-Gbps buffer is swept from 3.44 KB (Intel Tofino) to
//! 9.6 KB (Broadcom Trident2); background 40%, query size 40% of the
//! (varying) partition buffer.
//!
//! Paper shape: Occamy keeps a consistent advantage over DT across the
//! whole range (~37% better average QCT at 3.44 KB, ~40% at 9.6 KB).

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, BgPattern, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    // KB per port per Gbps, paper's Fig. 23 x-axis.
    let sizes_kb = if quick_mode() {
        vec![3.44, 9.6]
    } else {
        vec![3.44, 5.12, 9.6]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["KB_per_port_per_Gbps"];
    cols.extend(&names);

    let mut t_avg = Table::new("Fig 23a: average QCT slowdown", &cols);
    let mut t_p99 = Table::new("Fig 23b: p99 QCT slowdown", &cols);
    let mut t_bg = Table::new("Fig 23c: overall bg average FCT slowdown", &cols);
    let mut t_small = Table::new("Fig 23d: small bg p99 FCT slowdown", &cols);

    for &kb in &sizes_kb {
        let mut rows: [Vec<String>; 4] = Default::default();
        for r in rows.iter_mut() {
            r.push(format!("{kb}"));
        }
        for &(kind, alpha, _) in &schemes {
            let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
            sc.bg = BgPattern::WebSearch { load: 0.4 };
            // Buffer per 8 ports = 8 × rate_Gbps × KB-per-port-per-Gbps.
            let gbps = sc.link_rate_bps as f64 / 1e9;
            sc.buffer_per_8ports = (8.0 * gbps * kb * 1_000.0) as u64;
            sc.query_bytes = sc.buffer_per_8ports * 40 / 100;
            if quick_mode() {
                sc.duration_ps = 10 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            rows[0].push(fmt(r.qct_slowdown.mean()));
            rows[1].push(fmt(r.qct_slowdown.p99()));
            rows[2].push(fmt(r.bg_slowdown.mean()));
            rows[3].push(fmt(r.small_bg_slowdown.p99()));
        }
        t_avg.row(rows[0].clone());
        t_p99.row(rows[1].clone());
        t_bg.row(rows[2].clone());
        t_small.row(rows[3].clone());
    }
    for (t, csv) in [
        (&t_avg, "fig23a.csv"),
        (&t_p99, "fig23b.csv"),
        (&t_bg, "fig23c.csv"),
        (&t_small, "fig23d.csv"),
    ] {
        t.print();
        t.to_csv(&results_path(csv)).ok();
    }
    println!(
        "Shape check: columns {names:?}; Occamy should lead DT at every \
         buffer size, shrinking QCT slowdown by roughly a third or more."
    );
}
