//! Reproduces paper **Fig. 7**: CDFs of buffer and memory-bandwidth
//! utilization sampled at packet-drop instants.
//!
//! Leaf-spine fabric under DT with web-search background (no queries).
//! - Fig. 7a: buffer utilization on drop for α ∈ {0.5, 1} at 40% load —
//!   the paper's point is that DT drops while a large fraction of the
//!   buffer is still free (p99 utilization ≈ 66% at α = 0.5).
//! - Fig. 7b: memory-bandwidth utilization on drop for loads
//!   {20, 40, 90}% — even at 90% load the median free bandwidth is ~38%,
//!   the headroom Occamy's expulsion path exploits.

use occamy_bench::quick_mode;
use occamy_bench::results_path;
use occamy_bench::scenarios::{BgPattern, LeafSpineScenario};
use occamy_core::BmKind;
use occamy_sim::MS;
use occamy_stats::{Cdf, Table};

fn run(alpha: f64, load: f64) -> (Cdf, Cdf) {
    let mut sc = LeafSpineScenario::paper_scaled(BmKind::Dt, alpha);
    sc.bg = BgPattern::WebSearch { load };
    sc.qps_per_host = 0.0; // background only, as in §3.1
    if quick_mode() {
        sc.duration_ps = 10 * MS;
        sc.drain_ps = 50 * MS;
    }
    let (world, _) = sc.run_world();
    let mut buf = Cdf::new();
    let mut bw = Cdf::new();
    for &u in &world.metrics.drop_buffer_util {
        buf.add(u);
    }
    for &u in &world.metrics.drop_membw_util {
        bw.add(u);
    }
    (buf, bw)
}

fn quantile_row(label: &str, cdf: &mut Cdf) -> Vec<String> {
    let q = |cdf: &mut Cdf, p: f64| {
        cdf.quantile(p)
            .map(|v| format!("{:.1}", v * 100.0))
            .unwrap_or_else(|| "-".into())
    };
    vec![
        label.to_string(),
        cdf.len().to_string(),
        q(cdf, 0.25),
        q(cdf, 0.50),
        q(cdf, 0.75),
        q(cdf, 0.90),
        q(cdf, 0.99),
    ]
}

fn main() {
    let cols = &["series", "drops", "p25", "p50", "p75", "p90", "p99"];

    let mut a = Table::new(
        "Fig 7a: buffer utilization (%) at drop instants, 40% load",
        cols,
    );
    let (mut buf_half, _) = run(0.5, 0.4);
    let (mut buf_one, _) = run(1.0, 0.4);
    let p99_half = buf_half.quantile(0.99);
    a.row(quantile_row("alpha=0.5", &mut buf_half));
    a.row(quantile_row("alpha=1", &mut buf_one));
    a.print();
    a.to_csv(&results_path("fig07a.csv")).ok();

    let mut b = Table::new(
        "Fig 7b: memory-bandwidth utilization (%) at drop instants (alpha=0.5)",
        cols,
    );
    let mut medians = Vec::new();
    for load in [0.2, 0.4, 0.9] {
        let (_, mut bw) = run(0.5, load);
        medians.push((load, bw.quantile(0.5)));
        b.row(quantile_row(&format!("load={:.0}%", load * 100.0), &mut bw));
    }
    b.print();
    b.to_csv(&results_path("fig07b.csv")).ok();

    println!(
        "Shape check: paper reports p99 buffer utilization ~66% at α=0.5 \
         (measured {}); and ≥~38% median *free* memory bandwidth even at \
         90% load (measured free {}).",
        p99_half
            .map(|v| format!("{:.0}%", v * 100.0))
            .unwrap_or_else(|| "n/a".into()),
        medians
            .last()
            .and_then(|(_, m)| *m)
            .map(|v| format!("{:.0}%", (1.0 - v) * 100.0))
            .unwrap_or_else(|| "n/a".into()),
    );
}
