//! **Extension ablation**: sensitivity of Occamy to the expulsion
//! bandwidth budget (the §4.5 discussion, beyond the paper's figures).
//!
//! The expulsion token bucket is refilled at `factor ×` the partition's
//! forwarding capacity. `factor = 0` disables expulsion entirely — by
//! the paper's argument Occamy must then degenerate to DT with the same
//! α (which, at α = 8, is DT with almost no reserve, i.e. *worse* than
//! tuned DT). Because transmission always pre-empts expulsion, the
//! budget only matters once it exceeds the *consumed* memory bandwidth:
//! redundancy is capacity minus utilization (the paper's Fig. 7b
//! framing), so factors below the sustained ~50–60% utilization behave
//! like factor 0, and the benefit switches on between 0.5 and 1.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::TestbedScenario;
use occamy_bench::{quick_mode, results_path};
use occamy_core::BmKind;
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let factors = [0.0, 0.05, 0.25, 0.5, 1.0];
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![80]
    } else {
        vec![40, 80, 120]
    };
    let cols: Vec<String> = std::iter::once("query_pct_buffer".to_string())
        .chain(factors.iter().map(|f| format!("factor_{f}")))
        .chain(std::iter::once("DT_alpha1".to_string()))
        .collect();
    let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut avg = Table::new(
        "Ablation: Occamy avg QCT (ms) vs expulsion-bandwidth factor",
        &colrefs,
    );
    let mut p99 = Table::new(
        "Ablation: Occamy p99 QCT (ms) vs expulsion-bandwidth factor",
        &colrefs,
    );
    for &pct in &sizes_pct {
        let bytes = 410_000 * pct / 100;
        let mut row_avg = vec![pct.to_string()];
        let mut row_p99 = vec![pct.to_string()];
        for &factor in &factors {
            let mut sc = TestbedScenario::paper_dpdk(BmKind::Occamy, 8.0).with_query_bytes(bytes);
            sc.sim.expel_rate_factor = factor;
            if quick_mode() {
                sc.duration_ps = 100 * MS;
                sc.drain_ps = 300 * MS;
            }
            let mut r = sc.run();
            row_avg.push(fmt(r.qct_ms.mean()));
            row_p99.push(fmt(r.qct_ms.p99()));
        }
        // Tuned-DT reference column.
        let mut dt = TestbedScenario::paper_dpdk(BmKind::Dt, 1.0).with_query_bytes(bytes);
        if quick_mode() {
            dt.duration_ps = 100 * MS;
            dt.drain_ps = 300 * MS;
        }
        let mut r = dt.run();
        row_avg.push(fmt(r.qct_ms.mean()));
        row_p99.push(fmt(r.qct_ms.p99()));
        avg.row(row_avg);
        p99.row(row_p99);
    }
    avg.print();
    avg.to_csv(&results_path("ablation_token_rate_avg.csv"))
        .ok();
    p99.print();
    p99.to_csv(&results_path("ablation_token_rate_p99.csv"))
        .ok();
    println!(
        "Shape check: factors at or below the sustained utilization \
         (~0.5 here) behave like no expulsion at all; the full-rate \
         budget restores Occamy's advantage over the tuned-DT reference \
         — redundant bandwidth is what remains above utilization."
    );
}
