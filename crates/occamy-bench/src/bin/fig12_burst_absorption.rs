//! Reproduces paper **Fig. 12**: burst loss rate vs burst size for
//! Occamy and DT with α ∈ {1, 2, 4} on the P4-testbed scenario.
//!
//! Paper shape: (1) at equal α, Occamy absorbs markedly larger bursts
//! than DT (≈57% more at α = 4) because it vacates the entrenched queue
//! instead of waiting for it to drain; (2) Occamy *improves* as α grows
//! (more usable buffer, agility intact) while DT *degrades* (less
//! reserve, no agility).

use occamy_bench::results_path;
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{CbrDesc, SimConfig, MS, US};
use occamy_stats::Table;

const G10: u64 = 10_000_000_000;
const G100: u64 = 100_000_000_000;
const BUFFER: u64 = 1_200_000;

fn loss_rate(kind: BmKind, alpha: f64, burst_bytes: u64) -> f64 {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G100, G100, G10, G10],
        prop_ps: 1 * US,
        buffer_bytes: BUFFER,
        classes: 1,
        bm: BmSpec::uniform(kind, alpha),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    w.add_cbr(CbrDesc {
        host: 0,
        dst: 2,
        rate_bps: 20_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: 10 * MS,
        budget_bytes: None,
    });
    let burst = w.add_cbr(CbrDesc {
        host: 1,
        dst: 3,
        rate_bps: G100,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 3 * MS,
        stop_ps: 10 * MS,
        budget_bytes: Some(burst_bytes),
    });
    w.run_to_completion(12 * MS);
    w.metrics.cbr[burst].loss_rate()
}

fn main() {
    let sizes: Vec<u64> = (3..=8).map(|k| k * 100_000).collect();
    let mut absorb: Vec<(String, u64)> = Vec::new();
    for alpha in [1.0, 2.0, 4.0] {
        let mut t = Table::new(
            &format!("Fig 12, α = {alpha}: burst loss rate"),
            &["burst_KB", "Occamy", "DT"],
        );
        let mut max_lossless = [0u64; 2];
        for &size in &sizes {
            let o = loss_rate(BmKind::Occamy, alpha, size);
            let d = loss_rate(BmKind::Dt, alpha, size);
            if o < 0.001 {
                max_lossless[0] = size;
            }
            if d < 0.001 {
                max_lossless[1] = size;
            }
            t.row(vec![
                (size / 1000).to_string(),
                format!("{o:.3}"),
                format!("{d:.3}"),
            ]);
        }
        t.print();
        t.to_csv(&results_path(&format!("fig12_alpha{alpha}.csv")))
            .ok();
        absorb.push((format!("Occamy α={alpha}"), max_lossless[0]));
        absorb.push((format!("DT α={alpha}"), max_lossless[1]));
    }
    let mut s = Table::new(
        "Fig 12 summary: largest lossless burst",
        &["scheme", "max_lossless_burst_KB"],
    );
    for (name, v) in &absorb {
        s.row(vec![name.clone(), (v / 1000).to_string()]);
    }
    s.print();
    s.to_csv(&results_path("fig12_summary.csv")).ok();
    println!(
        "Expected shape: Occamy's largest lossless burst grows with α and \
         exceeds DT's at every α; DT's shrinks as α grows."
    );
}
