//! Reproduces paper **Fig. 14**: performance isolation between service
//! queues.
//!
//! Two service queues per port, fairly scheduled with DRR; query traffic
//! (DCTCP) in one queue, background (CUBIC) in the other. The background
//! load is swept from 10% to 60%.
//!
//! Paper shape: as the load grows, DT and ABM start hitting RTOs for the
//! query traffic (exploding p99 QCT); Occamy and Pushout stay flat
//! because the buffer is reallocated quickly.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, TestbedBg, TestbedScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::topology::SchedKind;
use occamy_sim::{CcAlgo, MS};
use occamy_stats::Table;

fn main() {
    let loads: Vec<u64> = if quick_mode() {
        vec![20, 50]
    } else {
        vec![10, 20, 30, 40, 50, 60]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["bg_load_pct"];
    cols.extend(&names);

    let mut avg = Table::new("Fig 14a: average QCT (ms)", &cols);
    let mut p99 = Table::new("Fig 14b: p99 QCT (ms)", &cols);

    for &load in &loads {
        let mut row_avg = vec![load.to_string()];
        let mut row_p99 = vec![load.to_string()];
        for &(kind, alpha, _) in &schemes {
            let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(328_000); // 80% of buffer
            sc.classes = 2;
            sc.alpha_per_class = vec![alpha; 2];
            sc.sched = SchedKind::Drr { quantum: 1_500 };
            sc.query_class = 0;
            sc.bg = Some(TestbedBg {
                load: load as f64 / 100.0,
                cc: CcAlgo::Cubic,
                class: 1,
            });
            if quick_mode() {
                sc.duration_ps = 100 * MS;
                sc.drain_ps = 300 * MS;
            }
            let mut r = sc.run();
            row_avg.push(fmt(r.qct_ms.mean()));
            row_p99.push(fmt(r.qct_ms.p99()));
        }
        avg.row(row_avg);
        p99.row(row_p99);
    }
    avg.print();
    avg.to_csv(&results_path("fig14a.csv")).ok();
    p99.print();
    p99.to_csv(&results_path("fig14b.csv")).ok();
    println!(
        "Shape check: columns {names:?}; expect DT (and to a lesser degree \
         ABM) p99 to blow up with load while Occamy/Pushout stay low."
    );
}
