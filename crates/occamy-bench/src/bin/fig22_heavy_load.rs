//! Reproduces paper **Fig. 22**: performance under heavy (120%)
//! background load.
//!
//! Occamy's expulsion needs redundant memory bandwidth; this experiment
//! overloads the fabric to probe the §4.5 concern. The paper's answer:
//! congestion is unbalanced in practice (incast congests down-links while
//! up-links idle), so spare bandwidth remains and Occamy still wins.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, BgPattern, LeafSpineScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![40, 100]
    } else {
        vec![20, 60, 100]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["query_pct_buffer"];
    cols.extend(&names);

    let mut t_avg = Table::new("Fig 22a: average QCT slowdown (120% load)", &cols);
    let mut t_p99 = Table::new("Fig 22b: p99 QCT slowdown (120% load)", &cols);
    let mut t_bg = Table::new("Fig 22c: overall bg average FCT slowdown", &cols);
    let mut t_small = Table::new("Fig 22d: small bg p99 FCT slowdown", &cols);

    for &pct in &sizes_pct {
        let mut rows: [Vec<String>; 4] = Default::default();
        for r in rows.iter_mut() {
            r.push(pct.to_string());
        }
        for &(kind, alpha, _) in &schemes {
            let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
            sc.bg = BgPattern::WebSearch { load: 1.2 };
            sc.query_bytes = sc.buffer_per_8ports * pct / 100;
            if quick_mode() {
                sc.duration_ps = 8 * MS;
                sc.drain_ps = 60 * MS;
            }
            let mut r = sc.run();
            rows[0].push(fmt(r.qct_slowdown.mean()));
            rows[1].push(fmt(r.qct_slowdown.p99()));
            rows[2].push(fmt(r.bg_slowdown.mean()));
            rows[3].push(fmt(r.small_bg_slowdown.p99()));
        }
        t_avg.row(rows[0].clone());
        t_p99.row(rows[1].clone());
        t_bg.row(rows[2].clone());
        t_small.row(rows[3].clone());
    }
    for (t, csv) in [
        (&t_avg, "fig22a.csv"),
        (&t_p99, "fig22b.csv"),
        (&t_bg, "fig22c.csv"),
        (&t_small, "fig22d.csv"),
    ] {
        t.print();
        t.to_csv(&results_path(csv)).ok();
    }
    println!(
        "Shape check: columns {names:?}; Occamy must keep an edge over \
         DT/ABM even with the fabric overloaded (paper §6.4, Fig. 22)."
    );
}
