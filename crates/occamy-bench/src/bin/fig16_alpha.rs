//! Reproduces paper **Fig. 16**: the impact of the `α` parameter on DT
//! and Occamy (the §6.3 parameter study).
//!
//! Same two-queue DRR setup as Fig. 14 (query DCTCP + background CUBIC).
//! Paper shape: DT is best at α ∈ {1, 2} and degrades at both extremes
//! (inefficient when small, anomalous when large); Occamy improves
//! monotonically with α and saturates around α = 4–8 — which is why the
//! paper recommends α = 8.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{TestbedBg, TestbedScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_core::BmKind;
use occamy_sim::topology::SchedKind;
use occamy_sim::{CcAlgo, MS};
use occamy_stats::Table;

fn main() {
    let alphas = [0.5, 1.0, 2.0, 4.0, 8.0];
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![120, 180]
    } else {
        vec![100, 120, 140, 160, 180]
    };

    for (kind, label, csv) in [
        (BmKind::Dt, "Fig 16a: DT QCT (ms) vs α", "fig16a"),
        (BmKind::Occamy, "Fig 16b: Occamy QCT (ms) vs α", "fig16b"),
    ] {
        let cols: Vec<String> = std::iter::once("query_pct_buffer".to_string())
            .chain(alphas.iter().map(|a| format!("alpha_{a}")))
            .collect();
        let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        // The paper plots p99; in our harsher incast the non-preemptive
        // p99 saturates at min-RTO, so the average reveals the α trend
        // (how *often* queries time out) — print both.
        let mut t_p99 = Table::new(&format!("{label} (p99)"), &colrefs);
        let mut t_avg = Table::new(&format!("{label} (average)"), &colrefs);
        for &pct in &sizes_pct {
            let bytes = 410_000 * pct / 100;
            let mut row_p99 = vec![pct.to_string()];
            let mut row_avg = vec![pct.to_string()];
            for &alpha in &alphas {
                let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(bytes);
                sc.classes = 2;
                sc.alpha_per_class = vec![alpha; 2];
                sc.sched = SchedKind::Drr { quantum: 1_500 };
                sc.bg = Some(TestbedBg {
                    load: 0.5,
                    cc: CcAlgo::Cubic,
                    class: 1,
                });
                if quick_mode() {
                    sc.duration_ps = 80 * MS;
                    sc.drain_ps = 300 * MS;
                }
                let mut r = sc.run();
                row_p99.push(fmt(r.qct_ms.p99()));
                row_avg.push(fmt(r.qct_ms.mean()));
            }
            t_p99.row(row_p99);
            t_avg.row(row_avg);
        }
        t_p99.print();
        t_p99.to_csv(&results_path(&format!("{csv}_p99.csv"))).ok();
        t_avg.print();
        t_avg.to_csv(&results_path(&format!("{csv}_avg.csv"))).ok();
    }
    println!(
        "Shape check: DT best near α ∈ {{1, 2}}, worse at 0.5 and 8; \
         Occamy monotonically better with α, saturating by α = 4–8."
    );
}
