//! Reproduces paper **Fig. 15**: mitigation of the buffer-choking
//! problem.
//!
//! Two *priority* queues per port (strict priority): high-priority query
//! flows (α = 8 for every scheme) and low-priority CUBIC background
//! (α = 1). Both classes congest the same receiver port. Ideally the LP
//! background should not affect HP QCT at all.
//!
//! Paper shape: with background, DT's average QCT inflates up to ~6.6×
//! (p99 up to ~60×); ABM helps but cannot fix it (up to ~5.7×); Occamy ≈
//! Pushout are essentially unaffected.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, TestbedBg, TestbedScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::topology::SchedKind;
use occamy_sim::{CcAlgo, MS};
use occamy_stats::Table;

fn run(
    kind: occamy_core::BmKind,
    query_bytes: u64,
    with_bg: bool,
) -> occamy_bench::report::RunResult {
    let mut sc = TestbedScenario::paper_dpdk(kind, 8.0).with_query_bytes(query_bytes);
    sc.classes = 2;
    // HP α = 8 for all schemes, LP α = 1 (paper §6.2).
    sc.alpha_per_class = vec![8.0, 1.0];
    sc.sched = SchedKind::StrictPriority;
    sc.query_class = 0;
    // The paper congests both priority queues at the SAME port: one host
    // receives every query and all the background (§6.2).
    sc.query_client = Some(0);
    sc.bg_dst = Some(0);
    sc.qps_per_host *= 4.0; // one client instead of eight: keep query count up
    sc.bg = with_bg.then_some(TestbedBg {
        load: 0.5,
        cc: CcAlgo::Cubic,
        class: 1,
    });
    if quick_mode() {
        sc.duration_ps = 100 * MS;
        sc.drain_ps = 300 * MS;
    }
    sc.run()
}

fn main() {
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![150, 250]
    } else {
        vec![150, 170, 190, 210, 230, 250]
    };
    let schemes = evaluated_schemes();

    let mut cols: Vec<String> = vec!["query_pct_buffer".into()];
    for (_, _, n) in &schemes {
        cols.push(format!("{n}_no_bg"));
        cols.push(format!("{n}_with_bg"));
    }
    let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
    let mut avg = Table::new(
        "Fig 15a: average QCT (ms), w/o vs w/ LP background",
        &colrefs,
    );
    let mut p99 = Table::new("Fig 15b: p99 QCT (ms), w/o vs w/ LP background", &colrefs);

    let mut worst_dt = 0.0f64;
    let mut worst_occamy = 0.0f64;
    for &pct in &sizes_pct {
        let bytes = 410_000 * pct / 100;
        let mut row_avg = vec![pct.to_string()];
        let mut row_p99 = vec![pct.to_string()];
        for &(kind, _, name) in &schemes {
            let mut without = run(kind, bytes, false);
            let mut with = run(kind, bytes, true);
            if let (Some(a), Some(b)) = (without.qct_ms.mean(), with.qct_ms.mean()) {
                let ratio = b / a;
                if name == "DT" {
                    worst_dt = worst_dt.max(ratio);
                }
                if name == "Occamy" {
                    worst_occamy = worst_occamy.max(ratio);
                }
            }
            row_avg.push(fmt(without.qct_ms.mean()));
            row_avg.push(fmt(with.qct_ms.mean()));
            row_p99.push(fmt(without.qct_ms.p99()));
            row_p99.push(fmt(with.qct_ms.p99()));
        }
        avg.row(row_avg);
        p99.row(row_p99);
    }
    avg.print();
    avg.to_csv(&results_path("fig15a.csv")).ok();
    p99.print();
    p99.to_csv(&results_path("fig15b.csv")).ok();
    println!(
        "Shape check: DT degrades {worst_dt:.1}x with background (paper: up \
         to ~6.6x avg); Occamy degrades {worst_occamy:.1}x (paper: ~none)."
    );
}
