//! Reproduces paper **Fig. 13**: end-to-end burst absorption on the DPDK
//! software-switch testbed.
//!
//! 8 hosts × 10 Gbps, 410 KB shared buffer, DCTCP, Poisson incast
//! queries at 1% load over a 50% web-search background. Four panels per
//! query size (as % of buffer): average QCT, 99th-percentile QCT,
//! average background FCT, 99th-percentile small-background FCT.
//!
//! Paper shape: Occamy ≈ Pushout < ABM < DT on QCT (up to ~55% better
//! average QCT than DT); background FCT comparable across schemes.

use occamy_bench::report::fmt;
use occamy_bench::scenarios::{evaluated_schemes, TestbedScenario};
use occamy_bench::{quick_mode, results_path};
use occamy_sim::MS;
use occamy_stats::Table;

fn main() {
    let sizes_pct: Vec<u64> = if quick_mode() {
        vec![40, 80, 120]
    } else {
        vec![20, 40, 60, 80, 100, 120, 140]
    };
    let schemes = evaluated_schemes();
    let names: Vec<&str> = schemes.iter().map(|s| s.2).collect();
    let mut cols = vec!["query_pct_buffer"];
    cols.extend(&names);

    let mut avg_qct = Table::new("Fig 13a: average QCT (ms)", &cols);
    let mut p99_qct = Table::new("Fig 13b: p99 QCT (ms)", &cols);
    let mut avg_fct = Table::new("Fig 13c: overall background average FCT (ms)", &cols);
    let mut p99_small = Table::new("Fig 13d: small background p99 FCT (ms)", &cols);

    for &pct in &sizes_pct {
        let bytes = 410_000 * pct / 100;
        let mut rows: [Vec<String>; 4] = Default::default();
        for r in rows.iter_mut() {
            r.push(pct.to_string());
        }
        for &(kind, alpha, _) in &schemes {
            let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(bytes);
            if quick_mode() {
                sc.duration_ps = 100 * MS;
                sc.drain_ps = 300 * MS;
            }
            let mut r = sc.run();
            rows[0].push(fmt(r.qct_ms.mean()));
            rows[1].push(fmt(r.qct_ms.p99()));
            rows[2].push(fmt(r.bg_fct_ms.mean()));
            rows[3].push(fmt(r.small_bg_fct_ms.p99()));
        }
        avg_qct.row(rows[0].clone());
        p99_qct.row(rows[1].clone());
        avg_fct.row(rows[2].clone());
        p99_small.row(rows[3].clone());
    }
    for (t, csv) in [
        (&avg_qct, "fig13a.csv"),
        (&p99_qct, "fig13b.csv"),
        (&avg_fct, "fig13c.csv"),
        (&p99_small, "fig13d.csv"),
    ] {
        t.print();
        t.to_csv(&results_path(csv)).ok();
    }
    println!(
        "Shape check: columns ordered {names:?}; expect Occamy ≈ Pushout \
         to beat ABM and DT on (a)/(b), with (c) roughly flat across \
         schemes."
    );
}
