//! Reproduces paper **Table 1**: hardware cost of Occamy's components.
//!
//! The paper synthesizes 286 lines of Verilog with Vivado (LUTs/FFs) and
//! Design Compiler on FreePDK45 (timing/area/power). We reproduce the
//! table through the analytic gate-level model in `occamy_hw::cost`,
//! calibrated at the paper's design point (64 queues, 19-bit lengths),
//! and extend it with the scaling the paper argues about: the head-drop
//! selector versus the Maximum Finder that Pushout would need.

use occamy_bench::results_path;
use occamy_hw::cost;
use occamy_stats::Table;

fn row(name: &str, c: &cost::HwCost) -> Vec<String> {
    vec![
        name.to_string(),
        c.luts.to_string(),
        c.flip_flops.to_string(),
        format!("{:.2}", c.timing_ns),
        format!("{:.2e}", c.area_mm2),
        format!("{:.3}", c.power_mw),
    ]
}

fn main() {
    let cols = &["module", "LUTs", "FFs", "timing_ns", "area_mm2", "power_mW"];

    let mut model = Table::new("Table 1 (model): Occamy hardware cost at 64 queues", cols);
    model.row(row(
        "Selector",
        &cost::selector(cost::PAPER_NUM_QUEUES, cost::PAPER_QLEN_BITS),
    ));
    model.row(row("Arbiter", &cost::fixed_priority_arbiter()));
    model.row(row("Executor", &cost::head_drop_executor()));
    model.row(row(
        "Total",
        &cost::occamy_total(cost::PAPER_NUM_QUEUES, cost::PAPER_QLEN_BITS),
    ));
    model.print();
    model.to_csv(&results_path("table01_model.csv")).ok();

    let mut paper = Table::new(
        "Table 1 (paper): reported by Vivado / Design Compiler",
        cols,
    );
    paper.row(row("Selector", &cost::PAPER_SELECTOR));
    paper.row(row("Arbiter", &cost::PAPER_ARBITER));
    paper.row(row("Executor", &cost::PAPER_EXECUTOR));
    paper.print();

    // Scaling study: Occamy's selector vs Pushout's Maximum Finder.
    let mut scaling = Table::new(
        "Extension: selector vs Maximum Finder (20-bit queue lengths)",
        &[
            "queues",
            "selector_LUTs",
            "selector_ns",
            "maxfinder_LUTs",
            "maxfinder_ns",
            "MF_misses_1GHz",
        ],
    );
    for n in [32, 64, 128, 256, 512, 1024] {
        let s = cost::selector(n, 20);
        let m = cost::maxfinder(n, 20);
        scaling.row(vec![
            n.to_string(),
            s.luts.to_string(),
            format!("{:.2}", s.timing_ns),
            m.luts.to_string(),
            format!("{:.2}", m.timing_ns),
            if m.timing_ns > 1.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    scaling.print();
    scaling.to_csv(&results_path("table01_scaling.csv")).ok();

    println!(
        "Shape check: selector dominates Occamy's cost; total stays under \
         0.03 mm2 / 1 mW; the Maximum Finder misses a 1 GHz cycle at switch \
         scale while the selector does not (paper Difficulty 3)."
    );
}
