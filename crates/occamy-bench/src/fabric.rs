//! The topology-generic fabric scenario behind declarative specs: one
//! builder that runs the paper's workload mix (web-search / all-to-all /
//! all-reduce / permutation background plus incast queries) over a
//! leaf-spine, fat-tree or 3-tier fabric with an oversubscription knob.
//!
//! [`FabricScenario`] is the compile target of `occamy-spec` documents
//! (see [`crate::spec_scenario`]): the spec front-end binds `[topology]`,
//! `[traffic]` and `[schemes]` sections onto this struct, the grid axes
//! mutate its knobs per cell, and the run path is byte-identical to the
//! hand-coded figures — a leaf-spine spec delegates to
//! [`LeafSpineScenario`] so a spec that recreates a registry scenario
//! reproduces its tables bit-for-bit.

use crate::report::{aggregate, IdealFct, RunResult};
use crate::scenario::Scale;
use crate::scenarios::{inject_fabric_workload, BgPattern, LeafSpineScenario};
use occamy_core::{BmKind, BmTuning};
use occamy_sim::topology::{
    fat_tree, leaf_spine, three_tier, BmSpec, FatTreeCfg, LeafSpineCfg, SchedKind, ThreeTierCfg,
};
use occamy_sim::{FaultSchedule, Ps, SimConfig, World, XpSched, MS};

/// The fabric shape a [`FabricScenario`] runs on.
#[derive(Debug, Clone)]
pub enum FabricTopo {
    /// Two-tier leaf-spine (paper §6.4).
    LeafSpine {
        /// Spine switch count.
        spines: usize,
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
    },
    /// k-ary three-layer fat-tree.
    FatTree {
        /// Pod arity (even, ≥ 2); `k³/4` hosts.
        k: usize,
    },
    /// Classic access/aggregation/core 3-tier fabric.
    ThreeTier {
        /// Pod count.
        pods: usize,
        /// Access switches per pod.
        access_per_pod: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// Core switch count.
        cores: usize,
        /// Hosts per access switch.
        hosts_per_access: usize,
    },
}

impl FabricTopo {
    /// Host count of the fabric.
    pub fn n_hosts(&self) -> usize {
        match *self {
            FabricTopo::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            FabricTopo::FatTree { k } => k * k * k / 4,
            FabricTopo::ThreeTier {
                pods,
                access_per_pod,
                hosts_per_access,
                ..
            } => pods * access_per_pod * hosts_per_access,
        }
    }

    /// One-way hop count of the longest (inter-pod) host-to-host path,
    /// in links — 4 for leaf-spine, 6 for the three-layer fabrics. Used
    /// by the ideal-FCT base-RTT model.
    pub fn max_path_links(&self) -> u64 {
        match self {
            FabricTopo::LeafSpine { .. } => 4,
            FabricTopo::FatTree { .. } | FabricTopo::ThreeTier { .. } => 6,
        }
    }
}

/// A workload run over an arbitrary fabric topology: the spec-driven
/// generalization of [`LeafSpineScenario`], sharing its injection logic,
/// ideal-FCT model and aggregation.
#[derive(Debug, Clone)]
pub struct FabricScenario {
    /// Fabric shape.
    pub topo: FabricTopo,
    /// Buffer-management scheme.
    pub bm: BmKind,
    /// DT/ABM/Occamy `α`.
    pub alpha: f64,
    /// Scheme-specific tuning (BShare delay target, DAMQ reserve
    /// split); the default reproduces each scheme's paper constants.
    pub tuning: BmTuning,
    /// Host access-link rate.
    pub host_rate_bps: u64,
    /// Switch-to-switch link rate before oversubscription.
    pub fabric_rate_bps: u64,
    /// Access-layer oversubscription ratio (≥ 1). For leaf-spine and
    /// fat-tree fabrics the effective fabric link rate is
    /// `fabric_rate_bps / oversubscription`; the 3-tier builder takes
    /// the ratio directly and sizes its access up-links from it.
    pub oversubscription: f64,
    /// One-way propagation per link.
    pub link_prop_ps: Ps,
    /// Shared buffer per 8 ports.
    pub buffer_per_8ports: u64,
    /// Background traffic.
    pub bg: BgPattern,
    /// Total response bytes per query.
    pub query_bytes: u64,
    /// Incast fan-out per query.
    pub query_fanout: usize,
    /// Queries per second per client host (0 disables queries).
    pub qps_per_host: f64,
    /// Workload injection window.
    pub duration_ps: Ps,
    /// Extra time to let tails finish.
    pub drain_ps: Ps,
    /// RNG seed.
    pub seed: u64,
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Deterministic fault schedule (times are fractions of
    /// `duration_ps`, so the same schedule scales with `--quick` and
    /// `--smoke` clamps). Empty by default.
    pub faults: FaultSchedule,
    /// When set, every switch runs the crosspoint-queued architecture
    /// with this scheduler instead of the shared-memory model (`bm` and
    /// `alpha` are then unused — crosspoint buffers are statically
    /// partitioned). `None` (the default) keeps shared memory.
    pub crosspoint: Option<XpSched>,
}

impl FabricScenario {
    /// The paper-scaled defaults of [`LeafSpineScenario::paper_scaled`],
    /// lifted onto `topo`: 25 Gbps links, 1 MB per 8 ports, ECN K
    /// 180 KB, min RTO 5 ms, web-search background at 90%, fan-out 16,
    /// 400 queries/s/host over 15 ms (+100 ms drain).
    pub fn paper_scaled(topo: FabricTopo, bm: BmKind, alpha: f64) -> Self {
        let ls = LeafSpineScenario::paper_scaled(bm, alpha);
        FabricScenario {
            topo,
            bm,
            alpha,
            tuning: BmTuning::default(),
            host_rate_bps: ls.link_rate_bps,
            fabric_rate_bps: ls.fabric_rate_bps,
            oversubscription: 1.0,
            link_prop_ps: ls.link_prop_ps,
            buffer_per_8ports: ls.buffer_per_8ports,
            bg: ls.bg,
            query_bytes: ls.query_bytes,
            query_fanout: ls.query_fanout,
            qps_per_host: ls.qps_per_host,
            duration_ps: ls.duration_ps,
            drain_ps: ls.drain_ps,
            seed: ls.seed,
            sim: ls.sim,
            faults: FaultSchedule::default(),
            crosspoint: None,
        }
    }

    /// Host count.
    pub fn n_hosts(&self) -> usize {
        self.topo.n_hosts()
    }

    /// Effective switch-to-switch link rate after the oversubscription
    /// division (leaf-spine / fat-tree; the 3-tier builder derives its
    /// own up-link rate from the ratio).
    pub fn effective_fabric_rate_bps(&self) -> u64 {
        assert!(
            self.oversubscription >= 1.0,
            "oversubscription must be ≥ 1 (got {})",
            self.oversubscription
        );
        ((self.fabric_rate_bps as f64 / self.oversubscription).round() as u64).max(1)
    }

    /// Ideal-FCT model: base RTT = 2 × longest path × per-link
    /// propagation, access-link bottleneck (the leaf-spine instance of
    /// this formula is the 80 µs the figures use).
    pub fn ideal(&self) -> IdealFct {
        IdealFct {
            base_rtt_ps: 2 * self.topo.max_path_links() * self.link_prop_ps,
            bottleneck_bps: self.host_rate_bps,
            mss: self.sim.mss as u64,
        }
    }

    /// The equivalent [`LeafSpineScenario`] when the topology is
    /// leaf-spine (the delegation that keeps spec runs bit-identical to
    /// the hand-coded figures).
    fn as_leaf_spine(&self) -> Option<LeafSpineScenario> {
        // Crosspoint worlds never delegate: the hand-coded scenario is
        // shared-memory only, so they take the generic build path below.
        if self.crosspoint.is_some() {
            return None;
        }
        let FabricTopo::LeafSpine {
            spines,
            leaves,
            hosts_per_leaf,
        } = self.topo
        else {
            return None;
        };
        Some(LeafSpineScenario {
            bm: self.bm,
            alpha: self.alpha,
            tuning: self.tuning,
            spines,
            leaves,
            hosts_per_leaf,
            link_rate_bps: self.host_rate_bps,
            fabric_rate_bps: self.effective_fabric_rate_bps(),
            link_prop_ps: self.link_prop_ps,
            buffer_per_8ports: self.buffer_per_8ports,
            bg: self.bg.clone(),
            query_bytes: self.query_bytes,
            query_fanout: self.query_fanout,
            qps_per_host: self.qps_per_host,
            duration_ps: self.duration_ps,
            drain_ps: self.drain_ps,
            seed: self.seed,
            sim: self.sim.clone(),
            faults: self.faults.clone(),
        })
    }

    /// Builds the world without workload.
    pub fn build(&self) -> World {
        if let Some(ls) = self.as_leaf_spine() {
            return ls.build();
        }
        let bm = BmSpec {
            kind: self.bm,
            alpha_per_class: vec![self.alpha],
            tuning: self.tuning,
        };
        let mut world = match self.topo {
            // Reached only for crosspoint worlds; shared-memory
            // leaf-spine delegates to the hand-coded scenario above.
            FabricTopo::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => leaf_spine(LeafSpineCfg {
                spines,
                leaves,
                hosts_per_leaf,
                host_rate_bps: self.host_rate_bps,
                fabric_rate_bps: self.effective_fabric_rate_bps(),
                link_prop_ps: self.link_prop_ps,
                buffer_per_8ports_bytes: self.buffer_per_8ports,
                classes: 1,
                bm,
                sched: SchedKind::Fifo,
                sim: self.sim.clone(),
            }),
            FabricTopo::FatTree { k } => fat_tree(FatTreeCfg {
                k,
                host_rate_bps: self.host_rate_bps,
                fabric_rate_bps: self.effective_fabric_rate_bps(),
                link_prop_ps: self.link_prop_ps,
                buffer_per_8ports_bytes: self.buffer_per_8ports,
                classes: 1,
                bm,
                sched: SchedKind::Fifo,
                sim: self.sim.clone(),
            }),
            FabricTopo::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
            } => three_tier(ThreeTierCfg {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
                host_rate_bps: self.host_rate_bps,
                core_rate_bps: self.fabric_rate_bps,
                oversubscription: self.oversubscription,
                link_prop_ps: self.link_prop_ps,
                buffer_per_8ports_bytes: self.buffer_per_8ports,
                classes: 1,
                bm,
                sched: SchedKind::Fifo,
                sim: self.sim.clone(),
            }),
        };
        if let Some(sched) = self.crosspoint {
            world.enable_crosspoint(sched);
        }
        world
    }

    /// Builds, injects, runs and aggregates, also returning the world.
    pub fn run_world(&self) -> (World, RunResult) {
        if let Some(ls) = self.as_leaf_spine() {
            return ls.run_world();
        }
        let mut world = self.build();
        crate::apply_sim_threads(&mut world);
        inject_fabric_workload(
            &mut world,
            self.n_hosts(),
            self.host_rate_bps,
            &self.bg,
            self.query_bytes,
            self.query_fanout,
            self.qps_per_host,
            self.duration_ps,
            self.seed,
        );
        self.faults.apply(&mut world, self.duration_ps);
        world.run_to_completion(self.duration_ps + self.drain_ps);
        let flows = world.flow_records();
        let result = aggregate(
            &flows,
            self.ideal(),
            world.metrics.drops.total_losses(),
            world.metrics.events_processed,
        )
        .with_resilience(&world);
        (world, result)
    }

    /// Builds, injects, runs and aggregates.
    pub fn run(&self) -> RunResult {
        self.run_world().1
    }
}

/// Applies the shared duration/rate reductions to a fabric scenario —
/// the [`crate::figs::scale_leaf_spine`] recipe, but monotone: reduced
/// scales only ever *shorten* a spec's windows, so a spec that already
/// describes a seconds-scale run keeps its own durations.
pub fn scale_fabric(sc: &mut FabricScenario, scale: Scale) {
    match scale {
        Scale::Full => {}
        Scale::Quick => {
            sc.duration_ps = sc.duration_ps.min(10 * MS);
            sc.drain_ps = sc.drain_ps.min(60 * MS);
        }
        Scale::Smoke => {
            sc.duration_ps = sc.duration_ps.min(3 * MS);
            sc.drain_ps = sc.drain_ps.min(40 * MS);
            sc.qps_per_host *= 4.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_sim::US;

    fn paper_topo() -> FabricTopo {
        FabricTopo::LeafSpine {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 8,
        }
    }

    #[test]
    fn leaf_spine_delegation_matches_hand_coded_scenario() {
        // The fabric path and the figure path must be the same
        // simulation: identical worlds, identical results.
        let mut fabric = FabricScenario::paper_scaled(paper_topo(), BmKind::Dt, 1.0);
        fabric.duration_ps = 2 * MS;
        fabric.drain_ps = 20 * MS;
        fabric.qps_per_host *= 4.0;
        let mut ls = LeafSpineScenario::paper_scaled(BmKind::Dt, 1.0);
        ls.duration_ps = 2 * MS;
        ls.drain_ps = 20 * MS;
        ls.qps_per_host *= 4.0;
        let a = fabric.run();
        let b = ls.run();
        assert_eq!(a.qct_ms.mean(), b.qct_ms.mean());
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn ideal_rtt_matches_topology_depth() {
        let f = FabricScenario::paper_scaled(paper_topo(), BmKind::Dt, 1.0);
        assert_eq!(f.ideal().base_rtt_ps, 80 * US); // the figures' 80 µs
        let ft = FabricScenario::paper_scaled(FabricTopo::FatTree { k: 4 }, BmKind::Dt, 1.0);
        assert_eq!(ft.ideal().base_rtt_ps, 120 * US);
    }

    #[test]
    fn oversubscription_divides_fabric_rate() {
        let mut f = FabricScenario::paper_scaled(FabricTopo::FatTree { k: 4 }, BmKind::Dt, 1.0);
        f.oversubscription = 4.0;
        assert_eq!(f.effective_fabric_rate_bps(), f.fabric_rate_bps / 4);
        let w = f.build();
        // Edge up-links run at the divided rate, host links at full.
        assert_eq!(w.switches[0].ports[0].link.rate_bps, f.host_rate_bps);
        assert_eq!(w.switches[0].ports[2].link.rate_bps, f.fabric_rate_bps / 4);
    }

    #[test]
    fn fat_tree_and_three_tier_runs_complete() {
        for topo in [
            FabricTopo::FatTree { k: 4 },
            FabricTopo::ThreeTier {
                pods: 2,
                access_per_pod: 2,
                aggs_per_pod: 2,
                cores: 2,
                hosts_per_access: 4,
            },
        ] {
            let mut f = FabricScenario::paper_scaled(topo, BmKind::Occamy, 8.0);
            f.oversubscription = 2.0;
            scale_fabric(&mut f, Scale::Smoke);
            let r1 = f.run();
            assert!(!r1.qct_ms.is_empty(), "no queries finished");
            let r2 = f.run();
            assert_eq!(r1.qct_ms.mean(), r2.qct_ms.mean(), "non-deterministic");
            assert_eq!(r1.events, r2.events);
        }
    }

    #[test]
    fn scale_fabric_only_shrinks() {
        let mut f = FabricScenario::paper_scaled(paper_topo(), BmKind::Dt, 1.0);
        f.duration_ps = 2 * MS; // already shorter than the smoke preset
        f.drain_ps = 10 * MS;
        scale_fabric(&mut f, Scale::Smoke);
        assert_eq!(f.duration_ps, 2 * MS);
        assert_eq!(f.drain_ps, 10 * MS);
        let mut g = FabricScenario::paper_scaled(paper_topo(), BmKind::Dt, 1.0);
        scale_fabric(&mut g, Scale::Quick);
        assert_eq!(g.duration_ps, 10 * MS);
        assert_eq!(g.drain_ps, 60 * MS);
    }
}
