//! Sharded grid execution: **plan → run → merge** with byte-identical
//! results.
//!
//! The paper-faithful 128-host × 100 G sweeps
//! (`specs/paper_fabric_128h.toml`) are far too slow for one machine,
//! but grid cells are independent, `Send`-safe and seed-deterministic —
//! so a grid can be split into shards, each shard executed anywhere,
//! and the partial results reassembled into the **exact** report a
//! single-machine run would have produced:
//!
//! 1. [`plan`] splits a scenario's grid into `N` shard files
//!    (`shards/<name>.shard-<i>.json`). Each file is versioned and
//!    self-contained: it carries every [`CellSpec`] of the shard — grid
//!    coordinates (`index`), derived seed and typed scheme/knob
//!    bindings — plus, for `--spec` scenarios, the canonical TOML of
//!    the spec document itself, so the executing machine needs nothing
//!    but the plan file and the binary.
//! 2. [`run_shard`] executes one plan file with the same parallel
//!    runner a direct `run` uses ([`crate::runner::run_cells`]) and
//!    writes a partial-result file (`….result.json`).
//! 3. [`merge`] validates and reunites the partials — every shard
//!    present exactly once, every grid cell covered exactly once, no
//!    version or header drift — and feeds them through the same
//!    assembly path as a direct run ([`crate::runner::assemble`] +
//!    [`render_into`]), emitting the byte-identical `BENCH_<name>.json`
//!    and `results/*.csv`.
//!
//! Byte-identity is enforced by `tests/shard_equivalence.rs` and the CI
//! `shard-equivalence` job, which `cmp` a merged 3-shard fig12 run
//! against a direct run. Wall-clock perf fields are the one
//! platform-dependent output; both sides run under
//! [`crate::freeze_perf`] (`--freeze-perf`), which zeroes them.
//!
//! Every failure mode names the offending shard file: truncated or
//! tampered JSON, format-version mismatches, header drift between
//! partials, missing or duplicated shards, and missing or duplicated
//! grid cells all produce errors, never panics or silently dropped
//! cells.

use crate::registry::{find_scenario, registry};
use crate::runner;
use crate::scenario::{CellOutcome, CellResult, CellSpec, Scale, Scenario, Series, Value};
use crate::spec_scenario::SpecScenario;
use occamy_stats::Json;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Format version stamped into every shard file. Bump it when the file
/// layout changes; [`run_shard`] and [`merge`] refuse files from other
/// versions with an error that names the file and both versions.
pub const SHARD_FORMAT: u64 = 1;

// -------------------------------------------------------------------
// Sources
// -------------------------------------------------------------------

/// What a shard plan executes: a registry scenario (identified by name)
/// or a spec-compiled scenario (embedded as canonical TOML).
#[derive(Clone, Copy)]
pub enum ShardSource {
    /// A scenario from the static registry (`fig12`, `table01`, …).
    Registry(&'static dyn Scenario),
    /// A `--spec` scenario; the plan embeds its canonical TOML.
    Spec(&'static SpecScenario),
}

impl ShardSource {
    /// Resolves a registry scenario by name, with the known-name list in
    /// the error.
    pub fn from_name(name: &str) -> Result<ShardSource, String> {
        find_scenario(name)
            .map(ShardSource::Registry)
            .ok_or_else(|| {
                format!(
                    "unknown scenario '{name}'; known: {}",
                    registry()
                        .iter()
                        .map(|s| s.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }

    /// The scenario to plan.
    pub fn scenario(&self) -> &'static dyn Scenario {
        match self {
            ShardSource::Registry(s) => *s,
            ShardSource::Spec(s) => *s,
        }
    }

    fn source_tag(&self) -> &'static str {
        match self {
            ShardSource::Registry(_) => "registry",
            ShardSource::Spec(_) => "spec",
        }
    }

    fn spec_toml(&self) -> Option<String> {
        match self {
            ShardSource::Registry(_) => None,
            ShardSource::Spec(s) => Some(s.canonical_toml()),
        }
    }
}

// -------------------------------------------------------------------
// Value / cell encoding
// -------------------------------------------------------------------

/// Typed parameter encoding: `{key, kind, value}` rather than a bare
/// JSON value, so `2.0f64` survives the trip as an `f64` (a bare `2`
/// would decode as `u64` and change the cell's type contract).
fn encode_param(key: &str, v: &Value) -> Json {
    let (kind, value) = match v {
        Value::U64(x) => ("u64", Json::from(*x)),
        Value::F64(x) => ("f64", Json::from(*x)),
        Value::Str(s) => ("str", Json::from(s.as_str())),
    };
    Json::obj([
        ("key", Json::from(key)),
        ("kind", Json::from(kind)),
        ("value", value),
    ])
}

fn decode_param(ctx: &str, j: &Json) -> Result<(String, Value), String> {
    let key = j
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: param lacks a string 'key'"))?;
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: param '{key}' lacks a 'kind'"))?;
    let raw = j
        .get("value")
        .ok_or_else(|| format!("{ctx}: param '{key}' lacks a 'value'"))?;
    let value = match kind {
        "u64" => Value::U64(
            raw.as_u64()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not a u64"))?,
        ),
        "f64" => Value::F64(
            raw.as_f64()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not numeric"))?,
        ),
        "str" => Value::Str(
            raw.as_str()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not a string"))?
                .to_string(),
        ),
        other => return Err(format!("{ctx}: param '{key}' has unknown kind '{other}'")),
    };
    Ok((key.to_string(), value))
}

fn encode_cell(spec: &CellSpec) -> Json {
    Json::obj([
        ("index", Json::from(spec.index)),
        ("seed", Json::from(spec.seed)),
        (
            "params",
            Json::arr(spec.params().iter().map(|(k, v)| encode_param(k, v))),
        ),
    ])
}

fn decode_cell(ctx: &str, j: &Json, scale: Scale) -> Result<CellSpec, String> {
    let index = j
        .get("index")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: cell lacks an 'index'"))? as usize;
    let ctx = format!("{ctx}: cell {index}");
    let seed = j
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: no 'seed'"))?;
    let params = j
        .get("params")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'params' array"))?
        .iter()
        .map(|p| decode_param(&ctx, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CellSpec::from_parts(index, seed, scale, params))
}

// -------------------------------------------------------------------
// Result encoding
// -------------------------------------------------------------------

fn encode_outcome(o: &CellOutcome) -> Json {
    let Json::Obj(mut fields) = encode_cell(&o.spec) else {
        unreachable!("encode_cell returns an object");
    };
    fields.push((
        "wall_ms".to_string(),
        Json::from(o.wall.as_secs_f64() * 1e3),
    ));
    fields.push(("peak_rss_bytes".to_string(), Json::from(o.rss)));
    fields.push((
        "metrics".to_string(),
        Json::obj(
            o.result
                .metrics()
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v))),
        ),
    ));
    if !o.result.series().is_empty() {
        fields.push((
            "series".to_string(),
            Json::arr(o.result.series().iter().map(Series::to_json)),
        ));
    }
    Json::Obj(fields)
}

fn decode_outcome(ctx: &str, j: &Json, scale: Scale) -> Result<CellOutcome, String> {
    let spec = decode_cell(ctx, j, scale)?;
    let ctx = format!("{ctx}: cell {}", spec.index);
    let wall_ms = j
        .get("wall_ms")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: no 'wall_ms'"))?;
    // Bounded: Duration::from_secs_f64 panics on huge or NaN input, and
    // a year-long cell wall clock is corruption, not measurement.
    if !(0.0..=86_400_000.0 * 365.0).contains(&wall_ms) {
        return Err(format!("{ctx}: 'wall_ms' {wall_ms} is out of range"));
    }
    let mut result = CellResult::new();
    for (k, v) in j
        .get("metrics")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{ctx}: no 'metrics' object"))?
    {
        // `null` is how the emitter spells a non-finite f64.
        let v = match v {
            Json::Null => f64::NAN,
            other => other
                .as_f64()
                .ok_or_else(|| format!("{ctx}: metric '{k}' is not numeric"))?,
        };
        result = result.metric(k, v);
    }
    for s in j.get("series").and_then(Json::as_arr).unwrap_or(&[]) {
        result = result.with_series(decode_series(&ctx, s)?);
    }
    // Tolerant: partials written before the field existed decode as 0.
    let rss = j.get("peak_rss_bytes").and_then(Json::as_u64).unwrap_or(0);
    Ok(CellOutcome {
        spec,
        result,
        wall: Duration::from_secs_f64(wall_ms / 1e3),
        rss,
    })
}

fn decode_series(ctx: &str, j: &Json) -> Result<Series, String> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: series lacks a 'name'"))?;
    let columns: Vec<&str> = j
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: series '{name}' lacks 'columns'"))?
        .iter()
        .map(|c| {
            c.as_str()
                .ok_or_else(|| format!("{ctx}: series '{name}' has a non-string column"))
        })
        .collect::<Result<_, _>>()?;
    let mut series = Series::new(name, &columns);
    for row in j
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: series '{name}' lacks 'rows'"))?
    {
        let row: Vec<f64> = row
            .as_arr()
            .ok_or_else(|| format!("{ctx}: series '{name}' has a non-array row"))?
            .iter()
            .map(|v| match v {
                Json::Null => Ok(f64::NAN),
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("{ctx}: series '{name}' has a non-numeric entry")),
            })
            .collect::<Result<_, _>>()?;
        if row.len() != series.columns.len() {
            return Err(format!(
                "{ctx}: series '{name}' row width {} != {} columns",
                row.len(),
                series.columns.len()
            ));
        }
        series.row(row);
    }
    Ok(series)
}

// -------------------------------------------------------------------
// File headers
// -------------------------------------------------------------------

/// The parsed, version-checked header shared by plan and partial files.
struct ShardFile {
    path: PathBuf,
    scenario: String,
    source: String,
    spec_toml: Option<String>,
    scale: Scale,
    shard: usize,
    shards: usize,
    total_cells: usize,
    doc: Json,
}

impl ShardFile {
    fn ctx(&self) -> String {
        format!("shard file {}", self.path.display())
    }
}

fn header_json(
    kind: &str,
    name: &str,
    source: &ShardSource,
    scale: Scale,
    shard: usize,
    shards: usize,
    total_cells: usize,
) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("format".to_string(), Json::from(SHARD_FORMAT)),
        ("kind".to_string(), Json::from(kind)),
        ("scenario".to_string(), Json::from(name)),
        ("source".to_string(), Json::from(source.source_tag())),
    ];
    if let Some(toml) = source.spec_toml() {
        fields.push(("spec_toml".to_string(), Json::from(toml)));
    }
    fields.extend([
        ("scale".to_string(), Json::from(scale.to_string())),
        ("shard".to_string(), Json::from(shard)),
        ("shards".to_string(), Json::from(shards)),
        ("total_cells".to_string(), Json::from(total_cells)),
    ]);
    fields
}

/// Reads and validates a shard file's envelope: parseable JSON (a
/// truncated upload fails here, naming the file), the supported format
/// version, the expected kind (`plan` / `partial`) and a complete,
/// well-typed header.
fn read_shard_file(path: &Path, expect_kind: &str) -> Result<ShardFile, String> {
    let ctx = format!("shard file {}", path.display());
    let text = std::fs::read_to_string(path).map_err(|e| format!("{ctx}: {e}"))?;
    let doc = Json::parse(&text)
        .map_err(|e| format!("{ctx}: not valid JSON ({e}) — truncated or corrupted?"))?;
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: no 'format' version field"))?;
    if format != SHARD_FORMAT {
        return Err(format!(
            "{ctx}: format version {format}, but this binary reads version {SHARD_FORMAT} — \
             regenerate the plan with this binary"
        ));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: no 'kind' field"))?;
    if kind != expect_kind {
        return Err(format!(
            "{ctx}: is a '{kind}' file, expected a '{expect_kind}' file"
        ));
    }
    let str_field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: no '{key}' field"))
    };
    let usize_field = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("{ctx}: no '{key}' field"))
    };
    let scale_str = str_field("scale")?;
    let scale =
        Scale::parse(&scale_str).ok_or_else(|| format!("{ctx}: unknown scale '{scale_str}'"))?;
    let source = str_field("source")?;
    let spec_toml = match source.as_str() {
        "registry" => None,
        "spec" => Some(str_field("spec_toml")?),
        other => return Err(format!("{ctx}: unknown source '{other}'")),
    };
    let file = ShardFile {
        path: path.to_path_buf(),
        scenario: str_field("scenario")?,
        source,
        spec_toml,
        scale,
        shard: usize_field("shard")?,
        shards: usize_field("shards")?,
        total_cells: usize_field("total_cells")?,
        doc,
    };
    if file.shards == 0 || file.shard >= file.shards {
        return Err(format!(
            "{}: shard id {} out of range for {} shards",
            file.ctx(),
            file.shard,
            file.shards
        ));
    }
    // These counts size allocations downstream; a corrupted header must
    // fail here, not abort with a capacity overflow. No real grid is
    // near this bound (the biggest shipped one is 60 cells), and merge
    // additionally cross-checks against the grid the binary derives.
    const MAX_GRID_CELLS: usize = 1_000_000;
    if file.total_cells == 0 || file.total_cells > MAX_GRID_CELLS {
        return Err(format!(
            "{}: implausible total_cells {} (limit {MAX_GRID_CELLS})",
            file.ctx(),
            file.total_cells
        ));
    }
    if file.shards > file.total_cells {
        return Err(format!(
            "{}: {} shards for {} cells — a plan never has more shards than cells",
            file.ctx(),
            file.shards,
            file.total_cells
        ));
    }
    Ok(file)
}

/// Re-resolves the scenario a shard file describes: a registry lookup,
/// or re-compiling the embedded spec TOML.
fn resolve_scenario(file: &ShardFile) -> Result<&'static dyn Scenario, String> {
    match file.source.as_str() {
        "registry" => find_scenario(&file.scenario).ok_or_else(|| {
            format!(
                "{}: scenario '{}' is not in this binary's registry",
                file.ctx(),
                file.scenario
            )
        }),
        "spec" => {
            let toml = file.spec_toml.as_deref().expect("checked at read");
            let doc = occamy_spec::spec_from_toml(toml)
                .map_err(|e| format!("{}: embedded spec invalid: {e}", file.ctx()))?;
            if doc.name != file.scenario {
                return Err(format!(
                    "{}: embedded spec is named '{}', header says '{}'",
                    file.ctx(),
                    doc.name,
                    file.scenario
                ));
            }
            Ok(SpecScenario::new(doc))
        }
        other => unreachable!("source '{other}' rejected at read"),
    }
}

// -------------------------------------------------------------------
// plan
// -------------------------------------------------------------------

/// Splits `source`'s grid at `scale` into `shards` plan files under
/// `out_dir`, one per shard, named `<scenario>.shard-<i>.json`. Cells
/// are dealt round-robin (`index % shards`) so a sweep whose cost grows
/// along an axis still load-balances. Returns the written paths in
/// shard order.
pub fn plan(
    source: &ShardSource,
    scale: Scale,
    shards: usize,
    out_dir: &Path,
) -> Result<Vec<PathBuf>, String> {
    let scenario = source.scenario();
    let cells = scenario.grid(scale);
    if shards == 0 {
        return Err("--shards must be ≥ 1".to_string());
    }
    if shards > cells.len() {
        return Err(format!(
            "cannot split {} cells of '{}' ({scale} scale) into {shards} shards — \
             use --shards ≤ {}",
            cells.len(),
            scenario.name(),
            cells.len()
        ));
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let mut paths = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mine: Vec<&CellSpec> = cells.iter().filter(|c| c.index % shards == shard).collect();
        let mut fields = header_json(
            "plan",
            scenario.name(),
            source,
            scale,
            shard,
            shards,
            cells.len(),
        );
        fields.push((
            "cells".to_string(),
            Json::arr(mine.iter().map(|c| encode_cell(c))),
        ));
        let path = out_dir.join(format!("{}.shard-{shard}.json", scenario.name()));
        Json::Obj(fields)
            .write_to(&path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        paths.push(path);
    }
    Ok(paths)
}

// -------------------------------------------------------------------
// run
// -------------------------------------------------------------------

/// The default partial-result path for a plan file:
/// `<plan stem>.result.json` next to it.
pub fn default_partial_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.result.json")),
        None => PathBuf::from(format!("{s}.result.json")),
    }
}

/// The heartbeat path for a plan file: `<plan stem>.heartbeat.json`
/// next to it. `shard run` rewrites this small file as each cell
/// completes; an operator (or `shard merge`, which checks it against
/// the plan) can tell a stalled shard from a slow one by its mtime and
/// `cells_done` count.
pub fn heartbeat_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.heartbeat.json")),
        None => PathBuf::from(format!("{s}.heartbeat.json")),
    }
}

/// Writes (overwrites) a shard heartbeat. Heartbeats are operational
/// metadata, not result artifacts — they live next to the plan, never
/// under `results/`, and carry a real wall-clock timestamp even under
/// `--freeze-perf`. Failures are ignored: a heartbeat must never fail
/// a run.
fn write_heartbeat(
    path: &Path,
    file: &ShardFile,
    planned: usize,
    done: usize,
    last_cell: Option<usize>,
) {
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let _ = Json::obj([
        ("format", Json::from(SHARD_FORMAT)),
        ("kind", Json::from("heartbeat")),
        ("scenario", Json::from(file.scenario.as_str())),
        ("shard", Json::from(file.shard)),
        ("shards", Json::from(file.shards)),
        ("cells_planned", Json::from(planned)),
        ("cells_done", Json::from(done)),
        ("last_cell", last_cell.map_or(Json::Null, Json::from)),
        ("last_event_unix_ms", Json::from(now_ms)),
    ])
    .write_to(path);
}

/// Executes one shard plan file with the shared parallel runner and
/// writes the partial-result file (default: [`default_partial_path`]).
/// Returns the partial's path.
///
/// Before running, every cell is cross-checked against the grid this
/// binary generates for the same scenario and scale: a seed or
/// parameter mismatch means the plan came from a different code version
/// (or was tampered with), and silently running it would poison the
/// merged report.
pub fn run_shard(plan_path: &Path, parallel: bool, out: Option<&Path>) -> Result<PathBuf, String> {
    let file = read_shard_file(plan_path, "plan")?;
    let scenario = resolve_scenario(&file)?;
    let ctx = file.ctx();
    let cells: Vec<CellSpec> = file
        .doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'cells' array"))?
        .iter()
        .map(|c| decode_cell(&ctx, c, file.scale))
        .collect::<Result<_, _>>()?;
    // Verify the plan against this binary's own grid derivation.
    let reference = scenario.grid(file.scale);
    if reference.len() != file.total_cells {
        return Err(format!(
            "{ctx}: plan says the grid has {} cells, this binary generates {} — \
             scenario definition drifted; regenerate the plan",
            file.total_cells,
            reference.len()
        ));
    }
    for cell in &cells {
        let Some(expect) = reference.get(cell.index) else {
            return Err(format!(
                "{ctx}: cell index {} outside the {}-cell grid",
                cell.index,
                reference.len()
            ));
        };
        if expect.seed != cell.seed || expect.label() != cell.label() {
            return Err(format!(
                "{ctx}: cell {} disagrees with this binary's grid \
                 (plan: seed {} [{}], binary: seed {} [{}]) — regenerate the plan",
                cell.index,
                cell.seed,
                cell.label(),
                expect.seed,
                expect.label()
            ));
        }
    }
    // Heartbeat: written once up front (0 cells done — proves the shard
    // started), then rewritten after every completed cell. Serialized
    // by the mutex because cells complete on rayon workers.
    let hb_path = heartbeat_path(plan_path);
    let planned = cells.len();
    write_heartbeat(&hb_path, &file, planned, 0, None);
    let hb_state = std::sync::Mutex::new(0usize);
    let outcomes = runner::run_cells_with(scenario, &cells, parallel, &|spec| {
        let mut done = hb_state.lock().unwrap();
        *done += 1;
        write_heartbeat(&hb_path, &file, planned, *done, Some(spec.index));
    });
    let mut fields = Vec::with_capacity(12);
    let Json::Obj(header) = &file.doc else {
        unreachable!("parsed shard file is an object");
    };
    // Copy the plan's header verbatim (minus its cell list), flipping
    // the kind — merge re-validates consistency across partials.
    for (k, v) in header {
        match k.as_str() {
            "cells" => {}
            "kind" => fields.push(("kind".to_string(), Json::from("partial"))),
            _ => fields.push((k.clone(), v.clone())),
        }
    }
    fields.push((
        "outcomes".to_string(),
        Json::arr(outcomes.iter().map(encode_outcome)),
    ));
    let path = out
        .map(Path::to_path_buf)
        .unwrap_or_else(|| default_partial_path(plan_path));
    let doc = Json::Obj(fields);
    if let Err(first) = doc.write_to(&path) {
        // A transient I/O failure here would throw away a whole shard of
        // simulated cells, so retry the write once before giving up —
        // and name the cells at stake so an operator reading the log
        // knows what a persistent failure loses.
        let cell_list = cells
            .iter()
            .map(|c| c.index.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "warning: writing {} failed ({first}); retrying once (cells [{cell_list}])",
            path.display()
        );
        doc.write_to(&path).map_err(|e| {
            format!(
                "cannot write {} (retried once; first error: {first}): {e}",
                path.display()
            )
        })?;
    }
    Ok(path)
}

// -------------------------------------------------------------------
// merge
// -------------------------------------------------------------------

/// Validates and merges partial-result files into the final report,
/// writing `BENCH_<name>.json` and `results/*.csv` under `out_root` —
/// byte-identical to what a direct run of the whole grid writes (under
/// [`crate::freeze_perf`]; wall-clock fields otherwise differ by
/// nature). Returns the `BENCH_<name>.json` path.
pub fn merge(partials: &[PathBuf], out_root: &Path) -> Result<PathBuf, String> {
    if partials.is_empty() {
        return Err("shard merge needs at least one partial-result file".to_string());
    }
    let files: Vec<ShardFile> = partials
        .iter()
        .map(|p| read_shard_file(p, "partial"))
        .collect::<Result<_, _>>()?;

    // Header consistency across partials.
    let first = &files[0];
    for f in &files[1..] {
        for (what, a, b) in [
            ("scenario", first.scenario.as_str(), f.scenario.as_str()),
            ("source", first.source.as_str(), f.source.as_str()),
        ] {
            if a != b {
                return Err(format!(
                    "{}: {what} '{b}' does not match '{a}' from {} — partials of different runs",
                    f.ctx(),
                    first.path.display()
                ));
            }
        }
        if f.scale != first.scale || f.shards != first.shards || f.total_cells != first.total_cells
        {
            return Err(format!(
                "{}: header (scale {}, {} shards, {} cells) does not match {} \
                 (scale {}, {} shards, {} cells) — partials of different plans",
                f.ctx(),
                f.scale,
                f.shards,
                f.total_cells,
                first.path.display(),
                first.scale,
                first.shards,
                first.total_cells
            ));
        }
        if f.spec_toml != first.spec_toml {
            return Err(format!(
                "{}: embedded spec differs from {} — partials of different specs",
                f.ctx(),
                first.path.display()
            ));
        }
    }

    // Every shard present exactly once.
    let mut seen: Vec<Option<&ShardFile>> = vec![None; first.shards];
    for f in &files {
        if let Some(prev) = seen[f.shard] {
            return Err(format!(
                "{}: shard {} already provided by {}",
                f.ctx(),
                f.shard,
                prev.path.display()
            ));
        }
        seen[f.shard] = Some(f);
    }
    let missing: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_none())
        .map(|(i, _)| i.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing partial(s) for shard(s) {} of {} — '{}' planned {} shards",
            missing.join(", "),
            first.shards,
            first.scenario,
            first.shards
        ));
    }

    // The file-declared grid size is untrusted; this binary's own grid
    // derivation is the truth. A header claiming fewer cells than the
    // scenario really has (a drifted or tampered planner) would
    // otherwise merge "completely" while silently dropping cells.
    let scenario = resolve_scenario(first)?;
    let reference = scenario.grid(first.scale);
    if reference.len() != first.total_cells {
        return Err(format!(
            "{}: header says the grid has {} cells, this binary generates {} for '{}' at {} \
             scale — scenario definition drifted; regenerate the plan",
            first.ctx(),
            first.total_cells,
            reference.len(),
            first.scenario,
            first.scale
        ));
    }

    // Heartbeat cross-check: advisory only. A heartbeat reporting fewer
    // completed cells than the plan assigned means the shard run was
    // interrupted (or the partial is stale); merge still hard-fails
    // below if any cell is actually missing, so this is a warning that
    // names the likely culprit, not an error.
    for f in &files {
        let planned = reference
            .iter()
            .filter(|c| c.index % first.shards == f.shard)
            .count();
        warn_on_short_heartbeat(&f.path, f.shard, planned);
    }

    // Decode outcomes; every grid cell covered exactly once, and every
    // cell's identity (seed + parameters) matching this binary's grid.
    let mut owner: Vec<Option<&ShardFile>> = vec![None; reference.len()];
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(reference.len());
    for f in &files {
        let ctx = f.ctx();
        let list = f
            .doc
            .get("outcomes")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("{ctx}: no 'outcomes' array"))?;
        for j in list {
            let o = decode_outcome(&ctx, j, f.scale)?;
            let Some(slot) = owner.get_mut(o.spec.index) else {
                return Err(format!(
                    "{ctx}: cell index {} outside the {}-cell grid",
                    o.spec.index,
                    reference.len()
                ));
            };
            if let Some(prev) = slot {
                return Err(format!(
                    "{ctx}: cell {} already provided by {}",
                    o.spec.index,
                    prev.path.display()
                ));
            }
            let expect = &reference[o.spec.index];
            if expect.seed != o.spec.seed || expect.label() != o.spec.label() {
                return Err(format!(
                    "{ctx}: cell {} disagrees with this binary's grid \
                     (partial: seed {} [{}], binary: seed {} [{}]) — regenerate the plan",
                    o.spec.index,
                    o.spec.seed,
                    o.spec.label(),
                    expect.seed,
                    expect.label()
                ));
            }
            *slot = Some(f);
            outcomes.push(o);
        }
    }
    let missing: Vec<String> = owner
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_none())
        .map(|(i, _)| i.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "grid cell(s) {} of '{}' missing from the provided partials \
             ({} of {} cells present) — a shard was truncated or its run incomplete",
            missing.join(", "),
            first.scenario,
            reference.len() - missing.len(),
            reference.len()
        ));
    }

    let run = runner::assemble(scenario, outcomes);
    // There is no meaningful whole-batch wall clock for a distributed
    // run; record zero, which is also what a direct run records under
    // freeze-perf.
    runner::render_into(&run, first.scale, Duration::ZERO, out_root)
        .map_err(|e| format!("cannot write merged report: {e}"))
}

/// Reads the heartbeat sitting next to a partial-result file and warns
/// (to stderr) if it reports fewer completed cells than the plan
/// assigned to that shard. Missing or unparseable heartbeats are
/// silently fine — older runs never wrote one.
fn warn_on_short_heartbeat(partial: &Path, shard: usize, planned: usize) {
    let s = partial.to_string_lossy();
    let Some(stem) = s.strip_suffix(".result.json") else {
        return;
    };
    let hb = PathBuf::from(format!("{stem}.heartbeat.json"));
    let Ok(text) = std::fs::read_to_string(&hb) else {
        return;
    };
    let Ok(doc) = Json::parse(&text) else {
        return;
    };
    let done = doc.get("cells_done").and_then(Json::as_u64).unwrap_or(0) as usize;
    if done < planned {
        eprintln!(
            "warning: heartbeat {} reports {done}/{planned} cells done for shard {shard} — \
             the shard run may have been interrupted or the partial may be stale \
             (cell-coverage validation below is still authoritative)",
            hb.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip_typed() {
        for v in [
            Value::U64(2),
            Value::F64(2.0),
            Value::F64(0.1),
            Value::Str("Occamy".to_string()),
        ] {
            let j = encode_param("k", &v);
            let (k, back) = decode_param("t", &j).unwrap();
            assert_eq!(k, "k");
            assert_eq!(back, v, "kind must survive the trip");
        }
    }

    #[test]
    fn cell_round_trip_preserves_identity() {
        let cells = crate::scenario::Grid::new("fig12", Scale::Smoke)
            .axis("alpha", [1.0f64, 2.0])
            .axis("scheme", ["Occamy", "DT"])
            .build();
        for c in &cells {
            let j = encode_cell(c);
            let back = decode_cell("t", &j, Scale::Smoke).unwrap();
            assert_eq!(back.index, c.index);
            assert_eq!(back.seed, c.seed);
            assert_eq!(back.label(), c.label());
            assert_eq!(back.params(), c.params());
        }
    }

    #[test]
    fn outcome_round_trip_preserves_metrics_and_series() {
        let cells = crate::scenario::Grid::new("x", Scale::Smoke)
            .axis("k", [1u64])
            .build();
        let mut s = Series::new("q", &["t", "v"]);
        s.row(vec![0.0, 0.5]);
        s.row(vec![1.0, f64::NAN]);
        let o = CellOutcome {
            spec: cells[0].clone(),
            result: CellResult::new()
                .metric("loss_rate", 0.125)
                .metric("events", 12345.0)
                .metric("odd", f64::NAN)
                .with_series(s),
            wall: Duration::from_millis(7),
            rss: 4096,
        };
        let j = encode_outcome(&o);
        let back = decode_outcome("t", &j, Scale::Smoke).unwrap();
        assert_eq!(back.spec.seed, o.spec.seed);
        assert_eq!(back.rss, 4096);
        assert_eq!(back.result.get("loss_rate"), Some(0.125));
        assert_eq!(back.result.get("events"), Some(12345.0));
        assert!(back.result.get("odd").unwrap().is_nan());
        let sb = back.result.find_series("q").unwrap();
        assert_eq!(sb.columns, ["t", "v"]);
        assert_eq!(sb.rows[0], [0.0, 0.5]);
        assert!(sb.rows[1][1].is_nan());
        // The re-rendered result is byte-identical to the original —
        // the property the merged BENCH json rests on.
        assert_eq!(back.result.to_json().render(), o.result.to_json().render());
    }

    #[test]
    fn plan_balances_round_robin() {
        let dir = std::env::temp_dir().join(format!("occamy_shard_plan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let source = ShardSource::from_name("fig12").unwrap();
        let paths = plan(&source, Scale::Smoke, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        let mut indices = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let f = read_shard_file(p, "plan").unwrap();
            assert_eq!(f.shard, i);
            assert_eq!(f.shards, 3);
            for c in f.doc.get("cells").and_then(Json::as_arr).unwrap() {
                let idx = c.get("index").and_then(Json::as_u64).unwrap() as usize;
                assert_eq!(idx % 3, i, "round-robin assignment");
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        let total = ShardSource::from_name("fig12")
            .unwrap()
            .scenario()
            .grid(Scale::Smoke)
            .len();
        assert_eq!(indices, (0..total).collect::<Vec<_>>(), "full coverage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_rejects_more_shards_than_cells() {
        let dir = std::env::temp_dir().join("occamy_shard_overplan");
        let source = ShardSource::from_name("fig12").unwrap();
        let cells = source.scenario().grid(Scale::Smoke).len();
        let e = plan(&source, Scale::Smoke, cells + 1, &dir).unwrap_err();
        assert!(e.contains("use --shards"), "{e}");
    }

    #[test]
    fn heartbeat_round_trips_next_to_the_plan() {
        assert_eq!(
            heartbeat_path(Path::new("shards/fig12.shard-0.json")),
            PathBuf::from("shards/fig12.shard-0.heartbeat.json")
        );
        let dir = std::env::temp_dir().join(format!("occamy_shard_hb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = ShardFile {
            path: dir.join("fig12.shard-1.json"),
            scenario: "fig12".to_string(),
            source: "registry".to_string(),
            spec_toml: None,
            scale: Scale::Smoke,
            shard: 1,
            shards: 3,
            total_cells: 9,
            doc: Json::Null,
        };
        let hb = heartbeat_path(&file.path);
        write_heartbeat(&hb, &file, 3, 2, Some(4));
        let doc = Json::parse(&std::fs::read_to_string(&hb).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("heartbeat"));
        assert_eq!(doc.get("cells_done").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("cells_planned").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("last_cell").and_then(Json::as_u64), Some(4));
        // Short heartbeat (2 of 3) triggers the advisory path without
        // erroring; full-coverage validation stays authoritative.
        warn_on_short_heartbeat(&dir.join("fig12.shard-1.result.json"), 1, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_scenario_lists_known_names() {
        let e = match ShardSource::from_name("fig99") {
            Err(e) => e,
            Ok(_) => panic!("fig99 resolved"),
        };
        assert!(e.contains("fig99") && e.contains("fig12"), "{e}");
    }
}
