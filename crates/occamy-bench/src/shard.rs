//! Sharded grid execution: **plan → run → merge** with byte-identical
//! results.
//!
//! The paper-faithful 128-host × 100 G sweeps
//! (`specs/paper_fabric_128h.toml`) are far too slow for one machine,
//! but grid cells are independent, `Send`-safe and seed-deterministic —
//! so a grid can be split into shards, each shard executed anywhere,
//! and the partial results reassembled into the **exact** report a
//! single-machine run would have produced:
//!
//! 1. [`plan`] splits a scenario's grid into `N` shard files
//!    (`shards/<name>.shard-<i>.json`). Each file is versioned and
//!    self-contained: it carries every [`CellSpec`] of the shard — grid
//!    coordinates (`index`), derived seed and typed scheme/knob
//!    bindings — plus, for `--spec` scenarios, the canonical TOML of
//!    the spec document itself, so the executing machine needs nothing
//!    but the plan file and the binary.
//! 2. [`run_shard`] executes one plan file with the same parallel
//!    runner a direct `run` uses ([`crate::runner::run_cells`]) and
//!    writes a partial-result file (`….result.json`). Along the way it
//!    journals every finished cell to an append-only per-shard journal
//!    (`….cells.jsonl`, rewritten via temp-file + rename so a kill at
//!    any instant never leaves a torn line); with `--resume` a
//!    restarted run validates the journal and recomputes only the
//!    cells not yet journaled.
//! 3. [`merge`] validates and reunites the partials — every shard
//!    present exactly once, every grid cell covered exactly once, no
//!    version or header drift — and feeds them through the same
//!    assembly path as a direct run ([`crate::runner::assemble`] +
//!    [`render_into`]), emitting the byte-identical `BENCH_<name>.json`
//!    and `results/*.csv`. Journals are accepted in place of
//!    monolithic partials: `shard merge shards/*.cells.jsonl` applies
//!    the same exactly-once coverage validation to them.
//!
//! Byte-identity is enforced by `tests/shard_equivalence.rs` and the CI
//! `shard-equivalence` job, which `cmp` a merged 3-shard fig12 run
//! against a direct run. Wall-clock perf fields are the one
//! platform-dependent output; both sides run under
//! [`crate::freeze_perf`] (`--freeze-perf`), which zeroes them.
//!
//! Every failure mode names the offending shard file: truncated or
//! tampered JSON, format-version mismatches, header drift between
//! partials, missing or duplicated shards, and missing or duplicated
//! grid cells all produce errors, never panics or silently dropped
//! cells.

use crate::registry::{find_scenario, registry};
use crate::retry::retry_with_backoff;
use crate::runner;
use crate::scenario::{CellOutcome, CellResult, CellSpec, Scale, Scenario, Series, Value};
use crate::spec_scenario::SpecScenario;
use occamy_stats::Json;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Attempts and backoff for result-artifact writes (partials and
/// journal appends): a transient I/O failure would throw away simulated
/// work, so writes retry a few times before giving up.
const WRITE_ATTEMPTS: u32 = 3;
const WRITE_BACKOFF_BASE: Duration = Duration::from_millis(100);
const WRITE_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Format version stamped into every shard file. Bump it when the file
/// layout changes; [`run_shard`] and [`merge`] refuse files from other
/// versions with an error that names the file and both versions.
pub const SHARD_FORMAT: u64 = 1;

// -------------------------------------------------------------------
// Sources
// -------------------------------------------------------------------

/// What a shard plan executes: a registry scenario (identified by name)
/// or a spec-compiled scenario (embedded as canonical TOML).
#[derive(Clone, Copy)]
pub enum ShardSource {
    /// A scenario from the static registry (`fig12`, `table01`, …).
    Registry(&'static dyn Scenario),
    /// A `--spec` scenario; the plan embeds its canonical TOML.
    Spec(&'static SpecScenario),
}

impl ShardSource {
    /// Resolves a registry scenario by name, with the known-name list in
    /// the error.
    pub fn from_name(name: &str) -> Result<ShardSource, String> {
        find_scenario(name)
            .map(ShardSource::Registry)
            .ok_or_else(|| {
                format!(
                    "unknown scenario '{name}'; known: {}",
                    registry()
                        .iter()
                        .map(|s| s.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
    }

    /// The scenario to plan.
    pub fn scenario(&self) -> &'static dyn Scenario {
        match self {
            ShardSource::Registry(s) => *s,
            ShardSource::Spec(s) => *s,
        }
    }

    fn source_tag(&self) -> &'static str {
        match self {
            ShardSource::Registry(_) => "registry",
            ShardSource::Spec(_) => "spec",
        }
    }

    fn spec_toml(&self) -> Option<String> {
        match self {
            ShardSource::Registry(_) => None,
            ShardSource::Spec(s) => Some(s.canonical_toml()),
        }
    }
}

// -------------------------------------------------------------------
// Value / cell encoding
// -------------------------------------------------------------------

/// Typed parameter encoding: `{key, kind, value}` rather than a bare
/// JSON value, so `2.0f64` survives the trip as an `f64` (a bare `2`
/// would decode as `u64` and change the cell's type contract).
fn encode_param(key: &str, v: &Value) -> Json {
    let (kind, value) = match v {
        Value::U64(x) => ("u64", Json::from(*x)),
        Value::F64(x) => ("f64", Json::from(*x)),
        Value::Str(s) => ("str", Json::from(s.as_str())),
    };
    Json::obj([
        ("key", Json::from(key)),
        ("kind", Json::from(kind)),
        ("value", value),
    ])
}

fn decode_param(ctx: &str, j: &Json) -> Result<(String, Value), String> {
    let key = j
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: param lacks a string 'key'"))?;
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: param '{key}' lacks a 'kind'"))?;
    let raw = j
        .get("value")
        .ok_or_else(|| format!("{ctx}: param '{key}' lacks a 'value'"))?;
    let value = match kind {
        "u64" => Value::U64(
            raw.as_u64()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not a u64"))?,
        ),
        "f64" => Value::F64(
            raw.as_f64()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not numeric"))?,
        ),
        "str" => Value::Str(
            raw.as_str()
                .ok_or_else(|| format!("{ctx}: param '{key}' is not a string"))?
                .to_string(),
        ),
        other => return Err(format!("{ctx}: param '{key}' has unknown kind '{other}'")),
    };
    Ok((key.to_string(), value))
}

fn encode_cell(spec: &CellSpec) -> Json {
    Json::obj([
        ("index", Json::from(spec.index)),
        ("seed", Json::from(spec.seed)),
        (
            "params",
            Json::arr(spec.params().iter().map(|(k, v)| encode_param(k, v))),
        ),
    ])
}

fn decode_cell(ctx: &str, j: &Json, scale: Scale) -> Result<CellSpec, String> {
    let index = j
        .get("index")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: cell lacks an 'index'"))? as usize;
    let ctx = format!("{ctx}: cell {index}");
    let seed = j
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: no 'seed'"))?;
    let params = j
        .get("params")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'params' array"))?
        .iter()
        .map(|p| decode_param(&ctx, p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CellSpec::from_parts(index, seed, scale, params))
}

// -------------------------------------------------------------------
// Result encoding
// -------------------------------------------------------------------

fn encode_outcome(o: &CellOutcome) -> Json {
    let Json::Obj(mut fields) = encode_cell(&o.spec) else {
        unreachable!("encode_cell returns an object");
    };
    fields.push((
        "wall_ms".to_string(),
        Json::from(o.wall.as_secs_f64() * 1e3),
    ));
    fields.push(("peak_rss_bytes".to_string(), Json::from(o.rss)));
    fields.push((
        "metrics".to_string(),
        Json::obj(
            o.result
                .metrics()
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v))),
        ),
    ));
    if !o.result.series().is_empty() {
        fields.push((
            "series".to_string(),
            Json::arr(o.result.series().iter().map(Series::to_json)),
        ));
    }
    Json::Obj(fields)
}

fn decode_outcome(ctx: &str, j: &Json, scale: Scale) -> Result<CellOutcome, String> {
    let spec = decode_cell(ctx, j, scale)?;
    let ctx = format!("{ctx}: cell {}", spec.index);
    let wall_ms = j
        .get("wall_ms")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: no 'wall_ms'"))?;
    // Bounded: Duration::from_secs_f64 panics on huge or NaN input, and
    // a year-long cell wall clock is corruption, not measurement.
    if !(0.0..=86_400_000.0 * 365.0).contains(&wall_ms) {
        return Err(format!("{ctx}: 'wall_ms' {wall_ms} is out of range"));
    }
    let mut result = CellResult::new();
    for (k, v) in j
        .get("metrics")
        .and_then(Json::entries)
        .ok_or_else(|| format!("{ctx}: no 'metrics' object"))?
    {
        // `null` is how the emitter spells a non-finite f64.
        let v = match v {
            Json::Null => f64::NAN,
            other => other
                .as_f64()
                .ok_or_else(|| format!("{ctx}: metric '{k}' is not numeric"))?,
        };
        result = result.metric(k, v);
    }
    for s in j.get("series").and_then(Json::as_arr).unwrap_or(&[]) {
        result = result.with_series(decode_series(&ctx, s)?);
    }
    // Tolerant: partials written before the field existed decode as 0.
    let rss = j.get("peak_rss_bytes").and_then(Json::as_u64).unwrap_or(0);
    Ok(CellOutcome {
        spec,
        result,
        wall: Duration::from_secs_f64(wall_ms / 1e3),
        rss,
    })
}

fn decode_series(ctx: &str, j: &Json) -> Result<Series, String> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: series lacks a 'name'"))?;
    let columns: Vec<&str> = j
        .get("columns")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: series '{name}' lacks 'columns'"))?
        .iter()
        .map(|c| {
            c.as_str()
                .ok_or_else(|| format!("{ctx}: series '{name}' has a non-string column"))
        })
        .collect::<Result<_, _>>()?;
    let mut series = Series::new(name, &columns);
    for row in j
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: series '{name}' lacks 'rows'"))?
    {
        let row: Vec<f64> = row
            .as_arr()
            .ok_or_else(|| format!("{ctx}: series '{name}' has a non-array row"))?
            .iter()
            .map(|v| match v {
                Json::Null => Ok(f64::NAN),
                other => other
                    .as_f64()
                    .ok_or_else(|| format!("{ctx}: series '{name}' has a non-numeric entry")),
            })
            .collect::<Result<_, _>>()?;
        if row.len() != series.columns.len() {
            return Err(format!(
                "{ctx}: series '{name}' row width {} != {} columns",
                row.len(),
                series.columns.len()
            ));
        }
        series.row(row);
    }
    Ok(series)
}

// -------------------------------------------------------------------
// File headers
// -------------------------------------------------------------------

/// The parsed, version-checked header shared by plan, partial and
/// journal files.
pub(crate) struct ShardFile {
    pub(crate) path: PathBuf,
    pub(crate) scenario: String,
    source: String,
    spec_toml: Option<String>,
    pub(crate) scale: Scale,
    pub(crate) shard: usize,
    pub(crate) shards: usize,
    pub(crate) total_cells: usize,
    doc: Json,
}

impl ShardFile {
    fn ctx(&self) -> String {
        format!("shard file {}", self.path.display())
    }
}

fn header_json(
    kind: &str,
    name: &str,
    source: &ShardSource,
    scale: Scale,
    shard: usize,
    shards: usize,
    total_cells: usize,
) -> Vec<(String, Json)> {
    let mut fields = vec![
        ("format".to_string(), Json::from(SHARD_FORMAT)),
        ("kind".to_string(), Json::from(kind)),
        ("scenario".to_string(), Json::from(name)),
        ("source".to_string(), Json::from(source.source_tag())),
    ];
    if let Some(toml) = source.spec_toml() {
        fields.push(("spec_toml".to_string(), Json::from(toml)));
    }
    fields.extend([
        ("scale".to_string(), Json::from(scale.to_string())),
        ("shard".to_string(), Json::from(shard)),
        ("shards".to_string(), Json::from(shards)),
        ("total_cells".to_string(), Json::from(total_cells)),
    ]);
    fields
}

/// Reads and validates a shard file's envelope: parseable JSON (a
/// truncated upload fails here, naming the file), the supported format
/// version, the expected kind (`plan` / `partial`) and a complete,
/// well-typed header.
pub(crate) fn read_shard_file(path: &Path, expect_kind: &str) -> Result<ShardFile, String> {
    let ctx = format!("shard file {}", path.display());
    let text = std::fs::read_to_string(path).map_err(|e| format!("{ctx}: {e}"))?;
    let doc = Json::parse(&text)
        .map_err(|e| format!("{ctx}: not valid JSON ({e}) — truncated or corrupted?"))?;
    validate_shard_doc(path, doc, expect_kind)
}

/// The header-validation half of [`read_shard_file`], shared with the
/// journal reader (whose header is the first line of a JSONL stream,
/// not a whole file).
fn validate_shard_doc(path: &Path, doc: Json, expect_kind: &str) -> Result<ShardFile, String> {
    let ctx = format!("shard file {}", path.display());
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: no 'format' version field"))?;
    if format != SHARD_FORMAT {
        return Err(format!(
            "{ctx}: format version {format}, but this binary reads version {SHARD_FORMAT} — \
             regenerate the plan with this binary"
        ));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: no 'kind' field"))?;
    if kind != expect_kind {
        return Err(format!(
            "{ctx}: is a '{kind}' file, expected a '{expect_kind}' file"
        ));
    }
    let str_field = |key: &str| -> Result<String, String> {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{ctx}: no '{key}' field"))
    };
    let usize_field = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("{ctx}: no '{key}' field"))
    };
    let scale_str = str_field("scale")?;
    let scale =
        Scale::parse(&scale_str).ok_or_else(|| format!("{ctx}: unknown scale '{scale_str}'"))?;
    let source = str_field("source")?;
    let spec_toml = match source.as_str() {
        "registry" => None,
        "spec" => Some(str_field("spec_toml")?),
        other => return Err(format!("{ctx}: unknown source '{other}'")),
    };
    let file = ShardFile {
        path: path.to_path_buf(),
        scenario: str_field("scenario")?,
        source,
        spec_toml,
        scale,
        shard: usize_field("shard")?,
        shards: usize_field("shards")?,
        total_cells: usize_field("total_cells")?,
        doc,
    };
    if file.shards == 0 || file.shard >= file.shards {
        return Err(format!(
            "{}: shard id {} out of range for {} shards",
            file.ctx(),
            file.shard,
            file.shards
        ));
    }
    // These counts size allocations downstream; a corrupted header must
    // fail here, not abort with a capacity overflow. No real grid is
    // near this bound (the biggest shipped one is 60 cells), and merge
    // additionally cross-checks against the grid the binary derives.
    const MAX_GRID_CELLS: usize = 1_000_000;
    if file.total_cells == 0 || file.total_cells > MAX_GRID_CELLS {
        return Err(format!(
            "{}: implausible total_cells {} (limit {MAX_GRID_CELLS})",
            file.ctx(),
            file.total_cells
        ));
    }
    if file.shards > file.total_cells {
        return Err(format!(
            "{}: {} shards for {} cells — a plan never has more shards than cells",
            file.ctx(),
            file.shards,
            file.total_cells
        ));
    }
    Ok(file)
}

/// Re-resolves the scenario a shard file describes: a registry lookup,
/// or re-compiling the embedded spec TOML.
fn resolve_scenario(file: &ShardFile) -> Result<&'static dyn Scenario, String> {
    match file.source.as_str() {
        "registry" => find_scenario(&file.scenario).ok_or_else(|| {
            format!(
                "{}: scenario '{}' is not in this binary's registry",
                file.ctx(),
                file.scenario
            )
        }),
        "spec" => {
            let toml = file.spec_toml.as_deref().expect("checked at read");
            let doc = occamy_spec::spec_from_toml(toml)
                .map_err(|e| format!("{}: embedded spec invalid: {e}", file.ctx()))?;
            if doc.name != file.scenario {
                return Err(format!(
                    "{}: embedded spec is named '{}', header says '{}'",
                    file.ctx(),
                    doc.name,
                    file.scenario
                ));
            }
            Ok(SpecScenario::new(doc))
        }
        other => unreachable!("source '{other}' rejected at read"),
    }
}

// -------------------------------------------------------------------
// plan
// -------------------------------------------------------------------

/// Splits `source`'s grid at `scale` into `shards` plan files under
/// `out_dir`, one per shard, named `<scenario>.shard-<i>.json`. Cells
/// are dealt round-robin (`index % shards`) so a sweep whose cost grows
/// along an axis still load-balances. Returns the written paths in
/// shard order.
pub fn plan(
    source: &ShardSource,
    scale: Scale,
    shards: usize,
    out_dir: &Path,
) -> Result<Vec<PathBuf>, String> {
    let scenario = source.scenario();
    let cells = scenario.grid(scale);
    if shards == 0 {
        return Err("--shards must be ≥ 1".to_string());
    }
    if shards > cells.len() {
        return Err(format!(
            "cannot split {} cells of '{}' ({scale} scale) into {shards} shards — \
             use --shards ≤ {}",
            cells.len(),
            scenario.name(),
            cells.len()
        ));
    }
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let mut paths = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mine: Vec<&CellSpec> = cells.iter().filter(|c| c.index % shards == shard).collect();
        let mut fields = header_json(
            "plan",
            scenario.name(),
            source,
            scale,
            shard,
            shards,
            cells.len(),
        );
        fields.push((
            "cells".to_string(),
            Json::arr(mine.iter().map(|c| encode_cell(c))),
        ));
        let path = out_dir.join(format!("{}.shard-{shard}.json", scenario.name()));
        Json::Obj(fields)
            .write_to(&path)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        paths.push(path);
    }
    Ok(paths)
}

// -------------------------------------------------------------------
// run
// -------------------------------------------------------------------

/// The default partial-result path for a plan file:
/// `<plan stem>.result.json` next to it.
pub fn default_partial_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.result.json")),
        None => PathBuf::from(format!("{s}.result.json")),
    }
}

/// The heartbeat path for a plan file: `<plan stem>.heartbeat.json`
/// next to it. `shard run` rewrites this small file as each cell
/// completes; an operator (or `shard merge`, which checks it against
/// the plan) can tell a stalled shard from a slow one by its mtime and
/// `cells_done` count.
pub fn heartbeat_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.heartbeat.json")),
        None => PathBuf::from(format!("{s}.heartbeat.json")),
    }
}

/// Writes (overwrites) a shard heartbeat. Heartbeats are operational
/// metadata, not result artifacts — they live next to the plan, never
/// under `results/`, and carry a real wall-clock timestamp even under
/// `--freeze-perf`. Failures are ignored: a heartbeat must never fail
/// a run.
fn write_heartbeat(
    path: &Path,
    file: &ShardFile,
    planned: usize,
    done: usize,
    last_cell: Option<usize>,
) {
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let _ = Json::obj([
        ("format", Json::from(SHARD_FORMAT)),
        ("kind", Json::from("heartbeat")),
        ("scenario", Json::from(file.scenario.as_str())),
        ("shard", Json::from(file.shard)),
        ("shards", Json::from(file.shards)),
        ("cells_planned", Json::from(planned)),
        ("cells_done", Json::from(done)),
        ("last_cell", last_cell.map_or(Json::Null, Json::from)),
        ("last_event_unix_ms", Json::from(now_ms)),
    ])
    .write_to(path);
}

// -------------------------------------------------------------------
// The resume journal
// -------------------------------------------------------------------

/// The per-shard resume journal for a plan file:
/// `<plan stem>.cells.jsonl` next to it. Line 1 is the shard header
/// (kind `journal`); every further line is one finished cell's encoded
/// outcome. `shard run` appends as cells complete; `shard run --resume`
/// replays the journal and recomputes only the cells it lacks; `shard
/// merge` accepts journals in place of partial-result files.
pub fn journal_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.cells.jsonl")),
        None => PathBuf::from(format!("{s}.cells.jsonl")),
    }
}

fn is_journal_path(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.ends_with(".cells.jsonl"))
}

/// Crash-safe append-only journal writer. The full journal text is held
/// in memory; every append rewrites a sibling temp file and renames it
/// over the journal, so a SIGKILL at any instant leaves either the
/// previous complete journal or the new complete journal on disk —
/// never a half-written last line. (Journals are small — one line per
/// grid cell — so the rewrite cost is noise next to simulating a cell.)
struct JournalWriter {
    path: PathBuf,
    text: String,
}

impl JournalWriter {
    /// Starts a fresh journal containing only the header line,
    /// overwriting any stale journal from a previous (non-`--resume`)
    /// run of the same plan.
    fn create(path: PathBuf, header: &Json) -> Result<JournalWriter, String> {
        let mut w = JournalWriter {
            path,
            text: String::new(),
        };
        w.append_line(&header.render())?;
        Ok(w)
    }

    /// Reopens a validated journal for appending; `text` is its current
    /// on-disk content (header + outcome lines).
    fn resume(path: PathBuf, text: String) -> JournalWriter {
        debug_assert!(text.ends_with('\n'), "validated journals end in \\n");
        JournalWriter { path, text }
    }

    fn append_line(&mut self, line: &str) -> Result<(), String> {
        self.text.push_str(line);
        self.text.push('\n');
        let tmp = self.path.with_extension("jsonl.tmp");
        retry_with_backoff(
            &format!("journal write {}", self.path.display()),
            WRITE_ATTEMPTS,
            WRITE_BACKOFF_BASE,
            WRITE_BACKOFF_CAP,
            || {
                std::fs::write(&tmp, &self.text)?;
                std::fs::rename(&tmp, &self.path)
            },
        )
    }
}

/// Reads and validates a resume journal: a version-checked `journal`
/// header line, then one well-formed outcome per line, each cell
/// belonging to the journal's shard and appearing at most once. Returns
/// the header, the outcomes and the raw text (for reopening in append
/// mode). Every corruption mode fails naming the journal and its shard:
/// a file not ending in a newline (truncated mid-write — impossible
/// under this writer, but external copies can truncate), an unparseable
/// or half-written line, a duplicated cell, a foreign shard's cell.
fn read_journal(path: &Path) -> Result<(ShardFile, Vec<CellOutcome>, String), String> {
    let ctx = format!("journal {}", path.display());
    let text = std::fs::read_to_string(path).map_err(|e| format!("{ctx}: {e}"))?;
    if !text.ends_with('\n') {
        return Err(format!(
            "{ctx}: does not end in a newline — truncated mid-write; \
             delete it and re-run the shard from its plan"
        ));
    }
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| format!("{ctx}: empty — no header line"))?;
    let header_doc = Json::parse(header_line)
        .map_err(|e| format!("{ctx}: header line is not valid JSON ({e})"))?;
    let header = validate_shard_doc(path, header_doc, "journal")?;
    let shard = header.shard;
    let mut outcomes: Vec<CellOutcome> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for (n, line) in lines.enumerate() {
        let lctx = format!("{ctx}: line {} (shard {shard})", n + 2);
        let j = Json::parse(line)
            .map_err(|e| format!("{lctx}: not valid JSON ({e}) — corrupted journal"))?;
        let o = decode_outcome(&lctx, &j, header.scale)?;
        if o.spec.index % header.shards != shard {
            return Err(format!(
                "{lctx}: cell {} belongs to shard {}, not shard {shard} — \
                 journals were mixed up",
                o.spec.index,
                o.spec.index % header.shards
            ));
        }
        if !seen.insert(o.spec.index) {
            return Err(format!(
                "{lctx}: cell {} already journaled earlier in shard {shard}'s journal — \
                 duplicated line; delete the journal and re-run the shard",
                o.spec.index
            ));
        }
        outcomes.push(o);
    }
    Ok((header, outcomes, text))
}

/// Checks that two shard headers describe the same shard of the same
/// plan; `what` and `against` name the files in the error.
fn check_same_shard(a: &ShardFile, b: &ShardFile) -> Result<(), String> {
    for (what, x, y) in [
        ("scenario", a.scenario.as_str(), b.scenario.as_str()),
        ("source", a.source.as_str(), b.source.as_str()),
    ] {
        if x != y {
            return Err(format!(
                "{}: {what} '{x}' does not match '{y}' from {}",
                a.ctx(),
                b.path.display()
            ));
        }
    }
    if a.scale != b.scale
        || a.shard != b.shard
        || a.shards != b.shards
        || a.total_cells != b.total_cells
    {
        return Err(format!(
            "{}: header (scale {}, shard {} of {}, {} cells) does not match {} \
             (scale {}, shard {} of {}, {} cells)",
            a.ctx(),
            a.scale,
            a.shard,
            a.shards,
            a.total_cells,
            b.path.display(),
            b.scale,
            b.shard,
            b.shards,
            b.total_cells
        ));
    }
    if a.spec_toml != b.spec_toml {
        return Err(format!(
            "{}: embedded spec differs from {}",
            a.ctx(),
            b.path.display()
        ));
    }
    Ok(())
}

/// Checks one cell's identity (seed + grid label) against this binary's
/// reference grid — the guard that keeps a drifted or tampered file
/// from poisoning a merged report.
fn check_cell_matches(ctx: &str, cell: &CellSpec, reference: &[CellSpec]) -> Result<(), String> {
    let Some(expect) = reference.get(cell.index) else {
        return Err(format!(
            "{ctx}: cell index {} outside the {}-cell grid",
            cell.index,
            reference.len()
        ));
    };
    if expect.seed != cell.seed || expect.label() != cell.label() {
        return Err(format!(
            "{ctx}: cell {} disagrees with this binary's grid \
             (file: seed {} [{}], binary: seed {} [{}]) — regenerate the plan",
            cell.index,
            cell.seed,
            cell.label(),
            expect.seed,
            expect.label()
        ));
    }
    Ok(())
}

/// Deterministic crash hook for the fleet-resilience tests:
/// `OCCAMY_SHARD_KILL_AFTER="<shard>:<k>"` makes a `shard run` of shard
/// `<shard>` SIGKILL itself after journaling `<k>` cells — but only
/// when it started with an empty journal, so the fleet's retried,
/// resumed attempt runs to completion. Returns the `k` applying to
/// this run, if any.
fn kill_after(shard: usize, journaled_at_start: usize) -> Option<usize> {
    let spec = std::env::var("OCCAMY_SHARD_KILL_AFTER").ok()?;
    if journaled_at_start > 0 {
        return None;
    }
    let (s, k) = spec.split_once(':')?;
    let (s, k) = (
        s.trim().parse::<usize>().ok()?,
        k.trim().parse::<usize>().ok()?,
    );
    (s == shard && k > 0).then_some(k)
}

/// Dies the way a crashed worker dies: SIGKILL (no destructors, no
/// partial write, journal left as-is). Falls back to an abrupt exit
/// with SIGKILL's conventional status where no `kill` binary exists.
fn kill_self_for_test() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .args(["-9", &pid])
        .status();
    std::process::exit(137);
}

/// Executes one shard plan file with the shared parallel runner and
/// writes the partial-result file (default: [`default_partial_path`]).
/// Returns the partial's path.
///
/// Every finished cell is journaled to [`journal_path`] as it
/// completes. With `resume`, an existing journal is validated (against
/// the plan header *and* this binary's reference grid) and its cells
/// are skipped — a shard killed mid-run finishes the rest of its work
/// on restart and produces the byte-identical partial a single
/// uninterrupted run writes. Without `resume`, a stale journal is
/// overwritten and every cell runs.
///
/// Before running, every cell is cross-checked against the grid this
/// binary generates for the same scenario and scale: a seed or
/// parameter mismatch means the plan came from a different code version
/// (or was tampered with), and silently running it would poison the
/// merged report.
pub fn run_shard(
    plan_path: &Path,
    parallel: bool,
    out: Option<&Path>,
    resume: bool,
) -> Result<PathBuf, String> {
    let file = read_shard_file(plan_path, "plan")?;
    let scenario = resolve_scenario(&file)?;
    let ctx = file.ctx();
    let cells: Vec<CellSpec> = file
        .doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'cells' array"))?
        .iter()
        .map(|c| decode_cell(&ctx, c, file.scale))
        .collect::<Result<_, _>>()?;
    // Verify the plan against this binary's own grid derivation.
    let reference = scenario.grid(file.scale);
    if reference.len() != file.total_cells {
        return Err(format!(
            "{ctx}: plan says the grid has {} cells, this binary generates {} — \
             scenario definition drifted; regenerate the plan",
            file.total_cells,
            reference.len()
        ));
    }
    for cell in &cells {
        check_cell_matches(&ctx, cell, &reference)?;
    }

    // Resume: replay a validated journal and run only the cells it
    // lacks. The journal's header must match the plan and every
    // journaled cell must match the reference grid — anything else is
    // a stale or foreign journal and fails loudly rather than welding
    // wrong results into the partial.
    let jpath = journal_path(plan_path);
    let mut journaled: Vec<CellOutcome> = Vec::new();
    let journal = if resume && jpath.exists() {
        let (jheader, mut outcomes, text) = read_journal(&jpath)?;
        check_same_shard(&jheader, &file).map_err(|e| {
            format!("{e} — the journal belongs to a different plan; delete it and re-run")
        })?;
        let planned_idx: HashSet<usize> = cells.iter().map(|c| c.index).collect();
        for o in &outcomes {
            check_cell_matches(&jheader.ctx(), &o.spec, &reference)?;
            if !planned_idx.contains(&o.spec.index) {
                return Err(format!(
                    "{}: cell {} is not assigned to shard {} by the plan — \
                     stale journal; delete it and re-run",
                    jheader.ctx(),
                    o.spec.index,
                    file.shard
                ));
            }
        }
        // A journal written by an unfrozen run must not leak wall-clock
        // values into a frozen resume's outputs.
        if crate::freeze_perf() {
            for o in &mut outcomes {
                o.wall = Duration::ZERO;
                o.rss = 0;
            }
        }
        println!(
            "resuming shard {} of '{}': {} of {} cells journaled, {} to run",
            file.shard,
            file.scenario,
            outcomes.len(),
            cells.len(),
            cells.len() - outcomes.len()
        );
        journaled = outcomes;
        JournalWriter::resume(jpath, text)
    } else {
        // The journal header is the plan's header verbatim (minus the
        // cell list), kind flipped — exactly how the partial's header
        // is built, so merge validates all three the same way.
        let Json::Obj(plan_fields) = &file.doc else {
            unreachable!("parsed shard file is an object");
        };
        let header: Vec<(String, Json)> = plan_fields
            .iter()
            .filter(|(k, _)| k != "cells")
            .map(|(k, v)| match k.as_str() {
                "kind" => ("kind".to_string(), Json::from("journal")),
                _ => (k.clone(), v.clone()),
            })
            .collect();
        JournalWriter::create(jpath, &Json::Obj(header))?
    };

    let done_idx: HashSet<usize> = journaled.iter().map(|o| o.spec.index).collect();
    let remaining: Vec<CellSpec> = cells
        .iter()
        .filter(|c| !done_idx.contains(&c.index))
        .cloned()
        .collect();

    // Heartbeat: written once up front (proving the shard started, and
    // carrying any resumed progress), then rewritten after every
    // completed cell. Journal appends and heartbeats share the mutex
    // because cells complete on rayon workers.
    let hb_path = heartbeat_path(plan_path);
    let planned = cells.len();
    let base_done = journaled.len();
    write_heartbeat(
        &hb_path,
        &file,
        planned,
        base_done,
        journaled.last().map(|o| o.spec.index),
    );
    let kill = kill_after(file.shard, base_done);
    let state = std::sync::Mutex::new((base_done, journal));
    let new_outcomes = runner::run_cells_with(scenario, &remaining, parallel, &|o| {
        let mut guard = state.lock().unwrap();
        let (done, journal) = &mut *guard;
        // A failed journal append costs resumability, never the run:
        // the partial below still carries the cell.
        if let Err(e) = journal.append_line(&encode_outcome(o).render()) {
            eprintln!("warning: cell {} not journaled: {e}", o.spec.index);
        }
        *done += 1;
        write_heartbeat(&hb_path, &file, planned, *done, Some(o.spec.index));
        if kill == Some(*done - base_done) {
            kill_self_for_test();
        }
    });
    drop(state);
    let mut outcomes = journaled;
    outcomes.extend(new_outcomes);
    // Journal order on a resumed run is replayed-then-recomputed, not
    // grid order; restore grid order so the partial is byte-identical
    // to an uninterrupted run's.
    outcomes.sort_by_key(|o| o.spec.index);
    let mut fields = Vec::with_capacity(12);
    let Json::Obj(header) = &file.doc else {
        unreachable!("parsed shard file is an object");
    };
    // Copy the plan's header verbatim (minus its cell list), flipping
    // the kind — merge re-validates consistency across partials.
    for (k, v) in header {
        match k.as_str() {
            "cells" => {}
            "kind" => fields.push(("kind".to_string(), Json::from("partial"))),
            _ => fields.push((k.clone(), v.clone())),
        }
    }
    fields.push((
        "outcomes".to_string(),
        Json::arr(outcomes.iter().map(encode_outcome)),
    ));
    let path = out
        .map(Path::to_path_buf)
        .unwrap_or_else(|| default_partial_path(plan_path));
    let doc = Json::Obj(fields);
    // A transient I/O failure here would throw away a whole shard of
    // simulated cells, so retry with backoff before giving up — naming
    // the cells at stake, so an operator reading the log knows what a
    // persistent failure loses (though with the journal intact, a
    // `--resume` re-run replays them for free).
    let cell_list = cells
        .iter()
        .map(|c| c.index.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    retry_with_backoff(
        &format!("writing partial {} (cells [{cell_list}])", path.display()),
        WRITE_ATTEMPTS,
        WRITE_BACKOFF_BASE,
        WRITE_BACKOFF_CAP,
        || doc.write_to(&path),
    )?;
    Ok(path)
}

// -------------------------------------------------------------------
// merge
// -------------------------------------------------------------------

/// One loaded merge input: a monolithic partial (`….result.json`) or a
/// per-shard resume journal (`….cells.jsonl`). Both carry the same
/// header and decode to the same outcomes, so every validation
/// downstream of loading is shared — a journal merge is held to the
/// identical exactly-once coverage bar as a partial merge.
struct LoadedPartial {
    header: ShardFile,
    outcomes: Vec<CellOutcome>,
}

fn load_partial(path: &Path) -> Result<LoadedPartial, String> {
    if is_journal_path(path) {
        let (header, outcomes, _text) = read_journal(path)?;
        return Ok(LoadedPartial { header, outcomes });
    }
    let file = read_shard_file(path, "partial")?;
    let ctx = file.ctx();
    let outcomes = file
        .doc
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'outcomes' array"))?
        .iter()
        .map(|j| decode_outcome(&ctx, j, file.scale))
        .collect::<Result<_, _>>()?;
    Ok(LoadedPartial {
        header: file,
        outcomes,
    })
}

/// Validates and merges partial-result files — or `….cells.jsonl`
/// resume journals, in any mix — into the final report, writing
/// `BENCH_<name>.json` and `results/*.csv` under `out_root` —
/// byte-identical to what a direct run of the whole grid writes (under
/// [`crate::freeze_perf`]; wall-clock fields otherwise differ by
/// nature). Returns the `BENCH_<name>.json` path.
pub fn merge(partials: &[PathBuf], out_root: &Path) -> Result<PathBuf, String> {
    if partials.is_empty() {
        return Err("shard merge needs at least one partial-result or journal file".to_string());
    }
    let files: Vec<LoadedPartial> = partials
        .iter()
        .map(|p| load_partial(p))
        .collect::<Result<_, _>>()?;

    // Header consistency across inputs.
    let first = &files[0].header;
    for f in &files[1..] {
        let f = &f.header;
        for (what, a, b) in [
            ("scenario", first.scenario.as_str(), f.scenario.as_str()),
            ("source", first.source.as_str(), f.source.as_str()),
        ] {
            if a != b {
                return Err(format!(
                    "{}: {what} '{b}' does not match '{a}' from {} — partials of different runs",
                    f.ctx(),
                    first.path.display()
                ));
            }
        }
        if f.scale != first.scale || f.shards != first.shards || f.total_cells != first.total_cells
        {
            return Err(format!(
                "{}: header (scale {}, {} shards, {} cells) does not match {} \
                 (scale {}, {} shards, {} cells) — partials of different plans",
                f.ctx(),
                f.scale,
                f.shards,
                f.total_cells,
                first.path.display(),
                first.scale,
                first.shards,
                first.total_cells
            ));
        }
        if f.spec_toml != first.spec_toml {
            return Err(format!(
                "{}: embedded spec differs from {} — partials of different specs",
                f.ctx(),
                first.path.display()
            ));
        }
    }

    // Every shard present exactly once — a partial and a journal for
    // the same shard are two claims on the same cells, and retried
    // fleet workers must converge on one journal per shard, so a
    // double claim refuses to merge rather than picking a winner.
    let mut seen: Vec<Option<&ShardFile>> = vec![None; first.shards];
    for f in &files {
        let h = &f.header;
        if let Some(prev) = seen[h.shard] {
            return Err(format!(
                "{}: shard {} already provided by {}",
                h.ctx(),
                h.shard,
                prev.path.display()
            ));
        }
        seen[h.shard] = Some(h);
    }
    let missing: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_none())
        .map(|(i, _)| i.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "missing partial(s) for shard(s) {} of {} — '{}' planned {} shards",
            missing.join(", "),
            first.shards,
            first.scenario,
            first.shards
        ));
    }

    // The file-declared grid size is untrusted; this binary's own grid
    // derivation is the truth. A header claiming fewer cells than the
    // scenario really has (a drifted or tampered planner) would
    // otherwise merge "completely" while silently dropping cells.
    let scenario = resolve_scenario(first)?;
    let reference = scenario.grid(first.scale);
    if reference.len() != first.total_cells {
        return Err(format!(
            "{}: header says the grid has {} cells, this binary generates {} for '{}' at {} \
             scale — scenario definition drifted; regenerate the plan",
            first.ctx(),
            first.total_cells,
            reference.len(),
            first.scenario,
            first.scale
        ));
    }

    // Heartbeat cross-check: advisory only. A heartbeat reporting fewer
    // completed cells than the plan assigned means the shard run was
    // interrupted (or the input is stale); merge still hard-fails
    // below if any cell is actually missing, so this is a warning that
    // names the likely culprit — and the exact grid cells it owes.
    for f in &files {
        let planned: Vec<&CellSpec> = reference
            .iter()
            .filter(|c| c.index % first.shards == f.header.shard)
            .collect();
        let have: HashSet<usize> = f.outcomes.iter().map(|o| o.spec.index).collect();
        warn_on_short_heartbeat(&f.header.path, f.header.shard, &planned, &have);
    }

    // Every grid cell covered exactly once, each cell's identity
    // (seed + parameters) matching this binary's grid.
    let mut owner: Vec<Option<&ShardFile>> = vec![None; reference.len()];
    for f in &files {
        let ctx = f.header.ctx();
        for o in &f.outcomes {
            let Some(slot) = owner.get_mut(o.spec.index) else {
                return Err(format!(
                    "{ctx}: cell index {} outside the {}-cell grid",
                    o.spec.index,
                    reference.len()
                ));
            };
            if let Some(prev) = slot {
                return Err(format!(
                    "{ctx}: cell {} already provided by {}",
                    o.spec.index,
                    prev.path.display()
                ));
            }
            check_cell_matches(&ctx, &o.spec, &reference)?;
            *slot = Some(&f.header);
        }
    }
    let missing: Vec<String> = owner
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_none())
        .map(|(i, _)| format!("{i} [{}]", reference[i].label()))
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "grid cell(s) {} of '{}' missing from the provided partials \
             ({} of {} cells present) — a shard was truncated or its run incomplete",
            missing.join(", "),
            first.scenario,
            reference.len() - missing.len(),
            reference.len()
        ));
    }
    let scale = first.scale;
    let outcomes: Vec<CellOutcome> = files.into_iter().flat_map(|f| f.outcomes).collect();

    let run = runner::assemble(scenario, outcomes);
    // There is no meaningful whole-batch wall clock for a distributed
    // run; record zero, which is also what a direct run records under
    // freeze-perf.
    runner::render_into(&run, scale, Duration::ZERO, out_root)
        .map_err(|e| format!("cannot write merged report: {e}"))
}

/// Reads the heartbeat sitting next to a merge input (partial or
/// journal) and warns (to stderr) if it reports fewer completed cells
/// than the plan assigned to that shard — naming the exact grid cells
/// the input actually lacks, so an operator sees *which* sweep points
/// an interrupted shard still owes, not just a count. Missing or
/// unparseable heartbeats are silently fine — older runs never wrote
/// one.
fn warn_on_short_heartbeat(
    input: &Path,
    shard: usize,
    planned: &[&CellSpec],
    have: &HashSet<usize>,
) {
    let s = input.to_string_lossy();
    let Some(stem) = s
        .strip_suffix(".result.json")
        .or_else(|| s.strip_suffix(".cells.jsonl"))
    else {
        return;
    };
    let hb = PathBuf::from(format!("{stem}.heartbeat.json"));
    let Ok(text) = std::fs::read_to_string(&hb) else {
        return;
    };
    let Ok(doc) = Json::parse(&text) else {
        return;
    };
    let done = doc.get("cells_done").and_then(Json::as_u64).unwrap_or(0) as usize;
    if done >= planned.len() {
        return;
    }
    let missing: Vec<String> = planned
        .iter()
        .filter(|c| !have.contains(&c.index))
        .map(|c| format!("{} [{}]", c.index, c.label()))
        .collect();
    if missing.is_empty() {
        eprintln!(
            "warning: heartbeat {} reports {done}/{} cells done for shard {shard}, \
             but every planned cell is present — stale heartbeat; merge proceeds",
            hb.display(),
            planned.len()
        );
    } else {
        eprintln!(
            "warning: heartbeat {} reports {done}/{} cells done for shard {shard} — \
             the shard run was interrupted or its input is stale; it lacks cell(s) \
             {} (cell-coverage validation below is still authoritative)",
            hb.display(),
            planned.len(),
            missing.join(", ")
        );
    }
}

// -------------------------------------------------------------------
// Fleet support
// -------------------------------------------------------------------

/// Summary of one plan file's header, as the fleet coordinator
/// ([`crate::fleet`]) needs it to validate and supervise a plan set.
#[derive(Debug)]
pub struct PlanInfo {
    /// The plan file.
    pub path: PathBuf,
    /// Scenario name.
    pub scenario: String,
    /// This shard's id.
    pub shard: usize,
    /// Total shards in the plan set.
    pub shards: usize,
    /// Scale the plan was generated at.
    pub scale: Scale,
    /// Cells assigned to this shard.
    pub cells: usize,
}

/// Reads one plan file's header (validating format version and kind).
pub fn plan_info(path: &Path) -> Result<PlanInfo, String> {
    let file = read_shard_file(path, "plan")?;
    let cells = file
        .doc
        .get("cells")
        .and_then(Json::as_arr)
        .map(|a| a.len())
        .ok_or_else(|| format!("{}: no 'cells' array", file.ctx()))?;
    Ok(PlanInfo {
        path: path.to_path_buf(),
        scenario: file.scenario,
        shard: file.shard,
        shards: file.shards,
        scale: file.scale,
        cells,
    })
}

/// The cells a shard still owes, as `"index [grid label]"` strings:
/// planned cells not yet present in the shard's journal (all of them
/// when no journal exists; likewise when the journal is unreadable —
/// corrupt journals count for nothing). The fleet coordinator reports
/// these when a shard exhausts its retries, so a degraded run ends
/// with the exact sweep points still owed rather than a bare count.
pub fn unfinished_cells(plan_path: &Path) -> Result<Vec<String>, String> {
    let file = read_shard_file(plan_path, "plan")?;
    let ctx = file.ctx();
    let planned: Vec<(usize, String)> = file
        .doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: no 'cells' array"))?
        .iter()
        .map(|c| decode_cell(&ctx, c, file.scale).map(|s| (s.index, s.label())))
        .collect::<Result<_, _>>()?;
    let jpath = journal_path(plan_path);
    let have: HashSet<usize> = match read_journal(&jpath) {
        Ok((_, outcomes, _)) => outcomes.iter().map(|o| o.spec.index).collect(),
        Err(_) => HashSet::new(),
    };
    Ok(planned
        .into_iter()
        .filter(|(i, _)| !have.contains(i))
        .map(|(i, l)| format!("{i} [{l}]"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip_typed() {
        for v in [
            Value::U64(2),
            Value::F64(2.0),
            Value::F64(0.1),
            Value::Str("Occamy".to_string()),
        ] {
            let j = encode_param("k", &v);
            let (k, back) = decode_param("t", &j).unwrap();
            assert_eq!(k, "k");
            assert_eq!(back, v, "kind must survive the trip");
        }
    }

    #[test]
    fn cell_round_trip_preserves_identity() {
        let cells = crate::scenario::Grid::new("fig12", Scale::Smoke)
            .axis("alpha", [1.0f64, 2.0])
            .axis("scheme", ["Occamy", "DT"])
            .build();
        for c in &cells {
            let j = encode_cell(c);
            let back = decode_cell("t", &j, Scale::Smoke).unwrap();
            assert_eq!(back.index, c.index);
            assert_eq!(back.seed, c.seed);
            assert_eq!(back.label(), c.label());
            assert_eq!(back.params(), c.params());
        }
    }

    #[test]
    fn outcome_round_trip_preserves_metrics_and_series() {
        let cells = crate::scenario::Grid::new("x", Scale::Smoke)
            .axis("k", [1u64])
            .build();
        let mut s = Series::new("q", &["t", "v"]);
        s.row(vec![0.0, 0.5]);
        s.row(vec![1.0, f64::NAN]);
        let o = CellOutcome {
            spec: cells[0].clone(),
            result: CellResult::new()
                .metric("loss_rate", 0.125)
                .metric("events", 12345.0)
                .metric("odd", f64::NAN)
                .with_series(s),
            wall: Duration::from_millis(7),
            rss: 4096,
        };
        let j = encode_outcome(&o);
        let back = decode_outcome("t", &j, Scale::Smoke).unwrap();
        assert_eq!(back.spec.seed, o.spec.seed);
        assert_eq!(back.rss, 4096);
        assert_eq!(back.result.get("loss_rate"), Some(0.125));
        assert_eq!(back.result.get("events"), Some(12345.0));
        assert!(back.result.get("odd").unwrap().is_nan());
        let sb = back.result.find_series("q").unwrap();
        assert_eq!(sb.columns, ["t", "v"]);
        assert_eq!(sb.rows[0], [0.0, 0.5]);
        assert!(sb.rows[1][1].is_nan());
        // The re-rendered result is byte-identical to the original —
        // the property the merged BENCH json rests on.
        assert_eq!(back.result.to_json().render(), o.result.to_json().render());
    }

    #[test]
    fn plan_balances_round_robin() {
        let dir = std::env::temp_dir().join(format!("occamy_shard_plan_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let source = ShardSource::from_name("fig12").unwrap();
        let paths = plan(&source, Scale::Smoke, 3, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        let mut indices = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            let f = read_shard_file(p, "plan").unwrap();
            assert_eq!(f.shard, i);
            assert_eq!(f.shards, 3);
            for c in f.doc.get("cells").and_then(Json::as_arr).unwrap() {
                let idx = c.get("index").and_then(Json::as_u64).unwrap() as usize;
                assert_eq!(idx % 3, i, "round-robin assignment");
                indices.push(idx);
            }
        }
        indices.sort_unstable();
        let total = ShardSource::from_name("fig12")
            .unwrap()
            .scenario()
            .grid(Scale::Smoke)
            .len();
        assert_eq!(indices, (0..total).collect::<Vec<_>>(), "full coverage");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plan_rejects_more_shards_than_cells() {
        let dir = std::env::temp_dir().join("occamy_shard_overplan");
        let source = ShardSource::from_name("fig12").unwrap();
        let cells = source.scenario().grid(Scale::Smoke).len();
        let e = plan(&source, Scale::Smoke, cells + 1, &dir).unwrap_err();
        assert!(e.contains("use --shards"), "{e}");
    }

    #[test]
    fn heartbeat_round_trips_next_to_the_plan() {
        assert_eq!(
            heartbeat_path(Path::new("shards/fig12.shard-0.json")),
            PathBuf::from("shards/fig12.shard-0.heartbeat.json")
        );
        let dir = std::env::temp_dir().join(format!("occamy_shard_hb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = ShardFile {
            path: dir.join("fig12.shard-1.json"),
            scenario: "fig12".to_string(),
            source: "registry".to_string(),
            spec_toml: None,
            scale: Scale::Smoke,
            shard: 1,
            shards: 3,
            total_cells: 9,
            doc: Json::Null,
        };
        let hb = heartbeat_path(&file.path);
        write_heartbeat(&hb, &file, 3, 2, Some(4));
        let doc = Json::parse(&std::fs::read_to_string(&hb).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("heartbeat"));
        assert_eq!(doc.get("cells_done").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("cells_planned").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("last_cell").and_then(Json::as_u64), Some(4));
        // Short heartbeat (2 of 3) triggers the advisory path without
        // erroring; full-coverage validation stays authoritative.
        let grid = crate::scenario::Grid::new("fig12", Scale::Smoke)
            .axis("k", [1u64, 2, 3])
            .build();
        let planned: Vec<&CellSpec> = grid.iter().collect();
        let have: HashSet<usize> = [0].into_iter().collect();
        warn_on_short_heartbeat(&dir.join("fig12.shard-1.result.json"), 1, &planned, &have);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_scenario_lists_known_names() {
        let e = match ShardSource::from_name("fig99") {
            Err(e) => e,
            Ok(_) => panic!("fig99 resolved"),
        };
        assert!(e.contains("fig99") && e.contains("fig12"), "{e}");
    }
}
