//! The consumer side of the telemetry bus: a sink thread that tails
//! [`occamy_sim::telemetry`] snapshots into per-scenario
//! `results/<name>_telemetry.jsonl` streams, and the `occamy-bench
//! watch` dashboard that renders those streams (or the live bus, via
//! `run --live`) as an ANSI terminal display.
//!
//! Division of labor with the simulator: every field a [`Snapshot`]
//! carries is deterministic; *this* module stamps the wall-clock
//! context (`unix_ms`, smoothed `events_per_sec` via
//! [`occamy_stats::EwmaRate`]) on the way to disk — and zeroes those
//! two fields under `OCCAMY_FREEZE_PERF=1` so even the telemetry
//! stream is byte-reproducible when CI asks for it. Each stream ends
//! with a `"summary"` record holding streaming-sketch
//! ([`occamy_stats::QuantileSketch`]) percentiles of fabric buffer
//! occupancy, computed in O(1) memory however long the run.

use occamy_sim::telemetry::{self, Snapshot};
use occamy_stats::{EwmaRate, Json, QuantileSketch};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Relative rank error of the per-scenario occupancy sketches written
/// into each stream's closing `"summary"` record.
const SKETCH_EPS: f64 = 0.01;

/// Smoothing window (seconds of wall clock) for the `events_per_sec`
/// stamped on each snapshot record.
const RATE_WINDOW_SECS: f64 = 2.0;

/// Snapshots of recent per-tier occupancy kept for the sparklines.
const SPARK_LEN: usize = 32;

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Renders one bus snapshot as a self-contained JSON object — the
/// schema of `results/<name>_telemetry.jsonl` lines. Built with
/// [`occamy_stats::Json`], so the stream re-parses with the same crate.
fn record_json(s: &Snapshot, unix_ms: u64, events_per_sec: f64) -> Json {
    Json::obj([
        ("kind", Json::from(s.kind.as_str())),
        ("scenario", Json::from(s.cell.scenario.as_str())),
        ("cell", Json::from(s.cell.index)),
        ("cells", Json::from(s.cell.total)),
        ("label", Json::from(s.cell.label.as_str())),
        ("seed", Json::from(s.cell.seed)),
        ("events", Json::from(s.events)),
        ("sim_ps", Json::from(s.sim_ps)),
        ("limit_ps", Json::from(s.limit_ps)),
        ("losses", Json::from(s.losses)),
        ("fault_drops", Json::from(s.fault_drops)),
        ("faults_fired", Json::from(s.faults_fired)),
        ("disabled_ports", Json::from(s.disabled_ports)),
        ("draining", Json::from(s.draining)),
        ("windows", Json::from(s.windows)),
        ("domains", Json::from(s.domains)),
        (
            "switches",
            Json::arr(s.switches.iter().map(|g| {
                Json::obj([
                    ("switch", Json::from(g.switch)),
                    ("tier", Json::from(g.tier as u64)),
                    ("occ_bytes", Json::from(g.occ_bytes)),
                    ("cap_bytes", Json::from(g.cap_bytes)),
                ])
            })),
        ),
        (
            "hot_queues",
            Json::arr(s.hot_queues.iter().map(|q| {
                Json::obj([
                    ("switch", Json::from(q.switch)),
                    ("partition", Json::from(q.partition)),
                    ("queue", Json::from(q.queue)),
                    ("bytes", Json::from(q.bytes)),
                ])
            })),
        ),
        // Wall-clock context, stamped by the consumer (zero under
        // OCCAMY_FREEZE_PERF): everything above is deterministic.
        ("unix_ms", Json::from(unix_ms)),
        ("events_per_sec", Json::from(events_per_sec)),
    ])
}

/// The bus consumer for a `run --telemetry` / `--live` invocation:
/// installs the process-global sink, and drains it on a background
/// thread into per-scenario JSONL streams (plus, in live mode, the
/// terminal dashboard). Call [`finish`](TelemetrySink::finish) after
/// the runs complete to flush the streams and join the thread.
pub struct TelemetrySink {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TelemetrySink {
    /// Installs the telemetry bus (cadence [`crate::telemetry_every`])
    /// and starts the drain thread. JSONL streams are created under
    /// `<root>/results/`; with `live` the dashboard renders to stderr.
    pub fn start(root: &Path, live: bool) -> TelemetrySink {
        let rx = telemetry::install(crate::telemetry_every());
        let results = root.join("results");
        let handle = std::thread::Builder::new()
            .name("telemetry-sink".into())
            .spawn(move || drain(rx, &results, live))
            .expect("spawn telemetry sink thread");
        TelemetrySink {
            handle: Some(handle),
        }
    }

    /// Uninstalls the bus (disconnecting the drain thread's receiver)
    /// and waits for the remaining records to hit disk.
    pub fn finish(mut self) {
        telemetry::uninstall();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Per-scenario consumer state: the open JSONL stream plus the O(1)
/// streaming statistics folded over every snapshot.
struct ScenSink {
    file: std::io::BufWriter<std::fs::File>,
    occ: QuantileSketch,
    snapshots: u64,
}

fn drain(rx: std::sync::mpsc::Receiver<Snapshot>, results: &Path, live: bool) {
    let freeze = crate::freeze_perf();
    let started = Instant::now();
    let mut sinks: BTreeMap<String, ScenSink> = BTreeMap::new();
    // (scenario, cell) → smoothed event rate over wall clock.
    let mut rates: BTreeMap<(String, usize), (EwmaRate, u64)> = BTreeMap::new();
    let mut dash = Dashboard::new();
    if live {
        eprint!("\x1b[2J\x1b[H\x1b[?25l");
    }
    let mut last_render = Instant::now() - Duration::from_secs(1);
    while let Ok(snap) = rx.recv() {
        let eps = if freeze {
            0.0
        } else {
            let key = (snap.cell.scenario.clone(), snap.cell.index);
            let (rate, last_events) = rates
                .entry(key)
                .or_insert_with(|| (EwmaRate::new(RATE_WINDOW_SECS), 0));
            let delta = snap.events.saturating_sub(*last_events);
            *last_events = snap.events;
            rate.update(started.elapsed().as_secs_f64(), delta as f64)
        };
        let rec = record_json(&snap, if freeze { 0 } else { unix_ms() }, eps);
        let sink = match sinks.entry(snap.cell.scenario.clone()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => {
                let path = results.join(format!("{}_telemetry.jsonl", snap.cell.scenario));
                let _ = std::fs::create_dir_all(results);
                let file = match std::fs::File::create(&path) {
                    Ok(f) => f,
                    // Telemetry must never fail a run: no stream, no
                    // records for this scenario.
                    Err(_) => continue,
                };
                e.insert(ScenSink {
                    file: std::io::BufWriter::new(file),
                    occ: QuantileSketch::new(SKETCH_EPS),
                    snapshots: 0,
                })
            }
        };
        for g in &snap.switches {
            if g.cap_bytes > 0 {
                sink.occ.observe(g.occ_bytes as f64 / g.cap_bytes as f64);
            }
        }
        sink.snapshots += 1;
        let _ = writeln!(sink.file, "{}", rec.render());
        dash.feed(&rec);
        if live && last_render.elapsed() >= Duration::from_millis(100) {
            eprint!("{}", dash.render());
            last_render = Instant::now();
        }
    }
    // Bus disconnected: close each stream with its sketch summary.
    for (name, sink) in &mut sinks {
        let q = |s: &QuantileSketch, q: f64| Json::from(s.quantile(q).unwrap_or(0.0));
        let summary = Json::obj([
            ("kind", Json::from("summary")),
            ("scenario", Json::from(name.as_str())),
            ("snapshots", Json::from(sink.snapshots)),
            ("occ_frac_p50", q(&sink.occ, 0.50)),
            ("occ_frac_p90", q(&sink.occ, 0.90)),
            ("occ_frac_p99", q(&sink.occ, 0.99)),
            ("occ_frac_max", q(&sink.occ, 1.0)),
            ("sketch_eps", Json::from(sink.occ.eps())),
            ("sketch_entries", Json::from(sink.occ.size() as u64)),
        ]);
        let _ = writeln!(sink.file, "{}", summary.render());
        let _ = sink.file.flush();
    }
    if live {
        eprint!("{}\x1b[?25h", dash.render());
    }
}

/// One in-flight cell as the dashboard shows it.
struct CellView {
    label: String,
    progress: f64,
    events: u64,
}

/// Aggregated view of one scenario's stream.
struct ScenView {
    cells_total: usize,
    cells_done: usize,
    active: BTreeMap<usize, CellView>,
    events_per_sec: f64,
    losses: u64,
    faults_fired: u64,
    snapshots: u64,
    /// Recent mean occupancy fraction per fabric tier, for sparklines.
    tier_hist: [Vec<f64>; 3],
}

/// One shard's row in the fleet progress table.
struct FleetShardView {
    shard: u64,
    state: String,
    attempts: u64,
    cells_done: u64,
    cells_planned: u64,
}

/// Snapshot of a fleet coordinator's `fleet.status.json`.
struct FleetView {
    scenario: String,
    workers: u64,
    retries: u64,
    shards: Vec<FleetShardView>,
}

/// Terminal dashboard state, fed one JSONL record at a time — either
/// straight off the bus (`run --live`) or tailed from disk (`watch`) —
/// plus, when a fleet coordinator is running, its latest
/// `fleet.status.json` snapshot.
struct Dashboard {
    scenarios: BTreeMap<String, ScenView>,
    fleet: Option<FleetView>,
}

fn spark(hist: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    hist.iter()
        .map(|&f| RAMP[((f * 8.0) as usize).min(7)])
        .collect()
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0) * width as f64) as usize).min(width);
    format!("[{}{}]", "#".repeat(filled), "·".repeat(width - filled))
}

fn rate_str(eps: f64) -> String {
    if eps >= 1e6 {
        format!("{:.2}M ev/s", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.0}k ev/s", eps / 1e3)
    } else {
        format!("{eps:.0} ev/s")
    }
}

impl Dashboard {
    fn new() -> Dashboard {
        Dashboard {
            scenarios: BTreeMap::new(),
            fleet: None,
        }
    }

    /// Replaces the fleet section with a freshly-read `fleet.status.json`
    /// record (kind `fleet`); other kinds are ignored.
    fn feed_fleet(&mut self, rec: &Json) {
        if rec.get("kind").and_then(Json::as_str) != Some("fleet") {
            return;
        }
        let u64_of = |j: &Json, k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        let shards = rec
            .get("shards")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(|s| FleetShardView {
                shard: u64_of(s, "shard"),
                state: s
                    .get("state")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                attempts: u64_of(s, "attempts"),
                cells_done: u64_of(s, "cells_done"),
                cells_planned: u64_of(s, "cells_planned"),
            })
            .collect();
        self.fleet = Some(FleetView {
            scenario: rec
                .get("scenario")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            workers: u64_of(rec, "workers"),
            retries: u64_of(rec, "retries"),
            shards,
        });
    }

    /// Folds one parsed JSONL record into the view.
    fn feed(&mut self, rec: &Json) {
        let str_of = |k: &str| rec.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let u64_of = |k: &str| rec.get(k).and_then(Json::as_u64).unwrap_or(0);
        let kind = str_of("kind");
        let scenario = str_of("scenario");
        if scenario.is_empty() || kind == "summary" {
            return;
        }
        let cell = u64_of("cell") as usize;
        let view = self.scenarios.entry(scenario).or_insert_with(|| ScenView {
            cells_total: 0,
            cells_done: 0,
            active: BTreeMap::new(),
            events_per_sec: 0.0,
            losses: 0,
            faults_fired: 0,
            snapshots: 0,
            tier_hist: [Vec::new(), Vec::new(), Vec::new()],
        });
        view.cells_total = view.cells_total.max(u64_of("cells") as usize);
        match kind.as_str() {
            "cell_end" => {
                view.cells_done += 1;
                view.active.remove(&cell);
            }
            "cell_start" => {
                view.active.insert(
                    cell,
                    CellView {
                        label: str_of("label"),
                        progress: 0.0,
                        events: 0,
                    },
                );
            }
            "snap" => {
                view.snapshots += 1;
                view.losses = view.losses.max(u64_of("losses"));
                view.faults_fired = view.faults_fired.max(u64_of("faults_fired"));
                let eps = rec
                    .get("events_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                if eps > 0.0 {
                    view.events_per_sec = eps;
                }
                let limit = u64_of("limit_ps");
                let progress = if limit > 0 {
                    u64_of("sim_ps") as f64 / limit as f64
                } else {
                    0.0
                };
                let entry = view.active.entry(cell).or_insert_with(|| CellView {
                    label: str_of("label"),
                    progress: 0.0,
                    events: 0,
                });
                entry.progress = progress;
                entry.events = u64_of("events");
                // Mean occupancy fraction per tier for the sparklines.
                let mut occ = [0.0f64; 3];
                let mut cap = [0.0f64; 3];
                if let Some(switches) = rec.get("switches").and_then(Json::as_arr) {
                    for sw in switches {
                        let tier =
                            (sw.get("tier").and_then(Json::as_u64).unwrap_or(0) as usize).min(2);
                        occ[tier] += sw.get("occ_bytes").and_then(Json::as_f64).unwrap_or(0.0);
                        cap[tier] += sw.get("cap_bytes").and_then(Json::as_f64).unwrap_or(0.0);
                    }
                }
                for t in 0..3 {
                    if cap[t] > 0.0 {
                        let h = &mut view.tier_hist[t];
                        h.push(occ[t] / cap[t]);
                        if h.len() > SPARK_LEN {
                            h.remove(0);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Full-repaint ANSI frame: home the cursor, rewrite every line
    /// (clearing to end-of-line), then clear anything below.
    fn render(&self) -> String {
        let mut out = String::from("\x1b[H");
        let mut line = |s: String| {
            out.push_str(&s);
            out.push_str("\x1b[K\r\n");
        };
        let total_snaps: u64 = self.scenarios.values().map(|v| v.snapshots).sum();
        line(format!(
            "occamy telemetry — {} scenario(s), {} snapshot(s)",
            self.scenarios.len(),
            total_snaps
        ));
        if let Some(f) = &self.fleet {
            let count = |s: &str| f.shards.iter().filter(|x| x.state == s).count();
            line(String::new());
            line(format!(
                "  fleet '{}' — {} worker(s): {} running, {} pending, {} done, {} failed, {} retr{}",
                f.scenario,
                f.workers,
                count("running"),
                count("pending"),
                count("done"),
                count("failed"),
                f.retries,
                if f.retries == 1 { "y" } else { "ies" },
            ));
            for s in &f.shards {
                line(format!(
                    "    shard {:>2}  {:<8} attempt {}  cells {:>3}/{:<3} {}",
                    s.shard,
                    s.state,
                    s.attempts,
                    s.cells_done,
                    s.cells_planned,
                    bar(
                        if s.cells_planned > 0 {
                            s.cells_done as f64 / s.cells_planned as f64
                        } else {
                            0.0
                        },
                        20
                    ),
                ));
            }
        }
        for (name, v) in &self.scenarios {
            line(String::new());
            line(format!(
                "  {name}  cells {}/{}  {}  losses {}  faults {}",
                v.cells_done,
                v.cells_total.max(v.cells_done),
                rate_str(v.events_per_sec),
                v.losses,
                v.faults_fired,
            ));
            let tiers: Vec<String> = (0..3)
                .filter(|&t| !v.tier_hist[t].is_empty())
                .map(|t| format!("tier{t} {}", spark(&v.tier_hist[t])))
                .collect();
            if !tiers.is_empty() {
                line(format!("    occupancy  {}", tiers.join("   ")));
            }
            for (idx, c) in &v.active {
                line(format!(
                    "    ▸ [{:>3}/{}] {:<28} {} {:>5.1}%  {} ev",
                    idx + 1,
                    v.cells_total.max(idx + 1),
                    c.label,
                    bar(c.progress, 20),
                    c.progress * 100.0,
                    c.events,
                ));
            }
        }
        out.push_str("\x1b[J");
        out
    }
}

/// `occamy-bench watch <dir>`: tails every `*_telemetry.jsonl` under
/// `<dir>/results` (or `<dir>` itself) and renders the dashboard,
/// following the streams as a concurrently-running `--telemetry` run
/// appends to them. Exits on its own once the streams go quiet for
/// `OCCAMY_WATCH_QUIET_MS` (default 8000) — CI can point it at a live
/// run without needing to kill it.
pub fn watch(dir: &Path) -> std::io::Result<()> {
    let results = dir.join("results");
    let root = if results.is_dir() {
        results
    } else {
        dir.to_path_buf()
    };
    let quiet_ms: u64 = std::env::var("OCCAMY_WATCH_QUIET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8000);
    let mut offsets: BTreeMap<PathBuf, u64> = BTreeMap::new();
    let mut dash = Dashboard::new();
    let mut seen_any = false;
    let started = Instant::now();
    let mut last_data = Instant::now();
    // A fleet coordinator's status file may sit in the watched dir
    // itself (watch shards/) or in a shards/ subdir (watch .).
    let fleet_candidates = [
        dir.join("fleet.status.json"),
        dir.join("shards").join("fleet.status.json"),
        root.join("fleet.status.json"),
    ];
    let mut last_fleet = String::new();
    eprint!("\x1b[2J\x1b[H\x1b[?25l");
    eprintln!("watching {} …\x1b[K", root.display());
    loop {
        let mut fresh = false;
        for path in jsonl_files(&root)? {
            let offset = offsets.entry(path.clone()).or_insert(0);
            for rec in read_new_records(&path, offset) {
                dash.feed(&rec);
                fresh = true;
            }
        }
        for path in &fleet_candidates {
            let Ok(text) = std::fs::read_to_string(path) else {
                continue;
            };
            if text != last_fleet {
                if let Ok(rec) = Json::parse(&text) {
                    dash.feed_fleet(&rec);
                    fresh = true;
                }
                last_fleet = text;
            }
            break;
        }
        if fresh {
            seen_any = true;
            last_data = Instant::now();
            eprint!("{}", dash.render());
        }
        let idle = last_data.elapsed() >= Duration::from_millis(quiet_ms);
        if seen_any && idle {
            break;
        }
        // No stream ever appeared: give a starting run a generous
        // grace period, then stop rather than spin forever.
        if !seen_any && started.elapsed() >= Duration::from_millis(quiet_ms.max(60_000)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
    eprint!("\x1b[?25h");
    if seen_any {
        eprintln!("stream quiet for {quiet_ms} ms — done");
    } else {
        eprintln!("no *_telemetry.jsonl appeared under {}", root.display());
    }
    Ok(())
}

/// The `*_telemetry.jsonl` files under `root`, sorted by name.
fn jsonl_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        // The results dir may not exist yet while the run warms up.
        Err(_) => return Ok(out),
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with("_telemetry.jsonl"))
        {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Reads complete lines appended to `path` past `*offset`, advancing the
/// offset past every fully-parsed line (a partially-written tail line is
/// left for the next poll).
fn read_new_records(path: &Path, offset: &mut u64) -> Vec<Json> {
    use std::io::{Read as _, Seek as _};
    let Ok(mut f) = std::fs::File::open(path) else {
        return Vec::new();
    };
    if f.seek(std::io::SeekFrom::Start(*offset)).is_err() {
        return Vec::new();
    }
    let mut buf = String::new();
    if f.read_to_string(&mut buf).is_err() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut consumed = 0usize;
    for line in buf.split_inclusive('\n') {
        if !line.ends_with('\n') {
            break;
        }
        consumed += line.len();
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Ok(rec) = Json::parse(line) {
            out.push(rec);
        }
    }
    *offset += consumed as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_and_bar_are_width_stable() {
        assert_eq!(spark(&[0.0, 0.5, 1.0]).chars().count(), 3);
        assert_eq!(bar(0.5, 20).chars().count(), 22);
        assert_eq!(bar(2.0, 10), format!("[{}]", "#".repeat(10)));
    }

    #[test]
    fn dashboard_tracks_cells_and_progress() {
        let mut d = Dashboard::new();
        d.feed(
            &Json::parse(
                r#"{"kind":"cell_start","scenario":"s","cell":0,"cells":4,"label":"x=1"}"#,
            )
            .unwrap(),
        );
        d.feed(
            &Json::parse(
                r#"{"kind":"snap","scenario":"s","cell":0,"cells":4,"label":"x=1",
                    "events":500,"sim_ps":50,"limit_ps":100,"losses":3,
                    "switches":[{"switch":0,"tier":0,"occ_bytes":10,"cap_bytes":100}]}"#,
            )
            .unwrap(),
        );
        let v = &d.scenarios["s"];
        assert_eq!(v.cells_total, 4);
        assert_eq!(v.losses, 3);
        assert_eq!(v.active[&0].events, 500);
        assert!((v.active[&0].progress - 0.5).abs() < 1e-9);
        assert_eq!(v.tier_hist[0], vec![0.1]);
        let frame = d.render();
        assert!(frame.contains("cells 0/4"), "{frame}");
        d.feed(&Json::parse(r#"{"kind":"cell_end","scenario":"s","cell":0,"cells":4}"#).unwrap());
        assert_eq!(d.scenarios["s"].cells_done, 1);
        assert!(d.scenarios["s"].active.is_empty());
    }

    #[test]
    fn record_json_round_trips_through_parser() {
        let snap = Snapshot {
            kind: occamy_sim::telemetry::SnapshotKind::Snap,
            cell: occamy_sim::telemetry::CellInfo {
                scenario: "demo".into(),
                index: 2,
                total: 9,
                label: "load=0.8".into(),
                seed: 42,
            },
            events: 1234,
            sim_ps: 10,
            limit_ps: 100,
            switches: vec![occamy_sim::telemetry::SwitchGauge {
                switch: 1,
                tier: 1,
                occ_bytes: 7,
                cap_bytes: 70,
            }],
            hot_queues: vec![occamy_sim::telemetry::QueueGauge {
                switch: 1,
                partition: 0,
                queue: 3,
                bytes: 7,
            }],
            losses: 1,
            fault_drops: 0,
            faults_fired: 0,
            disabled_ports: 0,
            draining: 0,
            windows: 0,
            domains: 0,
        };
        let rec = record_json(&snap, 1700000000000, 2.5e6);
        let back = Json::parse(&rec.render()).unwrap();
        assert_eq!(back.get("scenario").and_then(Json::as_str), Some("demo"));
        assert_eq!(back.get("events").and_then(Json::as_u64), Some(1234));
        let sw = &back.get("switches").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(sw.get("cap_bytes").and_then(Json::as_u64), Some(70));
    }

    #[test]
    fn read_new_records_leaves_partial_tail_lines() {
        let dir = std::env::temp_dir().join(format!("occamy-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t_telemetry.jsonl");
        std::fs::write(&path, "{\"kind\":\"snap\"}\n{\"kind\":\"cel").unwrap();
        let mut off = 0u64;
        let recs = read_new_records(&path, &mut off);
        assert_eq!(recs.len(), 1);
        assert_eq!(off, 16);
        // Completing the tail line yields exactly the remainder.
        std::fs::write(&path, "{\"kind\":\"snap\"}\n{\"kind\":\"cell_end\"}\n").unwrap();
        let recs = read_new_records(&path, &mut off);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].get("kind").and_then(Json::as_str), Some("cell_end"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
