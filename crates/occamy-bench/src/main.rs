//! The `occamy-bench` CLI: lists, runs and shards registered scenarios.
//!
//! ```text
//! occamy-bench list [--spec FILE...]
//! occamy-bench run <name...> [--spec FILE...] [--quick|--smoke] [--serial] [--threads N]
//! occamy-bench all [--quick|--smoke] [--serial] [--threads N]
//! occamy-bench shard plan <name> | --spec FILE  --shards N [--quick|--smoke] [--out-dir DIR]
//! occamy-bench shard run <plan.json> [--serial] [--out FILE] [--resume]
//! occamy-bench shard merge <partial.json | journal.cells.jsonl ...> [--out-dir DIR]
//! occamy-bench fleet <plan-dir> | <name> | --spec FILE [--workers N] [--retries N] [--timeout-s S]
//! occamy-bench watch <dir>
//! ```
//!
//! `run`/`all` execute the selected scenarios' grid cells in parallel
//! across worker threads, print each scenario's tables and shape-check
//! notes, mirror tables to `results/*.csv` and write one machine-readable
//! `BENCH_<name>.json` per scenario. `--spec` loads a declarative
//! TOML/JSON scenario description (see `specs/` and the `occamy-spec`
//! crate) as a first-class scenario next to the static registry.
//!
//! The `shard` subcommands split one scenario's grid into self-contained
//! plan files, execute them independently (any machine with this binary)
//! and merge the partial results into the byte-identical report a direct
//! run produces — see `occamy_bench::shard`. `fleet` supervises a whole
//! plan set on this machine: one worker process per shard, crash/hang
//! detection, resume-from-journal retries and a final merge — see
//! `occamy_bench::fleet`.

use occamy_bench::fleet::{self, FleetOptions};
use occamy_bench::registry::{find_scenario, registry};
use occamy_bench::runner;
use occamy_bench::scenario::{Scale, Scenario};
use occamy_bench::shard::{self, ShardSource};
use occamy_bench::spec_scenario::SpecScenario;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: occamy-bench <command> [options]

commands:
  list                 show every registered scenario with its grid-cell
                       counts at full/quick/smoke scale (size --shards
                       from these)
  run <name...>        run the named scenarios (see `list`)
  all                  run every registered scenario
  shard plan <name>    split a scenario's grid into N self-contained
                       shard files (shards/<name>.shard-<i>.json);
                       use --spec FILE instead of a name for spec runs
  shard run <file>     execute one shard plan, writing the partial
                       result next to it (<plan>.result.json) and
                       journaling each finished cell to
                       <plan>.cells.jsonl; with --resume, skip the
                       cells an interrupted run already journaled
  shard merge <f...>   merge partial results (or .cells.jsonl journals)
                       into the byte-identical BENCH_<name>.json +
                       results/*.csv of a direct run
  fleet <dir|name>     run a whole plan set under supervision: one
                       `shard run --resume` worker process per shard,
                       crashed/hung workers retried with backoff from
                       their journals, then merged; <dir> holds
                       existing plans, or give a name / --spec FILE
                       with --shards N to plan first. Writes live
                       progress to <dir>/fleet.status.json (watch
                       renders it)
  watch <dir>          live terminal dashboard tailing the telemetry
                       streams (results/*_telemetry.jsonl) of a run
                       started with --telemetry, plus the fleet
                       progress table of a fleet.status.json; exits
                       when quiet

options:
  --spec FILE          load a declarative scenario spec (.toml/.json);
                       repeatable; runs alongside any named scenarios
  --quick              reduced sweeps and durations (also: OCCAMY_QUICK=1)
  --smoke              near-trivial grids (seconds; used by the smoke test)
  --serial             execute cells on one thread (baseline / profiling)
  --threads N          worker thread count (default: all cores). Also
                       enables intra-run parallelism: each cell's world
                       runs domain-decomposed on up to N threads with
                       bit-identical results (`--serial --threads 8`
                       = sequential cells, 8-way parallel simulation)
  --shards N           shard count for `shard plan` / planning `fleet`
  --resume             `shard run`: validate <plan>.cells.jsonl and
                       recompute only the cells it lacks
  --workers N          `fleet`: max concurrent worker processes
                       (default: min(shards, cores))
  --retries N          `fleet`: re-dispatches per shard after a crash
                       or hang (default 2)
  --timeout-s S        `fleet`: kill and retry a worker whose heartbeat
                       makes no progress for S seconds (default: off)
  --out-dir DIR        output directory (`shard plan`: default shards/;
                       `shard merge` / `fleet`: default .)
  --out FILE           partial-result path for `shard run`
  --freeze-perf        zero all wall-clock perf fields so reports are
                       byte-reproducible (also: OCCAMY_FREEZE_PERF=1)
  --telemetry          stream live run telemetry to
                       results/<name>_telemetry.jsonl (also:
                       OCCAMY_TELEMETRY=1); snapshot cadence via
                       OCCAMY_TELEMETRY_EVERY or a spec's [telemetry]
                       section. Simulation outputs are byte-identical
                       with or without it
  --live               --telemetry plus an in-terminal dashboard while
                       the run executes (also: OCCAMY_LIVE=1)
";

struct Args {
    command: String,
    names: Vec<String>,
    specs: Vec<&'static SpecScenario>,
    scale: Scale,
    parallel: bool,
    shards: Option<usize>,
    out_dir: Option<String>,
    out: Option<String>,
    resume: bool,
    workers: usize,
    retries: u32,
    timeout_s: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut names = Vec::new();
    let mut specs = Vec::new();
    let mut scale = Scale::from_env();
    let mut parallel = true;
    let mut shards = None;
    let mut out_dir = None;
    let mut out = None;
    let mut resume = false;
    let mut workers = 0usize;
    let mut retries = 2u32;
    let mut timeout_s = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--serial" => parallel = false,
            "--freeze-perf" => std::env::set_var("OCCAMY_FREEZE_PERF", "1"),
            "--telemetry" => std::env::set_var("OCCAMY_TELEMETRY", "1"),
            "--live" => {
                std::env::set_var("OCCAMY_TELEMETRY", "1");
                std::env::set_var("OCCAMY_LIVE", "1");
            }
            "--spec" => {
                let path = args.next().ok_or("--spec needs a file path")?;
                specs.push(SpecScenario::load(&path)?);
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--shards needs a positive integer")?,
                );
            }
            "--out-dir" => {
                out_dir = Some(args.next().ok_or("--out-dir needs a directory path")?);
            }
            "--out" => {
                out = Some(args.next().ok_or("--out needs a file path")?);
            }
            "--resume" => resume = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .ok_or("--retries needs a non-negative integer")?;
            }
            "--timeout-s" => {
                timeout_s = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--timeout-s needs a non-negative integer")?;
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--threads needs a positive integer")?;
                // The cell worker pool sizes itself from this variable…
                std::env::set_var("RAYON_NUM_THREADS", n.to_string());
                // …and each cell's world runs its own domain-decomposed
                // simulation on up to this many threads (bit-identical
                // results; see `occamy_bench::sim_threads`).
                std::env::set_var("OCCAMY_SIM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                command = Some("help".to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'"));
            }
            word if command.is_none() => command = Some(word.to_string()),
            word => names.push(word.to_string()),
        }
    }
    Ok(Args {
        command: command.ok_or("missing command")?,
        names,
        specs,
        scale,
        parallel,
        shards,
        out_dir,
        out,
        resume,
        workers,
        retries,
        timeout_s,
    })
}

/// One catalog line: name, per-scale grid-cell counts (so operators can
/// size `--shards` without reading figure code) and the description.
fn list_line(s: &dyn Scenario) -> String {
    format!(
        "  {:<22} {:>4} cells (quick {:>3}, smoke {:>2})  {}",
        s.name(),
        s.grid(Scale::Full).len(),
        s.grid(Scale::Quick).len(),
        s.grid(Scale::Smoke).len(),
        s.description()
    )
}

fn list(specs: &[&'static SpecScenario]) {
    println!(
        "registered scenarios ({}; cell counts at full scale):\n",
        registry().len()
    );
    for s in registry() {
        println!("{}", list_line(*s));
    }
    if !specs.is_empty() {
        println!("\nloaded specs ({}):\n", specs.len());
        for s in specs {
            println!("{}", list_line(*s));
        }
    }
    println!(
        "\nrun one with: occamy-bench run <name>   (or `all`, or `run --spec file.toml`);\n\
         split a big grid across machines with: occamy-bench shard plan <name> --shards N"
    );
}

fn run(scenarios: Vec<&'static dyn Scenario>, scale: Scale, parallel: bool) -> ExitCode {
    let sink = occamy_bench::telemetry_enabled().then(|| {
        occamy_bench::live::TelemetrySink::start(Path::new("."), occamy_bench::live_mode())
    });
    let (runs, stats) = runner::execute(&scenarios, scale, parallel);
    if let Some(sink) = sink {
        sink.finish();
    }
    for r in &runs {
        if let Err(e) = runner::render(r, scale, stats.wall) {
            eprintln!("failed to write outputs for {}: {e}", r.scenario.name());
            return ExitCode::FAILURE;
        }
    }
    runner::print_stats(&stats);
    ExitCode::SUCCESS
}

fn shard_command(args: &Args) -> Result<(), String> {
    let Some((sub, rest)) = args.names.split_first() else {
        return Err("`shard` needs a subcommand: plan, run or merge".to_string());
    };
    match sub.as_str() {
        "plan" => {
            let source = match (rest, args.specs.as_slice()) {
                ([name], []) => ShardSource::from_name(name)?,
                ([], [spec]) => ShardSource::Spec(spec),
                ([], []) => {
                    return Err("`shard plan` needs a scenario name or one --spec FILE".to_string())
                }
                _ => {
                    return Err(
                        "`shard plan` takes exactly one scenario name or one --spec FILE"
                            .to_string(),
                    )
                }
            };
            let shards = args.shards.ok_or("`shard plan` needs --shards N")?;
            let out_dir = args.out_dir.clone().unwrap_or_else(|| "shards".to_string());
            let paths = shard::plan(&source, args.scale, shards, Path::new(&out_dir))?;
            let cells = source.scenario().grid(args.scale).len();
            println!(
                "planned '{}' ({} scale, {cells} cells) into {shards} shards:",
                source.scenario().name(),
                args.scale
            );
            for p in &paths {
                println!("  {}", p.display());
            }
            println!(
                "\nexecute each with: occamy-bench shard run <file>\n\
                 then merge with:   occamy-bench shard merge {}/{}.shard-*.result.json",
                out_dir,
                source.scenario().name()
            );
            Ok(())
        }
        "run" => {
            let [file] = rest else {
                return Err("`shard run` takes exactly one plan file".to_string());
            };
            let out = args.out.as_ref().map(Path::new);
            let sink = occamy_bench::telemetry_enabled().then(|| {
                occamy_bench::live::TelemetrySink::start(Path::new("."), occamy_bench::live_mode())
            });
            let result = shard::run_shard(Path::new(file), args.parallel, out, args.resume);
            if let Some(sink) = sink {
                sink.finish();
            }
            let path = result?;
            println!("wrote {}", path.display());
            Ok(())
        }
        "merge" => {
            if rest.is_empty() {
                return Err("`shard merge` needs at least one partial-result file".to_string());
            }
            let partials: Vec<PathBuf> = rest.iter().map(PathBuf::from).collect();
            let out_root = args.out_dir.clone().unwrap_or_else(|| ".".to_string());
            let path = shard::merge(&partials, Path::new(&out_root))?;
            println!("merged {} partials -> {}", partials.len(), path.display());
            Ok(())
        }
        other => Err(format!(
            "unknown shard subcommand '{other}' (expected plan, run or merge)"
        )),
    }
}

/// `occamy-bench fleet`: resolve the plan set (an existing plan
/// directory, or plan one first from a scenario name / `--spec`), then
/// run it under supervision and merge.
fn fleet_command(args: &Args) -> Result<(), String> {
    let plans = match (args.names.as_slice(), args.specs.as_slice()) {
        ([dir], []) if Path::new(dir).is_dir() => fleet::plans_in_dir(Path::new(dir))?,
        ([name], []) => {
            let source = ShardSource::from_name(name)?;
            plan_for_fleet(args, &source)?
        }
        ([], [spec]) => {
            let source = ShardSource::Spec(spec);
            plan_for_fleet(args, &source)?
        }
        ([], []) => {
            return Err(
                "`fleet` needs a plan directory, a scenario name or one --spec FILE".to_string(),
            )
        }
        _ => {
            return Err(
                "`fleet` takes exactly one plan directory, scenario name or --spec FILE"
                    .to_string(),
            )
        }
    };
    let opts = FleetOptions {
        workers: args.workers,
        retries: args.retries,
        timeout: std::time::Duration::from_secs(args.timeout_s),
        serial_workers: !args.parallel,
        out_root: PathBuf::from(args.out_dir.clone().unwrap_or_else(|| ".".to_string())),
    };
    let merged = fleet::fleet(&plans, &opts)?;
    println!("wrote {}", merged.display());
    Ok(())
}

/// Plans a fresh shard set for `fleet <name>` / `fleet --spec FILE`
/// into `shards/` (the `shard plan` default).
fn plan_for_fleet(args: &Args, source: &ShardSource) -> Result<Vec<PathBuf>, String> {
    let shards = args
        .shards
        .ok_or("planning a fleet needs --shards N (or point it at an existing plan dir)")?;
    let paths = shard::plan(source, args.scale, shards, Path::new("shards"))?;
    println!(
        "planned '{}' ({} scale) into {shards} shards under shards/",
        source.scenario().name(),
        args.scale
    );
    Ok(paths)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => {
            list(&args.specs);
            ExitCode::SUCCESS
        }
        "all" => {
            let mut selected: Vec<&'static dyn Scenario> = registry().to_vec();
            selected.extend(args.specs.iter().map(|s| *s as &'static dyn Scenario));
            run(selected, args.scale, args.parallel)
        }
        "run" => {
            if args.names.is_empty() && args.specs.is_empty() {
                eprintln!("error: `run` needs at least one scenario name or --spec\n\n{USAGE}");
                return ExitCode::from(2);
            }
            let mut selected: Vec<&'static dyn Scenario> = args
                .specs
                .iter()
                .map(|s| *s as &'static dyn Scenario)
                .collect();
            for name in &args.names {
                match find_scenario(name) {
                    Some(s) => selected.push(s),
                    None => {
                        eprintln!(
                            "error: unknown scenario '{name}'; known: {}",
                            registry()
                                .iter()
                                .map(|s| s.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            run(selected, args.scale, args.parallel)
        }
        "shard" => match shard_command(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "fleet" => match fleet_command(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        "watch" => {
            let dir = args.names.first().map(String::as_str).unwrap_or(".");
            match occamy_bench::live::watch(Path::new(dir)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: watch failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
