//! The `occamy-bench` CLI: lists and runs registered scenarios.
//!
//! ```text
//! occamy-bench list [--spec FILE...]
//! occamy-bench run <name...> [--spec FILE...] [--quick|--smoke] [--serial] [--threads N]
//! occamy-bench all [--quick|--smoke] [--serial] [--threads N]
//! ```
//!
//! `run`/`all` execute the selected scenarios' grid cells in parallel
//! across worker threads, print each scenario's tables and shape-check
//! notes, mirror tables to `results/*.csv` and write one machine-readable
//! `BENCH_<name>.json` per scenario. `--spec` loads a declarative
//! TOML/JSON scenario description (see `specs/` and the `occamy-spec`
//! crate) as a first-class scenario next to the static registry.

use occamy_bench::registry::{find_scenario, registry};
use occamy_bench::runner;
use occamy_bench::scenario::{Scale, Scenario};
use occamy_bench::spec_scenario::SpecScenario;
use std::process::ExitCode;

const USAGE: &str = "\
usage: occamy-bench <command> [options]

commands:
  list                 show every registered scenario
  run <name...>        run the named scenarios (see `list`)
  all                  run every registered scenario

options:
  --spec FILE          load a declarative scenario spec (.toml/.json);
                       repeatable; runs alongside any named scenarios
  --quick              reduced sweeps and durations (also: OCCAMY_QUICK=1)
  --smoke              near-trivial grids (seconds; used by the smoke test)
  --serial             execute cells on one thread (baseline / profiling)
  --threads N          worker thread count (default: all cores)
";

struct Args {
    command: String,
    names: Vec<String>,
    specs: Vec<&'static SpecScenario>,
    scale: Scale,
    parallel: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut names = Vec::new();
    let mut specs = Vec::new();
    let mut scale = Scale::from_env();
    let mut parallel = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--serial" => parallel = false,
            "--spec" => {
                let path = args.next().ok_or("--spec needs a file path")?;
                specs.push(SpecScenario::load(&path)?);
            }
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--threads needs a positive integer")?;
                // The worker pool sizes itself from this variable.
                std::env::set_var("RAYON_NUM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                command = Some("help".to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'"));
            }
            word if command.is_none() => command = Some(word.to_string()),
            word => names.push(word.to_string()),
        }
    }
    Ok(Args {
        command: command.ok_or("missing command")?,
        names,
        specs,
        scale,
        parallel,
    })
}

fn list(scale: Scale, specs: &[&'static SpecScenario]) {
    println!(
        "registered scenarios ({}, {scale} scale):\n",
        registry().len()
    );
    for s in registry() {
        println!(
            "  {:<22} {:>3} cells  {}",
            s.name(),
            s.grid(scale).len(),
            s.description()
        );
    }
    if !specs.is_empty() {
        println!("\nloaded specs ({}):\n", specs.len());
        for s in specs {
            println!(
                "  {:<22} {:>3} cells  {}",
                s.name(),
                s.grid(scale).len(),
                s.description()
            );
        }
    }
    println!("\nrun one with: occamy-bench run <name>   (or `all`, or `run --spec file.toml`)");
}

fn run(scenarios: Vec<&'static dyn Scenario>, scale: Scale, parallel: bool) -> ExitCode {
    let (runs, stats) = runner::execute(&scenarios, scale, parallel);
    for r in &runs {
        if let Err(e) = runner::render(r, scale, stats.wall) {
            eprintln!("failed to write outputs for {}: {e}", r.scenario.name());
            return ExitCode::FAILURE;
        }
    }
    runner::print_stats(&stats);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => {
            list(args.scale, &args.specs);
            ExitCode::SUCCESS
        }
        "all" => {
            let mut selected: Vec<&'static dyn Scenario> = registry().to_vec();
            selected.extend(args.specs.iter().map(|s| *s as &'static dyn Scenario));
            run(selected, args.scale, args.parallel)
        }
        "run" => {
            if args.names.is_empty() && args.specs.is_empty() {
                eprintln!("error: `run` needs at least one scenario name or --spec\n\n{USAGE}");
                return ExitCode::from(2);
            }
            let mut selected: Vec<&'static dyn Scenario> = args
                .specs
                .iter()
                .map(|s| *s as &'static dyn Scenario)
                .collect();
            for name in &args.names {
                match find_scenario(name) {
                    Some(s) => selected.push(s),
                    None => {
                        eprintln!(
                            "error: unknown scenario '{name}'; known: {}",
                            registry()
                                .iter()
                                .map(|s| s.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            run(selected, args.scale, args.parallel)
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
