//! The `occamy-bench` CLI: lists and runs registered scenarios.
//!
//! ```text
//! occamy-bench list
//! occamy-bench run <name...> [--quick|--smoke] [--serial] [--threads N]
//! occamy-bench all [--quick|--smoke] [--serial] [--threads N]
//! ```
//!
//! `run`/`all` execute the selected scenarios' grid cells in parallel
//! across worker threads, print each scenario's tables and shape-check
//! notes, mirror tables to `results/*.csv` and write one machine-readable
//! `BENCH_<name>.json` per scenario.

use occamy_bench::registry::{find_scenario, registry};
use occamy_bench::runner;
use occamy_bench::scenario::{Scale, Scenario};
use std::process::ExitCode;

const USAGE: &str = "\
usage: occamy-bench <command> [options]

commands:
  list                 show every registered scenario
  run <name...>        run the named scenarios (see `list`)
  all                  run every registered scenario

options:
  --quick              reduced sweeps and durations (also: OCCAMY_QUICK=1)
  --smoke              near-trivial grids (seconds; used by the smoke test)
  --serial             execute cells on one thread (baseline / profiling)
  --threads N          worker thread count (default: all cores)
";

struct Args {
    command: String,
    names: Vec<String>,
    scale: Scale,
    parallel: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut names = Vec::new();
    let mut scale = Scale::from_env();
    let mut parallel = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--smoke" => scale = Scale::Smoke,
            "--serial" => parallel = false,
            "--threads" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--threads needs a positive integer")?;
                // The worker pool sizes itself from this variable.
                std::env::set_var("RAYON_NUM_THREADS", n.to_string());
            }
            "-h" | "--help" => {
                command = Some("help".to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option '{flag}'"));
            }
            word if command.is_none() => command = Some(word.to_string()),
            word => names.push(word.to_string()),
        }
    }
    Ok(Args {
        command: command.ok_or("missing command")?,
        names,
        scale,
        parallel,
    })
}

fn list(scale: Scale) {
    println!(
        "registered scenarios ({}, {scale} scale):\n",
        registry().len()
    );
    for s in registry() {
        println!(
            "  {:<22} {:>3} cells  {}",
            s.name(),
            s.grid(scale).len(),
            s.description()
        );
    }
    println!("\nrun one with: occamy-bench run <name>   (or `all`)");
}

fn run(scenarios: Vec<&'static dyn Scenario>, scale: Scale, parallel: bool) -> ExitCode {
    let (runs, stats) = runner::execute(&scenarios, scale, parallel);
    for r in &runs {
        if let Err(e) = runner::render(r, scale, stats.wall) {
            eprintln!("failed to write outputs for {}: {e}", r.scenario.name());
            return ExitCode::FAILURE;
        }
    }
    runner::print_stats(&stats);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => {
            list(args.scale);
            ExitCode::SUCCESS
        }
        "all" => run(registry().to_vec(), args.scale, args.parallel),
        "run" => {
            if args.names.is_empty() {
                eprintln!("error: `run` needs at least one scenario name\n\n{USAGE}");
                return ExitCode::from(2);
            }
            let mut selected = Vec::new();
            for name in &args.names {
                match find_scenario(name) {
                    Some(s) => selected.push(s),
                    None => {
                        eprintln!(
                            "error: unknown scenario '{name}'; known: {}",
                            registry()
                                .iter()
                                .map(|s| s.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            run(selected, args.scale, args.parallel)
        }
        other => {
            eprintln!("error: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
