//! Capped-exponential-backoff retry, shared by every writer whose
//! failure would throw away simulated work: `shard run`'s partial and
//! journal writes retry transient I/O errors in-process, and the fleet
//! coordinator ([`crate::fleet`]) schedules worker re-dispatch with the
//! same delay curve.

use std::time::Duration;

/// The delay before retry attempt `attempt` (1-based): `base · 2^(a−1)`,
/// capped. Attempt 0 (the first try) has no delay.
pub fn backoff_delay(attempt: u32, base: Duration, cap: Duration) -> Duration {
    if attempt == 0 {
        return Duration::ZERO;
    }
    let factor = 1u32 << (attempt - 1).min(20);
    base.checked_mul(factor).unwrap_or(cap).min(cap)
}

/// Runs `op` up to `attempts` times, sleeping [`backoff_delay`] between
/// tries and warning to stderr on each failure — `what` names the
/// artifact (and the work at stake) so an operator reading the log
/// knows what a persistent failure loses. Returns the first success, or
/// an error naming both the first and last failures.
pub fn retry_with_backoff<T, E: std::fmt::Display>(
    what: &str,
    attempts: u32,
    base: Duration,
    cap: Duration,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, String> {
    assert!(attempts >= 1, "retry_with_backoff needs at least one try");
    let mut first_err: Option<String> = None;
    for attempt in 0..attempts {
        std::thread::sleep(backoff_delay(attempt, base, cap));
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let e = e.to_string();
                if attempt + 1 < attempts {
                    eprintln!(
                        "warning: {what} failed ({e}); retry {} of {} in {:?}",
                        attempt + 1,
                        attempts - 1,
                        backoff_delay(attempt + 1, base, cap)
                    );
                }
                first_err.get_or_insert(e);
            }
        }
    }
    // `op` ran at least once, so a fall-through means every try failed.
    Err(format!(
        "{what} failed after {attempts} attempts (first error: {})",
        first_err.expect("at least one attempt ran")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_doubles_and_caps() {
        let base = Duration::from_millis(500);
        let cap = Duration::from_secs(30);
        assert_eq!(backoff_delay(0, base, cap), Duration::ZERO);
        assert_eq!(backoff_delay(1, base, cap), Duration::from_millis(500));
        assert_eq!(backoff_delay(2, base, cap), Duration::from_millis(1000));
        assert_eq!(backoff_delay(3, base, cap), Duration::from_millis(2000));
        assert_eq!(backoff_delay(10, base, cap), cap);
        assert_eq!(backoff_delay(u32::MAX, base, cap), cap, "shift is clamped");
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = retry_with_backoff(
            "test write",
            3,
            Duration::ZERO,
            Duration::ZERO,
            || -> Result<u32, String> {
                calls += 1;
                if calls < 3 {
                    Err("transient".to_string())
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);
    }

    #[test]
    fn exhaustion_reports_first_error_and_attempts() {
        let e = retry_with_backoff(
            "journal append",
            2,
            Duration::ZERO,
            Duration::ZERO,
            || -> Result<(), String> { Err("disk full".to_string()) },
        )
        .unwrap_err();
        assert!(e.contains("journal append"), "{e}");
        assert!(e.contains("2 attempts"), "{e}");
        assert!(e.contains("disk full"), "{e}");
    }
}
