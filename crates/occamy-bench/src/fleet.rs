//! The fault-tolerant fleet driver: `occamy-bench fleet` supervises a
//! whole plan set on one machine, surviving worker crashes and hangs.
//!
//! [`fleet`] spawns one `occamy-bench shard run <plan> --resume` worker
//! *process* per shard (at most `--workers` concurrently), watching
//! each through its exit status and its `<plan>.heartbeat.json`:
//!
//! - a worker that **exits nonzero or disappears** (OOM-killed,
//!   SIGKILLed, machine hiccup) is re-dispatched with capped
//!   exponential backoff, up to `--retries` times — and because every
//!   finished cell is already in the shard's `<plan>.cells.jsonl`
//!   journal, the retried worker recomputes **only the cells the dead
//!   one never journaled**;
//! - a worker whose heartbeat **stops advancing** for `--timeout-s`
//!   seconds is declared hung, killed and re-dispatched the same way;
//! - a shard that exhausts its retries **degrades gracefully**: the
//!   fleet finishes every other shard, then reports the exact grid
//!   cells still owed (by index and grid label) and exits nonzero —
//!   no partial merge, no panic, no silent loss.
//!
//! When every shard completes, the partials are merged through the
//! ordinary [`crate::shard::merge`] path, so the fleet's output is
//! byte-identical to a direct `--freeze-perf` run even when workers
//! were killed and resumed mid-shard (CI-enforced by the
//! `fleet-resilience` job).
//!
//! Progress is mirrored to `fleet.status.json` next to the plans —
//! one small overwritten JSON object (`kind = "fleet"`) that
//! `occamy-bench watch` renders as a live per-shard table: running /
//! retried / done, with journal-backed cell counts.

use crate::retry::backoff_delay;
use crate::shard::{self, PlanInfo};
use occamy_stats::Json;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Poll cadence of the supervision loop.
const POLL: Duration = Duration::from_millis(100);

/// Ceiling on the re-dispatch backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(30);

/// Base re-dispatch backoff (first retry waits this long, then the
/// delay doubles up to [`BACKOFF_CAP`]). `OCCAMY_FLEET_BACKOFF_MS`
/// overrides it — the resilience tests shrink it so a kill-and-resume
/// cycle takes milliseconds, not seconds.
fn backoff_base() -> Duration {
    std::env::var("OCCAMY_FLEET_BACKOFF_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(500))
}

/// Knobs of one [`fleet`] invocation, straight from the CLI.
pub struct FleetOptions {
    /// Max concurrently running workers (0 = min(shards, cores)).
    pub workers: usize,
    /// Re-dispatches allowed per shard after its first failure.
    pub retries: u32,
    /// Liveness timeout: a worker whose heartbeat `cells_done` does not
    /// advance for this long is killed and retried. Zero disables.
    pub timeout: Duration,
    /// Pass `--serial` to workers (one cell at a time per worker).
    pub serial_workers: bool,
    /// Where the merged report goes (the direct-run default is `.`).
    pub out_root: PathBuf,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            workers: 0,
            retries: 2,
            timeout: Duration::ZERO,
            serial_workers: false,
            out_root: PathBuf::from("."),
        }
    }
}

/// Where one shard is in its lifecycle.
enum ShardState {
    /// Waiting for a worker slot (and, after a failure, for backoff).
    Pending {
        ready_at: Instant,
    },
    /// A worker process is executing the shard.
    Running {
        child: Child,
        /// Heartbeat progress when last observed, for hang detection.
        last_cells: usize,
        last_progress: Instant,
    },
    Done,
    Failed,
}

struct ShardSlot {
    plan: PlanInfo,
    state: ShardState,
    /// Dispatches so far (1 = first attempt running or finished).
    attempts: u32,
}

impl ShardSlot {
    fn state_str(&self) -> &'static str {
        match self.state {
            ShardState::Pending { .. } => "pending",
            ShardState::Running { .. } => "running",
            ShardState::Done => "done",
            ShardState::Failed => "failed",
        }
    }
}

/// `cells_done` from a plan's heartbeat file (0 when absent). A free
/// function on the path, so the supervision loop can read it while
/// holding a mutable borrow of the slot's state.
fn heartbeat_cells(plan_path: &Path) -> usize {
    let hb = shard::heartbeat_path(plan_path);
    let Ok(text) = std::fs::read_to_string(&hb) else {
        return 0;
    };
    let Ok(doc) = Json::parse(&text) else {
        return 0;
    };
    doc.get("cells_done").and_then(Json::as_u64).unwrap_or(0) as usize
}

/// Collects the plan files of a plan directory: every
/// `*.shard-<i>.json` that is not a result, heartbeat or journal
/// artifact.
pub fn plans_in_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut plans = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.contains(".shard-")
            && name.ends_with(".json")
            && !name.ends_with(".result.json")
            && !name.ends_with(".heartbeat.json")
        {
            plans.push(path);
        }
    }
    plans.sort();
    if plans.is_empty() {
        return Err(format!(
            "no shard plan files (*.shard-<i>.json) under {} — \
             generate them with `occamy-bench shard plan … --shards N`",
            dir.display()
        ));
    }
    Ok(plans)
}

/// Validates that `plans` form one complete plan set: same scenario,
/// scale and shard count everywhere, every shard id 0..shards present
/// exactly once (the fleet merges at the end, and merge needs them
/// all).
fn load_plan_set(plans: &[PathBuf]) -> Result<Vec<PlanInfo>, String> {
    let infos: Vec<PlanInfo> = plans
        .iter()
        .map(|p| shard::plan_info(p))
        .collect::<Result<_, _>>()?;
    let first = &infos[0];
    for i in &infos[1..] {
        if i.scenario != first.scenario || i.shards != first.shards || i.scale != first.scale {
            return Err(format!(
                "{}: plan ('{}', {} scale, {} shards) does not match {} \
                 ('{}', {} scale, {} shards) — plans of different runs",
                i.path.display(),
                i.scenario,
                i.scale,
                i.shards,
                first.path.display(),
                first.scenario,
                first.scale,
                first.shards
            ));
        }
    }
    let mut seen: Vec<Option<&PlanInfo>> = vec![None; first.shards];
    for i in &infos {
        if let Some(prev) = seen[i.shard] {
            return Err(format!(
                "{}: shard {} already planned by {}",
                i.path.display(),
                i.shard,
                prev.path.display()
            ));
        }
        seen[i.shard] = Some(i);
    }
    let missing: Vec<String> = seen
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_none())
        .map(|(s, _)| s.to_string())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "plan set is missing shard(s) {} of {} — a fleet needs the whole set to merge",
            missing.join(", "),
            first.shards
        ));
    }
    Ok(infos)
}

/// Spawns one worker: `occamy-bench shard run <plan> --resume`,
/// stdout+stderr appended to `<plan stem>.log` (attempts separated by
/// a marker line the coordinator writes first). Inherits this
/// process's environment, so `--freeze-perf` / telemetry settings
/// propagate.
fn spawn_worker(plan: &PlanInfo, attempt: u32, serial: bool) -> Result<Child, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the occamy-bench binary: {e}"))?;
    let log_path = worker_log_path(&plan.path);
    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log_path)
        .map_err(|e| format!("cannot open {}: {e}", log_path.display()))?;
    use std::io::Write as _;
    let _ = writeln!(log, "=== fleet: shard {} attempt {attempt} ===", plan.shard);
    let err_log = log
        .try_clone()
        .map_err(|e| format!("cannot clone log handle for {}: {e}", log_path.display()))?;
    let mut cmd = Command::new(exe);
    cmd.arg("shard")
        .arg("run")
        .arg(&plan.path)
        .arg("--resume")
        .stdin(Stdio::null())
        .stdout(Stdio::from(log))
        .stderr(Stdio::from(err_log));
    if serial {
        cmd.arg("--serial");
    }
    cmd.spawn()
        .map_err(|e| format!("cannot spawn worker for shard {}: {e}", plan.shard))
}

/// The worker log for a plan file: `<plan stem>.log` next to it.
fn worker_log_path(plan_path: &Path) -> PathBuf {
    let s = plan_path.to_string_lossy();
    match s.strip_suffix(".json") {
        Some(stem) => PathBuf::from(format!("{stem}.log")),
        None => PathBuf::from(format!("{s}.log")),
    }
}

/// Writes (overwrites) `fleet.status.json` in the plan directory —
/// operational metadata like the shard heartbeats: real timestamps
/// even under `--freeze-perf`, failures ignored (status must never
/// fail a fleet).
fn write_status(dir: &Path, scenario: &str, workers: usize, slots: &[ShardSlot]) {
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let count = |s: &str| slots.iter().filter(|x| x.state_str() == s).count();
    let _ = Json::obj([
        ("format", Json::from(shard::SHARD_FORMAT)),
        ("kind", Json::from("fleet")),
        ("scenario", Json::from(scenario)),
        ("workers", Json::from(workers)),
        ("running", Json::from(count("running"))),
        ("pending", Json::from(count("pending"))),
        ("done", Json::from(count("done"))),
        ("failed", Json::from(count("failed"))),
        (
            "retries",
            Json::from(
                slots
                    .iter()
                    .map(|s| s.attempts.saturating_sub(1) as u64)
                    .sum::<u64>(),
            ),
        ),
        (
            "shards",
            Json::arr(slots.iter().map(|s| {
                Json::obj([
                    ("shard", Json::from(s.plan.shard)),
                    ("state", Json::from(s.state_str())),
                    ("attempts", Json::from(s.attempts as u64)),
                    ("cells_done", Json::from(heartbeat_cells(&s.plan.path))),
                    ("cells_planned", Json::from(s.plan.cells)),
                ])
            })),
        ),
        ("last_event_unix_ms", Json::from(now_ms)),
    ])
    .write_to(&dir.join("fleet.status.json"));
}

/// Runs a whole plan set to completion under supervision (see the
/// module docs for the retry / hang / degraded-mode contract), then
/// merges the partials into `opts.out_root`. Returns the merged
/// `BENCH_<name>.json` path, or — after any shard exhausts its
/// retries — an error naming every unfinished cell by grid label.
pub fn fleet(plans: &[PathBuf], opts: &FleetOptions) -> Result<PathBuf, String> {
    let infos = load_plan_set(plans)?;
    let scenario = infos[0].scenario.clone();
    let status_dir = infos[0]
        .path
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let workers = if opts.workers > 0 {
        opts.workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(infos.len())
    };
    println!(
        "fleet: '{}' — {} shards, {} worker(s), {} retr{} per shard{}",
        scenario,
        infos.len(),
        workers,
        opts.retries,
        if opts.retries == 1 { "y" } else { "ies" },
        if opts.timeout.is_zero() {
            String::new()
        } else {
            format!(", {}s liveness timeout", opts.timeout.as_secs())
        }
    );

    let now = Instant::now();
    let mut slots: Vec<ShardSlot> = infos
        .into_iter()
        .map(|plan| ShardSlot {
            plan,
            state: ShardState::Pending { ready_at: now },
            attempts: 0,
        })
        .collect();

    let base = backoff_base();
    let mut last_status = Instant::now() - Duration::from_secs(1);
    loop {
        // Reap finished workers and detect hung ones.
        for slot in &mut slots {
            let ShardState::Running {
                child,
                last_cells,
                last_progress,
            } = &mut slot.state
            else {
                continue;
            };
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    println!(
                        "fleet: shard {} done (attempt {})",
                        slot.plan.shard, slot.attempts
                    );
                    slot.state = ShardState::Done;
                }
                Ok(Some(status)) => {
                    fail_attempt(slot, &format!("exited with {status}"), opts.retries, base);
                }
                Ok(None) => {
                    let cells = heartbeat_cells(&slot.plan.path);
                    if cells > *last_cells {
                        *last_cells = cells;
                        *last_progress = Instant::now();
                    } else if !opts.timeout.is_zero() && last_progress.elapsed() > opts.timeout {
                        let _ = child.kill();
                        let _ = child.wait();
                        let msg = format!(
                            "hung: no heartbeat progress past {cells} cells for {}s",
                            opts.timeout.as_secs()
                        );
                        fail_attempt(slot, &msg, opts.retries, base);
                    }
                }
                Err(e) => {
                    fail_attempt(slot, &format!("wait failed: {e}"), opts.retries, base);
                }
            }
        }

        // Dispatch pending shards into free worker slots.
        let mut running = slots
            .iter()
            .filter(|s| matches!(s.state, ShardState::Running { .. }))
            .count();
        for slot in &mut slots {
            if running >= workers {
                break;
            }
            let ShardState::Pending { ready_at } = &slot.state else {
                continue;
            };
            if Instant::now() < *ready_at {
                continue;
            }
            slot.attempts += 1;
            match spawn_worker(&slot.plan, slot.attempts, opts.serial_workers) {
                Ok(child) => {
                    println!(
                        "fleet: shard {} dispatched (attempt {})",
                        slot.plan.shard, slot.attempts
                    );
                    slot.state = ShardState::Running {
                        child,
                        last_cells: heartbeat_cells(&slot.plan.path),
                        last_progress: Instant::now(),
                    };
                    running += 1;
                }
                Err(e) => fail_attempt(slot, &e, opts.retries, base),
            }
        }

        if last_status.elapsed() >= Duration::from_millis(500) {
            write_status(&status_dir, &scenario, workers, &slots);
            last_status = Instant::now();
        }
        let settled = slots
            .iter()
            .all(|s| matches!(s.state, ShardState::Done | ShardState::Failed));
        if settled {
            break;
        }
        std::thread::sleep(POLL);
    }
    write_status(&status_dir, &scenario, workers, &slots);

    let retries_total: u32 = slots.iter().map(|s| s.attempts.saturating_sub(1)).sum();
    let failed: Vec<&ShardSlot> = slots
        .iter()
        .filter(|s| matches!(s.state, ShardState::Failed))
        .collect();
    if !failed.is_empty() {
        // Degraded mode: every other shard finished (its journal and
        // partial are on disk and reusable); report exactly what the
        // failed shards still owe, by grid label.
        let mut owed = Vec::new();
        for slot in &failed {
            let cells = shard::unfinished_cells(&slot.plan.path)
                .unwrap_or_else(|e| vec![format!("(journal unreadable: {e})")]);
            owed.push(format!(
                "shard {} ({} attempts): {}",
                slot.plan.shard,
                slot.attempts,
                cells.join(", ")
            ));
        }
        return Err(format!(
            "fleet: {} of {} shards failed after retries; unfinished cells:\n  {}\n\
             completed shards keep their journals — fix the cause and re-run the \
             fleet to resume from where it stopped",
            failed.len(),
            slots.len(),
            owed.join("\n  ")
        ));
    }

    let partials: Vec<PathBuf> = slots
        .iter()
        .map(|s| shard::default_partial_path(&s.plan.path))
        .collect();
    let merged = shard::merge(&partials, &opts.out_root)?;
    println!(
        "fleet: {} shards done ({retries_total} retr{}), merged -> {}",
        slots.len(),
        if retries_total == 1 { "y" } else { "ies" },
        merged.display()
    );
    Ok(merged)
}

/// Marks one attempt failed: schedules a backed-off retry while any
/// remain, otherwise declares the shard permanently failed. Every
/// transition is printed with the shard, attempt and cause.
fn fail_attempt(slot: &mut ShardSlot, cause: &str, retries: u32, base: Duration) {
    if slot.attempts > retries {
        eprintln!(
            "fleet: shard {} FAILED permanently after {} attempts ({cause})",
            slot.plan.shard, slot.attempts
        );
        slot.state = ShardState::Failed;
    } else {
        let delay = backoff_delay(slot.attempts, base, BACKOFF_CAP);
        eprintln!(
            "fleet: shard {} attempt {} failed ({cause}); retrying in {delay:?}",
            slot.plan.shard, slot.attempts
        );
        slot.state = ShardState::Pending {
            ready_at: Instant::now() + delay,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;
    use crate::shard::ShardSource;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("occamy_fleet_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_discovery_skips_artifacts() {
        let dir = scratch("discover");
        let source = ShardSource::from_name("fig12").unwrap();
        let plans = shard::plan(&source, Scale::Smoke, 2, &dir).unwrap();
        // Artifacts that must not be mistaken for plans.
        std::fs::write(dir.join("fig12.shard-0.result.json"), "{}").unwrap();
        std::fs::write(dir.join("fig12.shard-0.heartbeat.json"), "{}").unwrap();
        std::fs::write(dir.join("fig12.shard-0.cells.jsonl"), "{}\n").unwrap();
        std::fs::write(dir.join("fig12.shard-0.log"), "x").unwrap();
        let found = plans_in_dir(&dir).unwrap();
        assert_eq!(found, {
            let mut p = plans.clone();
            p.sort();
            p
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = scratch("empty");
        let e = plans_in_dir(&dir).unwrap_err();
        assert!(e.contains("no shard plan files"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incomplete_plan_set_is_rejected() {
        let dir = scratch("incomplete");
        let source = ShardSource::from_name("fig12").unwrap();
        let plans = shard::plan(&source, Scale::Smoke, 3, &dir).unwrap();
        let e = load_plan_set(&plans[..2]).unwrap_err();
        assert!(e.contains("missing shard(s) 2 of 3"), "{e}");
        // A duplicated shard is also rejected, naming both files.
        let dup = vec![plans[0].clone(), plans[0].clone(), plans[1].clone()];
        let e = load_plan_set(&dup).unwrap_err();
        assert!(e.contains("already planned by"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn status_file_counts_states() {
        let dir = scratch("status");
        let source = ShardSource::from_name("fig12").unwrap();
        let plans = shard::plan(&source, Scale::Smoke, 2, &dir).unwrap();
        let infos = load_plan_set(&plans).unwrap();
        let now = Instant::now();
        let slots: Vec<ShardSlot> = infos
            .into_iter()
            .map(|plan| ShardSlot {
                plan,
                state: ShardState::Pending { ready_at: now },
                attempts: 0,
            })
            .collect();
        write_status(&dir, "fig12", 2, &slots);
        let doc =
            Json::parse(&std::fs::read_to_string(dir.join("fleet.status.json")).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("fleet"));
        assert_eq!(doc.get("pending").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(0));
        assert_eq!(
            doc.get("shards").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
