//! The parallel experiment runner: executes scenario grids cell-by-cell
//! across worker threads, then renders each scenario's report and writes
//! the machine-readable `BENCH_<name>.json` sink.
//!
//! Cells are flattened across all requested scenarios into one job list
//! so a wide grid keeps every core busy even while a narrow one
//! finishes. Results are reassembled in grid order before `emit`, so the
//! printed tables are identical however many threads ran.
//!
//! Execution and report assembly are separate stages on purpose: a
//! direct `run` executes a whole grid and assembles immediately, while
//! the shard pipeline (see [`crate::shard`]) executes subsets of a grid
//! on different machines ([`run_cells`]) and assembles later from the
//! reunited outcomes ([`assemble`] + [`render_into`]) — both paths go
//! through the same code, which is what makes a merged distributed run
//! byte-identical to a single-machine run.

use crate::scenario::{CellOutcome, CellSpec, Report, Scale, Scenario};
use occamy_sim::telemetry::{self, CellInfo, SnapshotKind};
use occamy_stats::{Json, Table};
use rayon::prelude::*;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where that file doesn't exist (non-Linux).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Executes one cell with full instrumentation: the cell-start log line
/// (grid label + seed, so long serial cells are attributable in the
/// job log), telemetry cell context + boundary markers, wall clock and
/// peak RSS. `total` is the number of cells in the batch being run.
fn run_cell(scenario: &dyn Scenario, spec: &CellSpec, total: usize) -> CellOutcome {
    if !crate::live_mode() {
        eprintln!(
            "cell start: {}[{}/{}] {} seed={:#018x}",
            scenario.name(),
            spec.index + 1,
            total,
            spec.label(),
            spec.seed
        );
    }
    telemetry::set_cell(CellInfo {
        scenario: scenario.name().to_string(),
        index: spec.index,
        total,
        label: spec.label(),
        seed: spec.seed,
    });
    telemetry::set_cell_cadence(scenario.telemetry_every());
    telemetry::emit_marker(SnapshotKind::CellStart, 0, 0, 0);
    let start = Instant::now();
    let result = scenario.run(spec);
    let events = result.get("events").unwrap_or(0.0) as u64;
    telemetry::emit_marker(SnapshotKind::CellEnd, events, 0, 0);
    CellOutcome {
        spec: spec.clone(),
        result,
        wall: start.elapsed(),
        rss: peak_rss_bytes(),
    }
}

/// One scenario's finished grid plus its rendered report.
pub struct ScenarioRun {
    /// The scenario that ran.
    pub scenario: &'static dyn Scenario,
    /// Every cell outcome, in grid order.
    pub outcomes: Vec<CellOutcome>,
    /// The rendered tables and notes.
    pub report: Report,
}

impl ScenarioRun {
    /// Sum of per-cell wall-clock times — what a serial runner would
    /// have spent executing (excludes emit).
    pub fn serial_cell_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.wall).sum()
    }

    /// Total simulator events across all cells (cells that report an
    /// `events` metric; see `occamy_sim::Metrics::events_processed`).
    pub fn events_total(&self) -> u64 {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.get("events"))
            .sum::<f64>() as u64
    }

    /// Aggregate simulator throughput: total events over total per-cell
    /// wall time — the headline perf number tracked across PRs.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.serial_cell_time().as_secs_f64();
        if secs > 0.0 {
            self.events_total() as f64 / secs
        } else {
            0.0
        }
    }

    /// The machine-readable report for `BENCH_<name>.json`.
    ///
    /// `batch_wall` is the wall-clock time of the whole `execute` call
    /// that produced this run; cells of several scenarios may have
    /// interleaved in it, so it is recorded as `batch_wall_ms`, distinct
    /// from this scenario's own `serial_cell_time_ms`.
    pub fn to_json(&self, scale: Scale, batch_wall: Duration) -> Json {
        Json::obj([
            ("scenario", Json::from(self.scenario.name())),
            ("description", Json::from(self.scenario.description())),
            ("scale", Json::from(scale.to_string())),
            ("cells", Json::from(self.outcomes.len())),
            (
                "serial_cell_time_ms",
                Json::from(self.serial_cell_time().as_millis() as u64),
            ),
            ("batch_wall_ms", Json::from(batch_wall.as_millis() as u64)),
            ("events_total", Json::from(self.events_total())),
            ("events_per_sec", Json::from(self.events_per_sec())),
            // Parallelism trajectory: requested intra-run threads and
            // the grid-level speedup (serial cell time over batch
            // wall). Both are perf fields — frozen to zero under
            // OCCAMY_FREEZE_PERF so artifacts stay byte-identical
            // across thread counts.
            (
                "sim_threads",
                Json::from(if crate::freeze_perf() {
                    0
                } else {
                    crate::sim_threads() as u64
                }),
            ),
            (
                "speedup",
                Json::from(if batch_wall.as_secs_f64() > 0.0 {
                    self.serial_cell_time().as_secs_f64() / batch_wall.as_secs_f64()
                } else {
                    0.0
                }),
            ),
            (
                "results",
                Json::arr(self.outcomes.iter().map(|o| {
                    let Json::Obj(mut fields) = o.spec.to_json() else {
                        unreachable!("CellSpec::to_json returns an object");
                    };
                    // Per-cell perf trajectory: wall clock and, when the
                    // cell counted simulator events, its events/sec.
                    let (wall_ms, eps) = cell_perf(o);
                    fields.push(("wall_ms".to_string(), Json::from(wall_ms)));
                    if let Some(eps) = eps {
                        fields.push(("events_per_sec".to_string(), Json::from(eps)));
                    }
                    fields.push(("peak_rss_bytes".to_string(), Json::from(o.rss)));
                    let Json::Obj(result) = o.result.to_json() else {
                        unreachable!("CellResult::to_json returns an object");
                    };
                    fields.extend(result);
                    Json::Obj(fields)
                })),
            ),
            (
                "tables",
                Json::arr(self.report.tables().iter().map(|(t, _)| t.to_json())),
            ),
            (
                "notes",
                Json::arr(self.report.notes().iter().map(|n| Json::from(n.as_str()))),
            ),
        ])
    }
}

/// Aggregate statistics of one `execute` call.
pub struct ExecStats {
    /// Total cells executed.
    pub cells: usize,
    /// Wall-clock time of the whole parallel phase.
    pub wall: Duration,
    /// Sum of per-cell times (the serial-execution lower bound).
    pub serial: Duration,
    /// Worker threads used.
    pub threads: usize,
}

/// Executes the grids of all `scenarios` at `scale` and folds each into
/// its report. With `parallel = false` cells run on the calling thread
/// (useful for profiling and as a baseline for the speedup check).
pub fn execute(
    scenarios: &[&'static dyn Scenario],
    scale: Scale,
    parallel: bool,
) -> (Vec<ScenarioRun>, ExecStats) {
    struct Job<'s> {
        scenario: &'s dyn Scenario,
        which: usize,
        spec: CellSpec,
    }

    let mut jobs: Vec<Job<'static>> = Vec::new();
    let mut grids: Vec<usize> = Vec::new();
    for (which, s) in scenarios.iter().enumerate() {
        let cells = s.grid(scale);
        assert!(
            !cells.is_empty(),
            "scenario '{}' generated an empty grid at scale {scale}",
            s.name()
        );
        grids.push(cells.len());
        jobs.extend(cells.into_iter().map(|spec| Job {
            scenario: *s,
            which,
            spec,
        }));
    }

    let run_one = |job: &Job<'static>| -> (usize, CellOutcome) {
        (
            job.which,
            run_cell(job.scenario, &job.spec, grids[job.which]),
        )
    };

    let started = Instant::now();
    let raw: Vec<(usize, CellOutcome)> = if parallel {
        jobs.par_iter().map(run_one).collect()
    } else {
        jobs.iter().map(run_one).collect()
    };
    let wall = if crate::freeze_perf() {
        Duration::ZERO
    } else {
        started.elapsed()
    };

    let mut per_scenario: Vec<Vec<CellOutcome>> =
        grids.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (which, outcome) in raw {
        per_scenario[which].push(outcome);
    }
    for outcomes in &mut per_scenario {
        freeze_walls(outcomes);
    }

    let serial = per_scenario.iter().flatten().map(|o| o.wall).sum();
    let cells = jobs.len();

    let runs = scenarios
        .iter()
        .zip(per_scenario)
        .map(|(scenario, outcomes)| assemble(*scenario, outcomes))
        .collect();

    let stats = ExecStats {
        cells,
        wall,
        serial,
        threads: if parallel {
            rayon::current_num_threads()
        } else {
            1
        },
    };
    (runs, stats)
}

/// Executes one scenario's `cells` (any subset of its grid, in any
/// order) and returns their outcomes in input order — the execution
/// half shared by `run` (via [`execute`]'s job list) and `shard run`,
/// which feeds a planned subset instead of the whole grid.
pub fn run_cells(
    scenario: &'static dyn Scenario,
    cells: &[CellSpec],
    parallel: bool,
) -> Vec<CellOutcome> {
    run_cells_with(scenario, cells, parallel, &|_| {})
}

/// [`run_cells`] with a completion callback, invoked (possibly from
/// worker threads — it must be `Sync`) right after each cell finishes,
/// with the cell's full outcome. `shard run` uses it to keep its
/// heartbeat file current and to journal the outcome, so a stalled or
/// killed shard is detectable — and resumable — from the outside.
///
/// Perf fields are frozen *before* the callback fires (not only in the
/// final batch pass), so anything the callback persists — the resume
/// journal in particular — carries the same zeroed `wall`/`rss` a
/// frozen direct run records, keeping resumed merges byte-identical.
pub fn run_cells_with(
    scenario: &'static dyn Scenario,
    cells: &[CellSpec],
    parallel: bool,
    on_cell_done: &(dyn Fn(&CellOutcome) + Sync),
) -> Vec<CellOutcome> {
    let run_one = |spec: &CellSpec| -> CellOutcome {
        let mut outcome = run_cell(scenario, spec, cells.len());
        freeze_walls(std::slice::from_mut(&mut outcome));
        on_cell_done(&outcome);
        outcome
    };
    if parallel {
        cells.par_iter().map(run_one).collect()
    } else {
        cells.iter().map(run_one).collect()
    }
}

/// Reassembles a scenario's outcomes into grid order and folds them
/// through [`Scenario::emit`] — the assembly half shared by [`execute`]
/// and `shard merge`. Sorting here (rather than trusting the caller)
/// means emit never sees a permuted grid, whether the outcomes arrived
/// from a parallel backend or from shard files in arbitrary order.
pub fn assemble(scenario: &'static dyn Scenario, mut outcomes: Vec<CellOutcome>) -> ScenarioRun {
    outcomes.sort_by_key(|o| o.spec.index);
    ScenarioRun {
        scenario,
        report: scenario.emit(&outcomes),
        outcomes,
    }
}

/// Under `OCCAMY_FREEZE_PERF=1` (see [`crate::freeze_perf`]) wall-clock
/// measurements are forced to zero at the moment they are collected, so
/// every downstream artifact — `BENCH_<name>.json`, `results/*_perf.csv`
/// — is byte-reproducible and a merged distributed run can be `cmp`-ed
/// against a direct run.
fn freeze_walls(outcomes: &mut [CellOutcome]) {
    if crate::freeze_perf() {
        for o in outcomes {
            o.wall = Duration::ZERO;
            o.rss = 0;
        }
    }
}

/// One cell's perf numbers: wall clock in ms and, when the cell counted
/// simulator events and took measurable time, its events/sec. The single
/// source for both the `BENCH_<name>.json` cells and the perf CSV.
fn cell_perf(o: &CellOutcome) -> (f64, Option<f64>) {
    let wall_ms = o.wall.as_secs_f64() * 1e3;
    let eps = o
        .result
        .get("events")
        .filter(|_| wall_ms > 0.0)
        .map(|events| events / (wall_ms / 1e3));
    (wall_ms, eps)
}

/// Builds the per-cell performance table (`results/<name>_perf.csv`):
/// wall clock, simulator events and events/sec for every cell.
fn perf_table(run: &ScenarioRun) -> Table {
    let mut t = Table::new(
        &format!("{} cell performance", run.scenario.name()),
        &[
            "cell",
            "params",
            "wall_ms",
            "events",
            "events_per_sec",
            "peak_rss_mb",
            "threads",
            "domains",
        ],
    );
    // The parallelism columns come from `report::with_par_metrics`;
    // serial cells (and frozen-perf runs) have no such metrics and
    // print `-`, keeping frozen CSVs identical across thread counts.
    let int = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.0}"));
    for o in &run.outcomes {
        let (wall_ms, eps) = cell_perf(o);
        t.row(vec![
            o.spec.index.to_string(),
            o.spec.label(),
            format!("{wall_ms:.3}"),
            int(o.result.get("events")),
            int(eps),
            format!("{:.1}", o.rss as f64 / (1024.0 * 1024.0)),
            int(o.result.get("sim_threads")),
            int(o.result.get("par_domains")),
        ]);
    }
    t
}

/// Prints a run's tables and notes, mirrors tables to their CSV files
/// under `<root>/results/` and writes `<root>/BENCH_<name>.json`.
/// Returns the JSON path. `root = "."` is the CLI behavior ([`render`]);
/// tests and `shard merge` point it elsewhere.
pub fn render_into(
    run: &ScenarioRun,
    scale: Scale,
    batch_wall: Duration,
    root: &std::path::Path,
) -> std::io::Result<PathBuf> {
    println!(
        "=== {} — {} ({} cells) ===\n",
        run.scenario.name(),
        run.scenario.description(),
        run.outcomes.len()
    );
    let results_dir = root.join("results");
    for (table, csv) in run.report.tables() {
        table.print();
        if let Some(csv) = csv {
            table.to_csv(&results_dir.join(csv))?;
        }
    }
    for note in run.report.notes() {
        println!("{note}");
    }
    perf_table(run).to_csv(&results_dir.join(format!("{}_perf.csv", run.scenario.name())))?;
    let events = run.events_total();
    if events > 0 {
        println!(
            "perf: {} — {events} events in {:.1} ms serial cell time = {:.0} events/sec",
            run.scenario.name(),
            run.serial_cell_time().as_secs_f64() * 1e3,
            run.events_per_sec(),
        );
    }
    let path = root.join(format!("BENCH_{}.json", run.scenario.name()));
    run.to_json(scale, batch_wall).write_to(&path)?;
    println!("\nwrote {}\n", path.display());
    Ok(path)
}

/// [`render_into`] the current directory — what the CLI does.
pub fn render(run: &ScenarioRun, scale: Scale, batch_wall: Duration) -> std::io::Result<PathBuf> {
    render_into(run, scale, batch_wall, std::path::Path::new("."))
}

/// Prints the closing parallelism summary of an `execute` call.
pub fn print_stats(stats: &ExecStats) {
    let speedup = if stats.wall.as_secs_f64() > 0.0 {
        stats.serial.as_secs_f64() / stats.wall.as_secs_f64()
    } else {
        1.0
    };
    println!(
        "ran {} cells on {} threads: {:.2} s wall, {:.2} s total cell time ({speedup:.1}x)",
        stats.cells,
        stats.threads,
        stats.wall.as_secs_f64(),
        stats.serial.as_secs_f64(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CellResult, Grid, Report, Scale, Scenario};
    use occamy_stats::Table;

    struct Sleepy;

    impl Scenario for Sleepy {
        fn name(&self) -> &'static str {
            "sleepy"
        }
        fn description(&self) -> &'static str {
            "test scenario"
        }
        fn grid(&self, scale: Scale) -> Vec<CellSpec> {
            Grid::new("sleepy", scale).axis("i", 0u64..8).build()
        }
        fn run(&self, cell: &CellSpec) -> CellResult {
            std::thread::sleep(Duration::from_millis(15));
            CellResult::new().metric("i2", (cell.u64("i") * 2) as f64)
        }
        fn emit(&self, outcomes: &[CellOutcome]) -> Report {
            let mut t = Table::new("doubles", &["i", "i2"]);
            for o in outcomes {
                t.row(vec![o.spec.u64("i").to_string(), o.result.fmt("i2")]);
            }
            Report::new().table(t).note("done")
        }
    }

    #[test]
    fn execute_returns_grid_order_and_emits() {
        static S: Sleepy = Sleepy;
        let (runs, stats) = execute(&[&S], Scale::Smoke, true);
        assert_eq!(stats.cells, 8);
        let run = &runs[0];
        assert_eq!(run.outcomes.len(), 8);
        for (i, o) in run.outcomes.iter().enumerate() {
            assert_eq!(o.spec.index, i);
            assert_eq!(o.result.get("i2"), Some(i as f64 * 2.0));
        }
        assert_eq!(run.report.tables().len(), 1);
        assert_eq!(run.report.notes(), ["done".to_string()]);
    }

    #[test]
    fn parallel_beats_serial_cell_time() {
        // Sleep-bound cells overlap whenever the pool really runs
        // concurrently, even on a single-core host — so ask for a
        // multi-thread pool rather than skipping there. Upstream rayon
        // sizes its global pool once at first use and ignores later env
        // changes; if the request didn't take (vendor swap-back on a
        // 1-core host), skip rather than assert a speedup that can't
        // happen.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        if rayon::current_num_threads() < 2 {
            return;
        }
        static S: Sleepy = Sleepy;
        let (_, stats) = execute(&[&S, &S], Scale::Smoke, true);
        assert!(
            stats.wall < stats.serial,
            "parallel wall {:?} not below serial cell time {:?}",
            stats.wall,
            stats.serial
        );
    }

    #[test]
    fn bench_json_contains_cells_and_tables() {
        static S: Sleepy = Sleepy;
        let (runs, stats) = execute(&[&S], Scale::Smoke, false);
        let json = runs[0].to_json(Scale::Smoke, stats.wall).render();
        assert!(json.contains("\"scenario\":\"sleepy\""), "{json}");
        assert!(json.contains("\"i2\":14"), "{json}");
        assert!(json.contains("\"title\":\"doubles\""), "{json}");
        assert!(json.contains("\"seed\":"), "{json}");
    }
}
