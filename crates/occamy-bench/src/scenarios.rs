//! Scenario builders shared by the figure binaries.

use crate::report::{aggregate, IdealFct, RunResult};
use occamy_core::{BmKind, BmTuning};
use occamy_sim::topology::{
    leaf_spine, single_switch, BmSpec, LeafSpineCfg, SchedKind, SingleSwitchCfg,
};
use occamy_sim::{CcAlgo, FaultSchedule, FlowDesc, Ps, SimConfig, World, MS, US};
use occamy_traffic::{web_search, BackgroundWorkload, FlowSpec, QueryWorkload, TrafficClass};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Converts a traffic-generator [`FlowSpec`] into a simulator flow.
pub fn spec_to_flow(s: &FlowSpec, prio: u8, cc: CcAlgo, offset_ps: Ps) -> FlowDesc {
    FlowDesc {
        src: s.src,
        dst: s.dst,
        bytes: s.bytes,
        start_ps: s.start_ps + offset_ps,
        prio,
        cc,
        query: s.query,
        is_query: s.class == TrafficClass::Query,
    }
}

/// Background traffic running beside the queries.
#[derive(Debug, Clone)]
pub enum BgPattern {
    /// No background traffic.
    None,
    /// Poisson web-search flows at `load` of access capacity.
    WebSearch {
        /// Offered load fraction (1.2 = 120%).
        load: f64,
    },
    /// Repeated all-to-all rounds of fixed-size flows at `load`.
    AllToAll {
        /// Per-pair flow size.
        flow_bytes: u64,
        /// Offered load fraction.
        load: f64,
    },
    /// Repeated double-binary-tree all-reduce rounds at `load`.
    AllReduce {
        /// Per-edge flow size.
        flow_bytes: u64,
        /// Offered load fraction.
        load: f64,
    },
    /// Repeated permutation rounds (host `i` → host `(i+shift) mod n`)
    /// at `load` — the fully load-balanced ablation pattern.
    Permutation {
        /// Per-host flow size.
        flow_bytes: u64,
        /// Offered load fraction.
        load: f64,
        /// Destination shift (normalized so no host sends to itself).
        shift: usize,
    },
}

// -------------------------------------------------------------------
// DPDK-style single-switch testbed (paper §6.2, Figs. 13–16; §3.1 Fig. 6)
// -------------------------------------------------------------------

/// Background traffic on the testbed.
#[derive(Debug, Clone, Copy)]
pub struct TestbedBg {
    /// Offered load fraction of access capacity.
    pub load: f64,
    /// Congestion control of the background flows.
    pub cc: CcAlgo,
    /// Switch class carrying the background flows.
    pub class: u8,
}

/// The 8-host, 10 Gbps, 410 KB shared-buffer software-switch testbed.
#[derive(Debug, Clone)]
pub struct TestbedScenario {
    /// Buffer-management scheme.
    pub bm: BmKind,
    /// `α` per service class.
    pub alpha_per_class: Vec<f64>,
    /// Service classes per port.
    pub classes: usize,
    /// Port scheduler.
    pub sched: SchedKind,
    /// Host count (one per switch port).
    pub n_hosts: usize,
    /// Access-link rate.
    pub host_rate_bps: u64,
    /// Shared buffer in bytes (410 KB = 5.12 KB/port/Gbps × 8 × 10 G).
    pub buffer_bytes: u64,
    /// Total response bytes per query.
    pub query_bytes: u64,
    /// Servers per query.
    pub query_fanout: usize,
    /// Queries per second per client host.
    pub qps_per_host: f64,
    /// Class carrying query traffic.
    pub query_class: u8,
    /// Pin all queries to one client host (buffer-choking experiments);
    /// `None` = every host runs a client.
    pub query_client: Option<usize>,
    /// Redirect all background flows to one receiver host; `None` =
    /// uniformly random pairs.
    pub bg_dst: Option<usize>,
    /// Optional background traffic.
    pub bg: Option<TestbedBg>,
    /// Workload injection window.
    pub duration_ps: Ps,
    /// Extra time to let tails finish.
    pub drain_ps: Ps,
    /// RNG seed.
    pub seed: u64,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl TestbedScenario {
    /// The paper's §6.2 defaults: 8 hosts × 10 G, 410 KB buffer, ECN
    /// K = 65 packets, query fan-out across all other hosts, 1% query
    /// load, 50% web-search background, one class, FIFO.
    pub fn paper_dpdk(bm: BmKind, alpha: f64) -> Self {
        let query_bytes = 328_000; // 80% of buffer, Fig. 13's midpoint
        TestbedScenario {
            bm,
            alpha_per_class: vec![alpha],
            classes: 1,
            sched: SchedKind::Fifo,
            n_hosts: 8,
            host_rate_bps: 10_000_000_000,
            buffer_bytes: 410_000,
            query_bytes,
            query_fanout: 16,
            qps_per_host: 0.01 * 10e9 / (8.0 * query_bytes as f64),
            query_class: 0,
            query_client: None,
            bg_dst: None,
            bg: Some(TestbedBg {
                load: 0.5,
                cc: CcAlgo::Dctcp,
                class: 0,
            }),
            duration_ps: 400 * MS,
            drain_ps: 600 * MS,
            seed: 1,
            sim: SimConfig::default(),
        }
    }

    /// Recomputes the query rate for a 1%-load Poisson query process at
    /// the current query size.
    pub fn with_query_bytes(mut self, bytes: u64) -> Self {
        self.query_bytes = bytes;
        self.qps_per_host = 0.01 * self.host_rate_bps as f64 / (8.0 * bytes as f64);
        self
    }

    /// Ideal-FCT model for this topology.
    pub fn ideal(&self) -> IdealFct {
        IdealFct {
            base_rtt_ps: 4 * US, // 4 × 1 µs propagation through the switch
            bottleneck_bps: self.host_rate_bps,
            mss: self.sim.mss as u64,
        }
    }

    /// Builds the world without workload.
    pub fn build(&self) -> World {
        single_switch(SingleSwitchCfg {
            host_rates_bps: vec![self.host_rate_bps; self.n_hosts],
            prop_ps: US,
            buffer_bytes: self.buffer_bytes,
            classes: self.classes,
            bm: BmSpec::per_class(self.bm, self.alpha_per_class.clone()),
            sched: self.sched,
            sim: self.sim.clone(),
        })
    }

    /// Injects background and query traffic into `world`.
    pub fn inject(&self, world: &mut World) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        if let Some(bg) = self.bg {
            let wl =
                BackgroundWorkload::new(self.n_hosts, self.host_rate_bps, bg.load, web_search());
            for f in wl.generate(self.duration_ps, &mut rng) {
                world.add_flow(spec_to_flow(&f, bg.class, bg.cc, 0));
            }
        }
        let warmup = self.duration_ps / 10;
        let qw = QueryWorkload::new(
            self.n_hosts,
            self.query_fanout,
            self.query_bytes,
            self.qps_per_host,
        );
        for q in qw.generate(self.duration_ps - warmup, &mut rng) {
            for f in &q.responses {
                world.add_flow(spec_to_flow(f, self.query_class, CcAlgo::Dctcp, warmup));
            }
        }
    }

    /// Builds, injects, runs and aggregates.
    pub fn run(&self) -> RunResult {
        let (_, result) = self.run_world();
        result
    }

    /// Like [`TestbedScenario::run`] but also returns the world for raw
    /// metric access.
    pub fn run_world(&self) -> (World, RunResult) {
        let mut world = self.build();
        crate::apply_sim_threads(&mut world);
        self.inject(&mut world);
        world.run_to_completion(self.duration_ps + self.drain_ps);
        let flows = world.flow_records();
        let result = aggregate(
            &flows,
            self.ideal(),
            world.metrics.drops.total_losses(),
            world.metrics.events_processed,
        )
        .with_resilience(&world);
        (world, result)
    }
}

// -------------------------------------------------------------------
// Leaf-spine fabric (paper §6.4, Figs. 7, 17–23)
// -------------------------------------------------------------------

/// The large-scale leaf-spine scenario, dimension-scaled from the
/// paper's 128 × 100 G to 32 × 25 G (see `EXPERIMENTS.md`): all
/// *ratios* that drive the result — buffer per port per Gbps, ECN
/// threshold at 0.72 BDP, query size as a fraction of partition buffer,
/// loads — are preserved.
#[derive(Debug, Clone)]
pub struct LeafSpineScenario {
    /// Buffer-management scheme.
    pub bm: BmKind,
    /// DT/Occamy/ABM `α`.
    pub alpha: f64,
    /// Scheme-specific tuning (BShare delay target, DAMQ reserve
    /// split); the default reproduces each scheme's paper constants.
    pub tuning: BmTuning,
    /// Spine count.
    pub spines: usize,
    /// Leaf count.
    pub leaves: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Host access-link rate.
    pub link_rate_bps: u64,
    /// Leaf↔spine link rate (the paper's fabric is non-blocking:
    /// `paper_scaled` sets it equal to the host rate).
    pub fabric_rate_bps: u64,
    /// One-way propagation per link.
    pub link_prop_ps: Ps,
    /// Shared buffer per 8 ports.
    pub buffer_per_8ports: u64,
    /// Background traffic.
    pub bg: BgPattern,
    /// Total response bytes per query.
    pub query_bytes: u64,
    /// Incast fan-out per query.
    pub query_fanout: usize,
    /// Queries per second per client host.
    pub qps_per_host: f64,
    /// Workload injection window.
    pub duration_ps: Ps,
    /// Extra time to let tails finish.
    pub drain_ps: Ps,
    /// RNG seed.
    pub seed: u64,
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Deterministic fault schedule (times as fractions of
    /// `duration_ps`). Empty by default.
    pub faults: FaultSchedule,
}

impl LeafSpineScenario {
    /// Scaled §6.4 defaults: 4 spines × 4 leaves × 8 hosts at 25 Gbps,
    /// 1 MB per 8 ports (the same 5.12 KB/port/Gbps as Tomahawk), ECN
    /// K = 0.72 BDP = 180 KB, min RTO 5 ms, 80 µs base RTT, fan-out 16,
    /// 200 queries/s/host, query = 40% of partition buffer, web-search
    /// background at 90%.
    pub fn paper_scaled(bm: BmKind, alpha: f64) -> Self {
        LeafSpineScenario {
            bm,
            alpha,
            tuning: BmTuning::default(),
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 8,
            link_rate_bps: 25_000_000_000,
            fabric_rate_bps: 25_000_000_000,
            link_prop_ps: 10 * US,
            buffer_per_8ports: 1_000_000,
            bg: BgPattern::WebSearch { load: 0.9 },
            query_bytes: 400_000,
            query_fanout: 16,
            qps_per_host: 400.0,
            duration_ps: 15 * MS,
            drain_ps: 100 * MS,
            seed: 1,
            sim: SimConfig {
                ecn_k_bytes: 180_000,
                min_rto: 5 * MS,
                ..SimConfig::default()
            },
            faults: FaultSchedule::default(),
        }
    }

    /// Host count.
    pub fn n_hosts(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }

    /// Ideal-FCT model (80 µs base RTT, access-link bottleneck).
    pub fn ideal(&self) -> IdealFct {
        IdealFct {
            base_rtt_ps: 80 * US,
            bottleneck_bps: self.link_rate_bps,
            mss: self.sim.mss as u64,
        }
    }

    /// Builds the world without workload.
    pub fn build(&self) -> World {
        leaf_spine(LeafSpineCfg {
            spines: self.spines,
            leaves: self.leaves,
            hosts_per_leaf: self.hosts_per_leaf,
            host_rate_bps: self.link_rate_bps,
            fabric_rate_bps: self.fabric_rate_bps,
            link_prop_ps: self.link_prop_ps,
            buffer_per_8ports_bytes: self.buffer_per_8ports,
            classes: 1,
            bm: BmSpec {
                kind: self.bm,
                alpha_per_class: vec![self.alpha],
                tuning: self.tuning,
            },
            sched: SchedKind::Fifo,
            sim: self.sim.clone(),
        })
    }

    /// Injects background and query traffic.
    pub fn inject(&self, world: &mut World) {
        inject_fabric_workload(
            world,
            self.n_hosts(),
            self.link_rate_bps,
            &self.bg,
            self.query_bytes,
            self.query_fanout,
            self.qps_per_host,
            self.duration_ps,
            self.seed,
        );
    }

    /// Builds, injects, runs and aggregates.
    pub fn run(&self) -> RunResult {
        let (_, r) = self.run_world();
        r
    }

    /// Like [`LeafSpineScenario::run`] but also returns the world.
    pub fn run_world(&self) -> (World, RunResult) {
        let mut world = self.build();
        crate::apply_sim_threads(&mut world);
        self.inject(&mut world);
        self.faults.apply(&mut world, self.duration_ps);
        world.run_to_completion(self.duration_ps + self.drain_ps);
        let flows = world.flow_records();
        let result = aggregate(
            &flows,
            self.ideal(),
            world.metrics.drops.total_losses(),
            world.metrics.events_processed,
        )
        .with_resilience(&world);
        (world, result)
    }
}

/// Injects one fabric workload — a background pattern plus the incast
/// query process — into `world`. Shared by [`LeafSpineScenario`] and
/// [`crate::fabric::FabricScenario`] so a declarative spec run over a
/// fat-tree draws exactly the same flow sequence a hand-coded leaf-spine
/// figure would (byte-for-byte reproducibility across topologies).
///
/// RNG draw order is part of the contract: background flows first, then
/// queries over `[warmup, duration)` with `warmup = duration / 10`.
#[allow(clippy::too_many_arguments)]
pub fn inject_fabric_workload(
    world: &mut World,
    n: usize,
    link_rate_bps: u64,
    bg: &BgPattern,
    query_bytes: u64,
    query_fanout: usize,
    qps_per_host: f64,
    duration_ps: Ps,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    match bg {
        BgPattern::None => {}
        BgPattern::WebSearch { load } => {
            let wl = BackgroundWorkload::new(n, link_rate_bps, *load, web_search());
            for f in wl.generate(duration_ps, &mut rng) {
                world.add_flow(spec_to_flow(&f, 0, CcAlgo::Dctcp, 0));
            }
        }
        BgPattern::AllToAll { flow_bytes, load } => {
            // One round sends (n−1)·flow_bytes per host; pace rounds
            // so the offered per-host load matches `load`.
            let per_host = (n as u64 - 1) * flow_bytes;
            let interval = (per_host as f64 * 8.0 / (load * link_rate_bps as f64) * 1e12) as Ps;
            let mut t = 0;
            while t < duration_ps {
                for f in occamy_traffic::all_to_all(n, *flow_bytes, t) {
                    world.add_flow(spec_to_flow(&f, 0, CcAlgo::Dctcp, 0));
                }
                t += interval.max(1);
            }
        }
        BgPattern::AllReduce { flow_bytes, load } => {
            // Each round moves ≤ 2·flow_bytes up and down per rank
            // (two trees); the busiest host link carries ~4 flows.
            let dbt = occamy_traffic::DoubleBinaryTree::new(n);
            let per_host = 4 * flow_bytes;
            let interval = (per_host as f64 * 8.0 / (load * link_rate_bps as f64) * 1e12) as Ps;
            let bcast_off = (flow_bytes * 8).saturating_mul(1_000_000_000_000) / link_rate_bps;
            let mut t = 0;
            while t < duration_ps {
                for f in dbt.flows(*flow_bytes, t, bcast_off) {
                    world.add_flow(spec_to_flow(&f, 0, CcAlgo::Dctcp, 0));
                }
                t += interval.max(1);
            }
        }
        BgPattern::Permutation {
            flow_bytes,
            load,
            shift,
        } => {
            // One flow per host per round; normalize the shift so no
            // host maps onto itself.
            let shift = if shift % n == 0 { 1 } else { shift % n };
            let interval = (*flow_bytes as f64 * 8.0 / (load * link_rate_bps as f64) * 1e12) as Ps;
            let mut t = 0;
            while t < duration_ps {
                for f in occamy_traffic::permutation(n, shift, *flow_bytes, t) {
                    world.add_flow(spec_to_flow(&f, 0, CcAlgo::Dctcp, 0));
                }
                t += interval.max(1);
            }
        }
    }
    if qps_per_host > 0.0 {
        let warmup = duration_ps / 10;
        let qw = QueryWorkload::new(n, query_fanout, query_bytes, qps_per_host);
        for q in qw.generate(duration_ps - warmup, &mut rng) {
            for f in &q.responses {
                world.add_flow(spec_to_flow(f, 0, CcAlgo::Dctcp, warmup));
            }
        }
    }
}

// -------------------------------------------------------------------
// Tofino-style CBR testbed (paper §6.1, Figs. 3, 11, 12)
// -------------------------------------------------------------------

/// The P4/Tofino-style CBR micro-testbed of Figs. 3, 11 and 12: two
/// fast senders (100 G NICs), two 10 G receivers, one shared-buffer
/// switch — no transport, just constant-bit-rate sources, so queue
/// dynamics are exactly the paper's whiteboard model.
#[derive(Debug, Clone)]
pub struct CbrTestbed {
    /// Buffer-management scheme.
    pub bm: BmKind,
    /// DT/Occamy `α`.
    pub alpha: f64,
    /// Shared buffer in bytes (paper: 1.2 MB).
    pub buffer_bytes: u64,
    /// Sender NIC rate.
    pub fast_rate_bps: u64,
    /// Receiver link rate (the bottleneck).
    pub slow_rate_bps: u64,
    /// Simulation parameters.
    pub sim: SimConfig,
}

impl CbrTestbed {
    /// The paper's Tofino testbed constants: 100 G senders, 10 G
    /// receivers, 1.2 MB shared buffer.
    pub fn paper_p4(bm: BmKind, alpha: f64) -> Self {
        CbrTestbed {
            bm,
            alpha,
            buffer_bytes: 1_200_000,
            fast_rate_bps: 100_000_000_000,
            slow_rate_bps: 10_000_000_000,
            sim: SimConfig::default(),
        }
    }

    /// Builds the 4-host world: hosts 0/1 send, hosts 2/3 receive.
    pub fn build(&self) -> World {
        single_switch(SingleSwitchCfg {
            host_rates_bps: vec![
                self.fast_rate_bps,
                self.fast_rate_bps,
                self.slow_rate_bps,
                self.slow_rate_bps,
            ],
            prop_ps: US,
            buffer_bytes: self.buffer_bytes,
            classes: 1,
            bm: BmSpec::uniform(self.bm, self.alpha),
            sched: SchedKind::Fifo,
            sim: self.sim.clone(),
        })
    }
}

/// The four schemes of the paper's end-to-end comparison, with their
/// evaluated `α` values (§6.2): Occamy 8, ABM 2, DT 1, Pushout (no α).
pub fn evaluated_schemes() -> Vec<(BmKind, f64, &'static str)> {
    vec![
        (BmKind::Occamy, 8.0, "Occamy"),
        (BmKind::Abm, 2.0, "ABM"),
        (BmKind::Dt, 1.0, "DT"),
        (BmKind::Pushout, 1.0, "Pushout"),
    ]
}

/// The scheme names of [`evaluated_schemes`], in table-column order.
pub fn evaluated_scheme_names() -> Vec<&'static str> {
    evaluated_schemes().iter().map(|s| s.2).collect()
}

/// Resolves an evaluated scheme by its display name, returning the
/// `(kind, α)` pair the paper uses for it.
pub fn scheme_by_name(name: &str) -> Option<(BmKind, f64)> {
    evaluated_schemes()
        .into_iter()
        .find(|(_, _, n)| *n == name)
        .map(|(kind, alpha, _)| (kind, alpha))
}

/// Resolves any buffer-management kind by display name (superset of
/// [`scheme_by_name`], for scenarios that sweep `α` themselves).
pub fn bm_kind_by_name(name: &str) -> Option<BmKind> {
    Some(match name {
        "Occamy" => BmKind::Occamy,
        "OccamyLongest" => BmKind::OccamyLongest,
        "DT" => BmKind::Dt,
        "ABM" => BmKind::Abm,
        "Pushout" => BmKind::Pushout,
        "Static" => BmKind::Static,
        "CompleteSharing" => BmKind::CompleteSharing,
        "BShare" => BmKind::BShare,
        "DAMQ" => BmKind::Damq,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_defaults_match_paper() {
        let s = TestbedScenario::paper_dpdk(BmKind::Dt, 1.0);
        assert_eq!(s.n_hosts, 8);
        assert_eq!(s.buffer_bytes, 410_000);
        // 1% query load: qps × query_bytes × 8 / rate ≈ 0.01 per host.
        let load = s.qps_per_host * s.query_bytes as f64 * 8.0 / s.host_rate_bps as f64;
        assert!((load - 0.01).abs() < 1e-6, "query load {load}");
    }

    #[test]
    fn with_query_bytes_rescales_rate() {
        let s = TestbedScenario::paper_dpdk(BmKind::Dt, 1.0).with_query_bytes(82_000);
        let load = s.qps_per_host * 82_000.0 * 8.0 / 10e9;
        assert!((load - 0.01).abs() < 1e-6);
    }

    #[test]
    fn leaf_spine_scaled_preserves_ratios() {
        let s = LeafSpineScenario::paper_scaled(BmKind::Occamy, 8.0);
        // 5.12 KB per port per Gbps, same as the paper's Tomahawk model.
        let per_port_per_gbps = s.buffer_per_8ports as f64 / 8.0 / (s.link_rate_bps as f64 / 1e9);
        assert!((per_port_per_gbps - 5_000.0).abs() < 150.0);
        // ECN K = 0.72 BDP.
        let bdp = s.link_rate_bps as f64 * 80e-6 / 8.0;
        assert!((s.sim.ecn_k_bytes as f64 / bdp - 0.72).abs() < 0.01);
        assert_eq!(s.n_hosts(), 32);
    }

    #[test]
    fn evaluated_schemes_match_paper() {
        let s = evaluated_schemes();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].1, 8.0);
        assert_eq!(s[1].1, 2.0);
    }

    #[test]
    fn scheme_lookup_roundtrips() {
        for (kind, alpha, name) in evaluated_schemes() {
            assert_eq!(scheme_by_name(name), Some((kind, alpha)));
            assert_eq!(bm_kind_by_name(name), Some(kind));
        }
        assert_eq!(scheme_by_name("OccamyLongest"), None);
        assert_eq!(
            bm_kind_by_name("OccamyLongest"),
            Some(BmKind::OccamyLongest)
        );
        assert_eq!(bm_kind_by_name("nope"), None);
    }

    #[test]
    fn cbr_testbed_matches_paper_constants() {
        let tb = CbrTestbed::paper_p4(BmKind::Occamy, 4.0);
        assert_eq!(tb.buffer_bytes, 1_200_000);
        let w = tb.build();
        assert_eq!(w.hosts.len(), 4);
    }

    #[test]
    fn tiny_testbed_run_is_sane() {
        // A heavily shortened run must produce finished queries and a
        // deterministic result.
        let mut s = TestbedScenario::paper_dpdk(BmKind::Dt, 1.0).with_query_bytes(82_000);
        s.duration_ps = 30 * MS;
        s.drain_ps = 200 * MS;
        s.bg = Some(TestbedBg {
            load: 0.3,
            cc: CcAlgo::Dctcp,
            class: 0,
        });
        s.qps_per_host *= 20.0; // more queries in the short window
        let r1 = s.run();
        assert!(!r1.qct_ms.is_empty(), "no queries finished");
        let r2 = s.run();
        assert_eq!(r1.qct_ms.mean(), r2.qct_ms.mean(), "non-deterministic");
    }
}
