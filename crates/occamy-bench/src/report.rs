//! Result aggregation shared by the scenario modules.

use crate::scenario::{CellResult, Series};
use occamy_sim::{tx_time_ps, Ps, World};
use occamy_stats::{FlowClass, FlowSet, Json, Summary, SMALL_FLOW_BYTES};

/// Ideal (contention-free) FCT model: one base RTT plus serialization of
/// the payload (with per-MSS header overhead) at `bottleneck_bps`.
#[derive(Debug, Clone, Copy)]
pub struct IdealFct {
    /// Base round-trip time of the path.
    pub base_rtt_ps: Ps,
    /// Bottleneck (access link) rate.
    pub bottleneck_bps: u64,
    /// MSS for header-overhead accounting.
    pub mss: u64,
}

impl IdealFct {
    /// Ideal FCT for a `bytes`-byte transfer.
    pub fn fct_ps(&self, bytes: u64) -> Ps {
        let pkts = bytes.div_ceil(self.mss).max(1);
        let wire = bytes + pkts * 40;
        self.base_rtt_ps + tx_time_ps(wire, self.bottleneck_bps)
    }
}

/// Transport-level resilience of one run: retransmission/RTO counters
/// (meaningful fault-free too — congestion loss alone triggers them)
/// plus the fault-injection tallies and recovery-time distribution.
/// All of it is deterministic simulated state, so unlike the
/// parallelism trajectory none of these fields are gated behind
/// [`crate::freeze_perf`].
#[derive(Debug, Default)]
pub struct Resilience {
    /// Segments retransmitted (TLP probes and RTO go-back-N resends).
    pub retransmissions: u64,
    /// Full retransmission-timeout firings.
    pub rto_fires: u64,
    /// Scheduled fault events executed.
    pub faults_fired: u64,
    /// Packets dropped because of a fault (flushed on link-down,
    /// refused by a draining switch, addressed to a departed host).
    pub fault_drops: u64,
    /// Flows still killed (host left, never rejoined) at run end.
    pub flows_killed: u64,
    /// Interrupted flows (full RTO or host-leave kill) that still
    /// completed.
    pub flows_recovered: u64,
    /// First-interruption-to-completion times of recovered flows,
    /// milliseconds.
    pub recovery_ms: Summary,
}

impl Resilience {
    /// Collects the resilience counters of a finished world.
    pub fn from_world(world: &World) -> Self {
        let c = world.resilience();
        Resilience {
            retransmissions: c.retransmissions,
            rto_fires: c.rto_fires,
            faults_fired: c.faults_fired,
            fault_drops: c.fault_drops,
            flows_killed: c.flows_killed,
            flows_recovered: c.flows_recovered,
            recovery_ms: Summary::from_samples(
                c.recovery_times_ps
                    .iter()
                    .map(|&ps| ps as f64 / 1e9)
                    .collect(),
            ),
        }
    }
}

/// Aggregated metrics of one simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// QCT of finished queries, milliseconds.
    pub qct_ms: Summary,
    /// QCT slowdown versus the ideal aggregate transfer.
    pub qct_slowdown: Summary,
    /// Background FCT, milliseconds (all finished background flows).
    pub bg_fct_ms: Summary,
    /// Background FCT slowdown.
    pub bg_slowdown: Summary,
    /// Background FCT slowdown of small flows (< 100 KB).
    pub small_bg_slowdown: Summary,
    /// Background FCT of small flows, milliseconds.
    pub small_bg_fct_ms: Summary,
    /// Total packet losses (tail + head drops + evictions).
    pub losses: u64,
    /// Flows not finished when the run ended.
    pub unfinished: usize,
    /// Simulator events executed producing this result (the numerator of
    /// the events/sec throughput the runner records per cell).
    pub events: u64,
    /// Retransmission and fault-recovery tallies.
    pub resilience: Resilience,
}

impl RunResult {
    /// Replaces the default (empty) resilience tallies with those of the
    /// finished world the flow records came from.
    pub fn with_resilience(mut self, world: &World) -> Self {
        self.resilience = Resilience::from_world(world);
        self
    }
    /// Flattens the headline statistics into scenario-cell metrics.
    /// Statistics without samples are omitted (they format as `-`).
    pub fn into_cell(mut self) -> CellResult {
        CellResult::new()
            .metric("queries", self.qct_ms.len() as f64)
            .metric_opt("qct_avg_ms", self.qct_ms.mean())
            .metric_opt("qct_p99_ms", self.qct_ms.p99())
            .metric_opt("qct_slowdown_avg", self.qct_slowdown.mean())
            .metric_opt("qct_slowdown_p99", self.qct_slowdown.p99())
            .metric_opt("bg_fct_avg_ms", self.bg_fct_ms.mean())
            .metric_opt("bg_slowdown_avg", self.bg_slowdown.mean())
            .metric_opt("bg_slowdown_p99", self.bg_slowdown.p99())
            .metric_opt("small_bg_fct_p99_ms", self.small_bg_fct_ms.p99())
            .metric_opt("small_bg_slowdown_p99", self.small_bg_slowdown.p99())
            .metric("losses", self.losses as f64)
            .metric("unfinished", self.unfinished as f64)
            .metric("events", self.events as f64)
            .metric("retransmissions", self.resilience.retransmissions as f64)
            .metric("rto_fires", self.resilience.rto_fires as f64)
            .metric("faults_fired", self.resilience.faults_fired as f64)
            .metric("fault_drops", self.resilience.fault_drops as f64)
            .metric("flows_killed", self.resilience.flows_killed as f64)
            .metric("flows_recovered", self.resilience.flows_recovered as f64)
            .metric_opt("recovery_ms_avg", self.resilience.recovery_ms.mean())
            .metric_opt("recovery_ms_p99", self.resilience.recovery_ms.p99())
    }

    /// Serializes every distribution summary plus the counters.
    /// `&mut self` for the same reason as [`Summary::to_json`]: the
    /// percentile sorts happen in place instead of on copies.
    pub fn to_json(&mut self) -> Json {
        Json::obj([
            ("qct_ms", self.qct_ms.to_json()),
            ("qct_slowdown", self.qct_slowdown.to_json()),
            ("bg_fct_ms", self.bg_fct_ms.to_json()),
            ("bg_slowdown", self.bg_slowdown.to_json()),
            ("small_bg_fct_ms", self.small_bg_fct_ms.to_json()),
            ("small_bg_slowdown", self.small_bg_slowdown.to_json()),
            ("losses", Json::from(self.losses)),
            ("unfinished", Json::from(self.unfinished)),
            ("events", Json::from(self.events)),
            (
                "retransmissions",
                Json::from(self.resilience.retransmissions),
            ),
            ("rto_fires", Json::from(self.resilience.rto_fires)),
            ("faults_fired", Json::from(self.resilience.faults_fired)),
            ("fault_drops", Json::from(self.resilience.fault_drops)),
            ("flows_killed", Json::from(self.resilience.flows_killed)),
            (
                "flows_recovered",
                Json::from(self.resilience.flows_recovered),
            ),
            ("recovery_ms", self.resilience.recovery_ms.to_json()),
        ])
    }
}

/// Attaches the intra-run parallelism trajectory of a finished world to
/// a cell result: effective thread count, worker count, domain count,
/// synchronization windows and a per-domain event-count series (they
/// land in `BENCH_<name>.json` and the `threads`/`domains` columns of
/// `results/<name>_perf.csv`). Pure observability: under
/// [`crate::freeze_perf`] nothing is added — a serial run records none
/// of these either, which is what keeps frozen artifacts byte-identical
/// across every `--threads` value.
pub fn with_par_metrics(cell: CellResult, world: &World) -> CellResult {
    if crate::freeze_perf() {
        return cell;
    }
    let Some(stats) = &world.par_stats else {
        return cell;
    };
    let mut s = Series::new("domain_events", &["domain", "events"]);
    for (d, &n) in stats.domain_events.iter().enumerate() {
        s.row(vec![d as f64, n as f64]);
    }
    cell.metric("sim_threads", world.cfg.threads as f64)
        .metric("par_workers", stats.workers as f64)
        .metric("par_domains", stats.domain_events.len() as f64)
        .metric("par_windows", stats.windows as f64)
        .with_series(s)
}

/// Builds a [`RunResult`] from the flow records of a finished run,
/// recording how many simulator events produced it (from
/// [`occamy_sim::Metrics::events_processed`]).
pub fn aggregate(flows: &FlowSet, ideal: IdealFct, losses: u64, events: u64) -> RunResult {
    let bg = |r: &occamy_stats::FlowRecord| r.class == FlowClass::Background;
    let small_bg = |r: &occamy_stats::FlowRecord| {
        r.class == FlowClass::Background && r.bytes < SMALL_FLOW_BYTES
    };
    RunResult {
        qct_ms: flows.qct_ms(),
        qct_slowdown: flows.qct_slowdown(|b| ideal.fct_ps(b)),
        bg_fct_ms: flows.fct_ms(bg),
        bg_slowdown: flows.slowdown(bg, |b| ideal.fct_ps(b)),
        small_bg_slowdown: flows.slowdown(small_bg, |b| ideal.fct_ps(b)),
        small_bg_fct_ms: flows.fct_ms(small_bg),
        losses,
        unfinished: flows.unfinished(),
        events,
        resilience: Resilience::default(),
    }
}

/// Formats an optional statistic with 3 significant decimals.
pub fn fmt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occamy_stats::FlowRecord;

    #[test]
    fn ideal_fct_includes_rtt_and_overhead() {
        let m = IdealFct {
            base_rtt_ps: 80_000_000, // 80 µs
            bottleneck_bps: 100_000_000_000,
            mss: 1_460,
        };
        // 1 MB: 685 packets ⇒ wire ≈ 1 027 400 B ⇒ ~82.2 µs at 100 G.
        let ideal = m.fct_ps(1_000_000);
        assert!(ideal > 80_000_000 + 80_000_000);
        assert!(ideal < 80_000_000 + 90_000_000);
    }

    #[test]
    fn aggregate_slices_small_background() {
        let mut fs = FlowSet::new();
        fs.push(FlowRecord {
            id: 0,
            bytes: 50_000,
            start_ps: 0,
            end_ps: Some(1_000_000_000),
            class: FlowClass::Background,
            query: None,
        });
        fs.push(FlowRecord {
            id: 1,
            bytes: 5_000_000,
            start_ps: 0,
            end_ps: Some(9_000_000_000),
            class: FlowClass::Background,
            query: None,
        });
        let ideal = IdealFct {
            base_rtt_ps: 1,
            bottleneck_bps: 10_000_000_000,
            mss: 1_460,
        };
        let r = aggregate(&fs, ideal, 3, 0);
        assert_eq!(r.bg_fct_ms.len(), 2);
        assert_eq!(r.small_bg_fct_ms.len(), 1);
        assert_eq!(r.losses, 3);
        assert_eq!(r.unfinished, 0);
        assert!(r.qct_ms.is_empty());
    }

    #[test]
    fn fmt_handles_missing() {
        assert_eq!(fmt(None), "-");
        assert_eq!(fmt(Some(1.23456)), "1.235");
    }

    #[test]
    fn run_result_flattens_into_cell() {
        let mut fs = FlowSet::new();
        fs.push(FlowRecord {
            id: 0,
            bytes: 50_000,
            start_ps: 0,
            end_ps: Some(1_000_000_000),
            class: FlowClass::Background,
            query: None,
        });
        let ideal = IdealFct {
            base_rtt_ps: 1,
            bottleneck_bps: 10_000_000_000,
            mss: 1_460,
        };
        let mut r = aggregate(&fs, ideal, 2, 0);
        let json = r.to_json().render();
        assert!(json.contains("\"losses\":2"), "{json}");
        assert!(json.contains("\"bg_fct_ms\""), "{json}");
        let cell = r.into_cell();
        assert_eq!(cell.get("losses"), Some(2.0));
        assert_eq!(cell.get("queries"), Some(0.0));
        assert!(
            cell.get("qct_avg_ms").is_none(),
            "empty stat must be omitted"
        );
        assert!(cell.get("bg_fct_avg_ms").is_some());
    }
}
