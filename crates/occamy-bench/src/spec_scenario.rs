//! The back half of the declarative-spec pipeline: compiles a validated
//! [`occamy_spec::SpecDoc`] into the existing [`Grid`]/[`CellSpec`]
//! machinery, so `occamy-bench run --spec sweeps.toml` runs on the same
//! parallel runner — with the same deterministic per-cell seeds and the
//! same `BENCH_<name>.json` + `results/*.csv` sinks — as the hand-coded
//! registry scenarios.
//!
//! Cell seeds derive from the spec's `seed_key` (default: its name)
//! through the exact derivation `Grid` uses, and the per-cell run path
//! goes through [`FabricScenario`], whose leaf-spine arm delegates to
//! the same `LeafSpineScenario` the figures use. Consequence: a spec
//! whose `seed_key`, axes and knobs recreate a registry scenario's grid
//! reproduces that scenario's tables **bit for bit** (pinned by
//! `tests/spec_scenarios.rs`).

use crate::fabric::{scale_fabric, FabricScenario, FabricTopo};
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use crate::scenarios::{bm_kind_by_name, BgPattern};
use occamy_core::{BmKind, BmTuning};
use occamy_sim::{Drain, FaultSchedule, HostChurn, LinkFlap, Ps, SimConfig, XpSched, MS, US};
use occamy_spec::{
    AxisSpec, Background, FaultClause, Num, QuerySize, SpecDoc, SwitchArch, TableKind,
    TopologyKind, XpSchedSpec,
};

/// A registry-compatible scenario compiled from a spec document.
///
/// Instances are created once per process and leaked (`&'static`), which
/// is what the runner's `&'static dyn Scenario` job list wants; specs
/// are small, so the leak is a few hundred bytes per loaded file.
#[derive(Debug)]
pub struct SpecScenario {
    doc: SpecDoc,
    name: &'static str,
    description: &'static str,
    seed_key: &'static str,
}

impl SpecScenario {
    /// Wraps a validated document (leaking it into `'static`).
    pub fn new(doc: SpecDoc) -> &'static SpecScenario {
        let name: &'static str = Box::leak(doc.name.clone().into_boxed_str());
        let description: &'static str = Box::leak(
            if doc.description.is_empty() {
                format!("spec-driven scenario '{}'", doc.name)
            } else {
                doc.description.clone()
            }
            .into_boxed_str(),
        );
        let seed_key: &'static str = Box::leak(doc.seed_key.clone().into_boxed_str());
        Box::leak(Box::new(SpecScenario {
            doc,
            name,
            description,
            seed_key,
        }))
    }

    /// Loads, parses and validates a `.toml` / `.json` spec file.
    pub fn load(path: &str) -> Result<&'static SpecScenario, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc =
            occamy_spec::spec_from_file_text(path, &text).map_err(|e| format!("{path}: {e}"))?;
        // Semantic checks the pure data model can't make: axis values
        // must keep the scenario buildable at every grid cell.
        for axis in &doc.grid {
            for v in axis
                .full
                .iter()
                .chain(axis.quick.iter())
                .chain(axis.smoke.iter())
            {
                let f = v.as_f64();
                // Inverted comparisons so NaN axis values are rejected
                // rather than slipping past a `<` check.
                let ok = f.is_finite()
                    && match axis.knob.as_str() {
                        "oversubscription" | "duration_ms" | "query_fanout" | "bg_flow_kb" => {
                            f >= 1.0
                        }
                        // Must stay a positive delay after µs → ns.
                        "bshare_delay_us" => f >= 0.001,
                        // Permille split must keep both halves non-empty.
                        "damq_reserve_frac" => (0.001..=0.999).contains(&f),
                        _ => f >= 0.0,
                    };
                if !ok {
                    return Err(format!(
                        "{path}: [grid] {}: value {f} is out of range",
                        axis.knob
                    ));
                }
            }
        }
        Ok(Self::new(doc))
    }

    /// The underlying document.
    pub fn doc(&self) -> &SpecDoc {
        &self.doc
    }

    /// Canonical TOML of the document (`SpecDoc::to_toml`) — what
    /// `shard plan` embeds so a shard file is self-contained: the
    /// machine running `shard run` needs neither the original spec file
    /// nor its path, only the plan.
    pub fn canonical_toml(&self) -> String {
        self.doc.to_toml()
    }

    /// The base scenario (before grid-axis overrides) for `scheme`.
    fn base_scenario(&self, scheme: &str) -> FabricScenario {
        let t = &self.doc.topology;
        let topo = match t.kind {
            TopologyKind::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => FabricTopo::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            },
            TopologyKind::FatTree { k } => FabricTopo::FatTree { k },
            TopologyKind::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
            } => FabricTopo::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
            },
        };
        // The pseudo-scheme "Crosspoint" (or `[topology] switch_arch =
        // "crosspoint"`) swaps the switch architecture: crosspoint cells
        // get statically partitioned per-(input, output) buffers, so the
        // buffer manager is irrelevant (CompleteSharing over partitions
        // that stay empty).
        let crosspoint = if scheme == "Crosspoint" || t.switch_arch == SwitchArch::Crosspoint {
            Some(match t.xp_sched {
                XpSchedSpec::RoundRobin => XpSched::RoundRobin,
                XpSchedSpec::Longest => XpSched::Longest,
            })
        } else {
            None
        };
        let bm = if scheme == "Crosspoint" {
            BmKind::CompleteSharing
        } else {
            bm_kind_by_name(scheme)
                .unwrap_or_else(|| unreachable!("spec validation admits only known schemes"))
        };
        let tr = &self.doc.traffic;
        let buffer_per_8ports = t.buffer_per_8ports_kb * 1_000;
        let flow_bytes = tr.bg_flow_kb * 1_000;
        let bg = match tr.background {
            Background::None => BgPattern::None,
            Background::WebSearch => BgPattern::WebSearch { load: tr.bg_load },
            Background::AllToAll => BgPattern::AllToAll {
                flow_bytes,
                load: tr.bg_load,
            },
            Background::Allreduce => BgPattern::AllReduce {
                flow_bytes,
                load: tr.bg_load,
            },
            Background::Permutation => BgPattern::Permutation {
                flow_bytes,
                load: tr.bg_load,
                shift: tr.perm_shift as usize,
            },
        };
        let query_bytes = match tr.query {
            QuerySize::Bytes(b) => b,
            // Integer arithmetic, exactly like the figures' `buffer *
            // pct / 100` — keeps spec runs bit-identical to them.
            QuerySize::PctBuffer(pct) => buffer_per_8ports * pct / 100,
        };
        let mut faults = FaultSchedule::default();
        for f in &self.doc.faults {
            match *f {
                FaultClause::LinkFlap {
                    switch,
                    port,
                    down,
                    up,
                } => faults.link_flaps.push(LinkFlap {
                    switch: switch as u32,
                    port: port as u16,
                    down,
                    up,
                }),
                FaultClause::Drain { switch, start, end } => faults.drains.push(Drain {
                    switch: switch as u32,
                    start,
                    end,
                }),
                FaultClause::HostChurn { host, leave, join } => {
                    faults.host_churns.push(HostChurn {
                        host: host as u32,
                        leave,
                        join,
                    })
                }
            }
        }
        let s = &self.doc.sim;
        FabricScenario {
            topo,
            bm,
            alpha: self.doc.schemes.alpha_for(scheme),
            tuning: BmTuning::default(),
            host_rate_bps: gbps(t.host_rate_gbps),
            fabric_rate_bps: gbps(t.fabric_rate_gbps),
            oversubscription: t.oversubscription,
            link_prop_ps: (t.link_prop_us * US as f64).round() as Ps,
            buffer_per_8ports,
            bg,
            query_bytes,
            query_fanout: tr.query_fanout as usize,
            qps_per_host: tr.qps_per_host,
            duration_ps: tr.duration_ms * MS,
            drain_ps: tr.drain_ms * MS,
            seed: 0,
            sim: SimConfig {
                ecn_k_bytes: s.ecn_k_bytes,
                min_rto: s.min_rto_ms * MS,
                mss: s.mss as u32,
                expel_rate_factor: s.expel_rate_factor,
                threads: (s.threads as usize).max(1),
                ..SimConfig::default()
            },
            faults,
            crosspoint,
        }
    }
}

fn gbps(rate: f64) -> u64 {
    (rate * 1e9).round() as u64
}

/// Applies one grid-axis value onto the scenario. The knob list mirrors
/// `occamy_spec::KNOBS`; unknown knobs are unreachable past validation.
fn apply_knob(sc: &mut FabricScenario, knob: &str, value: &Value) {
    let as_f64 = |v: &Value| match v {
        Value::U64(x) => *x as f64,
        Value::F64(x) => *x,
        Value::Str(s) => panic!("axis '{knob}' got non-numeric value '{s}'"),
    };
    let as_u64 = |v: &Value| match v {
        Value::U64(x) => *x,
        Value::F64(x) => x.round() as u64,
        Value::Str(s) => panic!("axis '{knob}' got non-numeric value '{s}'"),
    };
    match knob {
        "bg_load" => {
            let load = match &mut sc.bg {
                BgPattern::None => return,
                BgPattern::WebSearch { load } => load,
                BgPattern::AllToAll { load, .. } => load,
                BgPattern::AllReduce { load, .. } => load,
                BgPattern::Permutation { load, .. } => load,
            };
            *load = as_f64(value);
        }
        "bg_flow_kb" => {
            let bytes = as_u64(value) * 1_000;
            match &mut sc.bg {
                BgPattern::AllToAll { flow_bytes, .. }
                | BgPattern::AllReduce { flow_bytes, .. }
                | BgPattern::Permutation { flow_bytes, .. } => *flow_bytes = bytes,
                _ => {}
            }
        }
        "perm_shift" => {
            if let BgPattern::Permutation { shift, .. } = &mut sc.bg {
                *shift = as_u64(value) as usize;
            }
        }
        "query_pct_buffer" => match value {
            Value::U64(pct) => sc.query_bytes = sc.buffer_per_8ports * pct / 100,
            _ => sc.query_bytes = (sc.buffer_per_8ports as f64 * as_f64(value) / 100.0) as u64,
        },
        "query_bytes" => sc.query_bytes = as_u64(value),
        "query_fanout" => sc.query_fanout = as_u64(value) as usize,
        "qps_per_host" => sc.qps_per_host = as_f64(value),
        "oversubscription" => sc.oversubscription = as_f64(value),
        "duration_ms" => sc.duration_ps = as_u64(value) * MS,
        "alpha" => sc.alpha = as_f64(value),
        "bshare_delay_us" => sc.tuning.bshare_delay_ns = (as_f64(value) * 1000.0).round() as u64,
        "damq_reserve_frac" => {
            sc.tuning.damq_reserve_permille = (as_f64(value) * 1000.0).round() as u32
        }
        other => unreachable!("spec validation admits only known knobs, got '{other}'"),
    }
}

fn axis_values(axis: &AxisSpec, scale: Scale) -> Vec<Value> {
    let nums = match scale {
        Scale::Full => &axis.full,
        Scale::Quick => &axis.quick,
        Scale::Smoke => &axis.smoke,
    };
    nums.iter()
        .map(|n| match *n {
            Num::Int(v) => Value::U64(v),
            Num::Float(v) => Value::F64(v),
        })
        .collect()
}

impl Scenario for SpecScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn telemetry_every(&self) -> Option<u64> {
        // A spec's `[telemetry] every_events` overrides the runner-wide
        // snapshot cadence for this scenario's cells (0 = no override).
        (self.doc.telemetry.every_events > 0).then_some(self.doc.telemetry.every_events)
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let mut g = Grid::new(self.seed_key, scale);
        for axis in &self.doc.grid {
            g = g.axis(&axis.knob, axis_values(axis, scale));
        }
        g = g.axis(
            "scheme",
            self.doc.schemes.schemes.iter().map(|s| s.as_str()),
        );
        g.build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let mut sc = self.base_scenario(cell.str("scheme"));
        for axis in &self.doc.grid {
            apply_knob(
                &mut sc,
                &axis.knob,
                cell.get(&axis.knob).expect("axis value present in cell"),
            );
        }
        sc.seed = cell.seed;
        scale_fabric(&mut sc, cell.scale);
        let (world, result) = sc.run_world();
        crate::report::with_par_metrics(result.into_cell(), &world)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        if self.doc.emit.is_empty() {
            // Default report: the two headline matrices (QCT and
            // background-FCT slowdown) over the first declared axis.
            if let Some(first) = self.doc.grid.first() {
                for metric in ["qct_slowdown_avg", "bg_slowdown_avg"] {
                    report = self.emit_sliced(
                        report,
                        outcomes,
                        &format!("{}: {metric}", self.name),
                        &first.knob,
                        "scheme",
                        metric,
                        Some(&format!("{}_{metric}.csv", self.name)),
                    );
                }
            } else {
                // Scheme-only grid: one row per scheme, headline columns.
                let t = ranking_table(&format!("{}: headline metrics", self.name), outcomes);
                report = report.table_csv(t, &format!("{}.csv", self.name));
            }
        } else {
            for ts in &self.doc.emit {
                report = match ts.kind {
                    TableKind::Ranking => {
                        self.emit_ranking(report, outcomes, &ts.title, ts.csv.as_deref())
                    }
                    TableKind::Matrix => self.emit_sliced(
                        report,
                        outcomes,
                        &ts.title,
                        &ts.rows,
                        &ts.cols,
                        &ts.metric,
                        ts.csv.as_deref(),
                    ),
                };
            }
        }
        report
    }
}

/// The per-scheme headline table: one row per scheme (in sweep order),
/// the headline-metric columns — the default report of a grid-less spec
/// and the body of every `kind = "ranking"` emit table.
fn ranking_table(title: &str, outcomes: &[CellOutcome]) -> occamy_stats::Table {
    let metrics = [
        "qct_avg_ms",
        "qct_slowdown_avg",
        "qct_slowdown_p99",
        "bg_slowdown_avg",
        "losses",
    ];
    let mut cols = vec!["scheme"];
    cols.extend(metrics);
    let mut t = occamy_stats::Table::new(title, &cols);
    for o in outcomes {
        let mut row = vec![o.spec.str("scheme").to_string()];
        row.extend(metrics.iter().map(|m| o.result.fmt(m)));
        t.row(row);
    }
    t
}

impl SpecScenario {
    /// Emits one rows × cols matrix per *slice* of the remaining grid
    /// axes. A 2-D table can only show two of the grid's dimensions;
    /// any other axis (including the implicit scheme axis) would
    /// otherwise silently collapse to its first value inside
    /// [`matrix_table`]'s first-match lookup — so instead every
    /// residual-axis combination gets its own table, suffixed with the
    /// fixed values (`… [bg_load=0.9]`), and no cell's result is
    /// dropped from the report.
    /// Emits one ranking table per combination of the grid axes (scheme
    /// excluded — it's the table's rows). When the grid collapses to a
    /// single combination (smoke/quick scales typically pin tuning
    /// knobs to one value), the title and CSV name stay unsuffixed, so
    /// the headline `results/<name>.csv` a grid-less spec would produce
    /// survives the addition of tuning axes byte-compatibly.
    fn emit_ranking(
        &self,
        mut report: Report,
        outcomes: &[CellOutcome],
        title: &str,
        csv: Option<&str>,
    ) -> Report {
        let residual: Vec<&str> = self.doc.grid.iter().map(|a| a.knob.as_str()).collect();
        let mut combos: Vec<Vec<(&str, Value)>> = Vec::new();
        for o in outcomes {
            let combo: Vec<(&str, Value)> = residual
                .iter()
                .map(|k| (*k, o.spec.get(k).expect("axis value present").clone()))
                .collect();
            if !combos.contains(&combo) {
                combos.push(combo);
            }
        }
        let single = combos.len() <= 1;
        for combo in &combos {
            let slice: Vec<CellOutcome> = outcomes
                .iter()
                .filter(|o| combo.iter().all(|(k, v)| o.spec.get(k) == Some(v)))
                .cloned()
                .collect();
            let suffix = combo
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let full_title = if single || suffix.is_empty() {
                title.to_string()
            } else {
                format!("{title} [{suffix}]")
            };
            let table = ranking_table(&full_title, &slice);
            report = match csv {
                Some(csv) if single || suffix.is_empty() => report.table_csv(table, csv),
                Some(csv) => {
                    let tag: String = suffix
                        .chars()
                        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                        .collect();
                    let csv = match csv.strip_suffix(".csv") {
                        Some(stem) => format!("{stem}_{tag}.csv"),
                        None => format!("{csv}_{tag}"),
                    };
                    report.table_csv(table, &csv)
                }
                None => report.table(table),
            };
        }
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_sliced(
        &self,
        mut report: Report,
        outcomes: &[CellOutcome],
        title: &str,
        rows: &str,
        cols: &str,
        metric: &str,
        csv: Option<&str>,
    ) -> Report {
        let mut residual: Vec<&str> = self
            .doc
            .grid
            .iter()
            .map(|a| a.knob.as_str())
            .filter(|k| *k != rows && *k != cols)
            .collect();
        if rows != "scheme" && cols != "scheme" {
            residual.push("scheme");
        }
        // Distinct residual-value combinations, in grid order.
        let mut combos: Vec<Vec<(&str, Value)>> = Vec::new();
        for o in outcomes {
            let combo: Vec<(&str, Value)> = residual
                .iter()
                .map(|k| (*k, o.spec.get(k).expect("axis value present").clone()))
                .collect();
            if !combos.contains(&combo) {
                combos.push(combo);
            }
        }
        for combo in &combos {
            let slice: Vec<CellOutcome> = outcomes
                .iter()
                .filter(|o| combo.iter().all(|(k, v)| o.spec.get(k) == Some(v)))
                .cloned()
                .collect();
            let suffix = combo
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let full_title = if suffix.is_empty() {
                title.to_string()
            } else {
                format!("{title} [{suffix}]")
            };
            let table = matrix_table(&full_title, &slice, rows, cols, metric);
            report = match csv {
                Some(csv) if suffix.is_empty() => report.table_csv(table, csv),
                Some(csv) => {
                    let tag: String = suffix
                        .chars()
                        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                        .collect();
                    let csv = match csv.strip_suffix(".csv") {
                        Some(stem) => format!("{stem}_{tag}.csv"),
                        None => format!("{csv}_{tag}"),
                    };
                    report.table_csv(table, &csv)
                }
                None => report.table(table),
            };
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(toml: &str) -> &'static SpecScenario {
        SpecScenario::new(occamy_spec::spec_from_toml(toml).unwrap())
    }

    #[test]
    fn seed_key_reproduces_registry_seeds() {
        // A spec whose seed_key and axes mirror fig17's grid generates
        // the exact seeds the registry scenario uses.
        let s = spec(
            r#"
name = "fig17_repro"
seed_key = "fig17"
[topology]
kind = "leaf_spine"
[grid]
query_pct_buffer = { full = [20, 60, 100], quick = [40, 100], smoke = [40] }
"#,
        );
        let fig17 = crate::registry::find_scenario("fig17").unwrap();
        for scale in [Scale::Full, Scale::Quick, Scale::Smoke] {
            let a = s.grid(scale);
            let b = fig17.grid(scale);
            assert_eq!(a.len(), b.len(), "{scale}");
            for (ca, cb) in a.iter().zip(&b) {
                assert_eq!(ca.seed, cb.seed, "{scale} cell {}", ca.index);
                assert_eq!(ca.label(), cb.label(), "{scale} cell {}", ca.index);
            }
        }
    }

    #[test]
    fn scheme_axis_is_implicit_and_last() {
        let s = spec(
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[schemes]\nuse = [\"Occamy\", \"DT\"]\n[grid]\nbg_load = [0.1, 0.9]\n",
        );
        let cells = s.grid(Scale::Smoke);
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].str("scheme"), "Occamy");
        assert_eq!(cells[1].str("scheme"), "DT");
        assert_eq!(cells[0].f64("bg_load"), 0.1);
        assert_eq!(cells[2].f64("bg_load"), 0.9);
    }

    #[test]
    fn knobs_apply_onto_the_scenario() {
        let s = spec(
            "name = \"x\"\n[topology]\nkind = \"three_tier\"\n[traffic]\nbackground = \"permutation\"\n",
        );
        let mut sc = s.base_scenario("Occamy");
        assert_eq!(sc.alpha, 8.0);
        apply_knob(&mut sc, "oversubscription", &Value::F64(4.0));
        assert_eq!(sc.oversubscription, 4.0);
        apply_knob(&mut sc, "query_pct_buffer", &Value::U64(80));
        assert_eq!(sc.query_bytes, sc.buffer_per_8ports * 80 / 100);
        apply_knob(&mut sc, "bg_load", &Value::F64(0.25));
        apply_knob(&mut sc, "bg_flow_kb", &Value::U64(64));
        apply_knob(&mut sc, "perm_shift", &Value::U64(3));
        match &sc.bg {
            BgPattern::Permutation {
                flow_bytes,
                load,
                shift,
            } => {
                assert_eq!(*flow_bytes, 64_000);
                assert_eq!(*load, 0.25);
                assert_eq!(*shift, 3);
            }
            other => panic!("unexpected bg {other:?}"),
        }
        apply_knob(&mut sc, "duration_ms", &Value::U64(7));
        assert_eq!(sc.duration_ps, 7 * MS);
        apply_knob(&mut sc, "alpha", &Value::F64(2.0));
        assert_eq!(sc.alpha, 2.0);
    }

    #[test]
    fn multi_axis_emit_slices_instead_of_dropping_cells() {
        use crate::runner::execute;
        // Two grid axes + scheme: a 2-D table can't show all three, so
        // emit must produce one table per residual oversubscription
        // value, together covering every cell.
        let s = spec(
            r#"
name = "slice_test"
[topology]
kind = "fat_tree"
k = 4
[traffic]
duration_ms = 1
drain_ms = 10
qps_per_host = 2000.0
query_fanout = 4
bg_load = 0.1
[schemes]
use = ["DT"]
[grid]
query_pct_buffer = [20, 40]
oversubscription = [1.0, 2.0]
[[emit]]
title = "qct"
rows = "query_pct_buffer"
metric = "qct_slowdown_avg"
csv = "slice_test.csv"
"#,
        );
        let (runs, _) = execute(&[s as &dyn Scenario], Scale::Smoke, false);
        let report = &runs[0].report;
        assert_eq!(
            report.tables().len(),
            2,
            "one table per residual oversubscription value"
        );
        let titles: Vec<String> = report.tables().iter().map(|(t, _)| t.render()).collect();
        assert!(titles[0].contains("[oversubscription=1]"), "{titles:?}");
        assert!(titles[1].contains("[oversubscription=2]"), "{titles:?}");
        let csvs: Vec<Option<&String>> = report.tables().iter().map(|(_, c)| c.as_ref()).collect();
        assert_ne!(csvs[0], csvs[1], "sliced tables need distinct CSV files");
    }

    #[test]
    fn load_rejects_out_of_range_axes() {
        let dir = std::env::temp_dir().join("occamy_spec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_oversub.toml");
        std::fs::write(
            &path,
            "name = \"bad\"\n[topology]\nkind = \"fat_tree\"\n[grid]\noversubscription = [0.5]\n",
        )
        .unwrap();
        let e = SpecScenario::load(path.to_str().unwrap()).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
    }
}
