//! Experiment harness for the Occamy reproduction: a declarative
//! **scenario registry** with a **parallel runner**.
//!
//! Every table and figure of the paper (plus extension studies) is one
//! [`scenario::Scenario`] implementation — a named parameter grid whose
//! independent cells the runner executes across worker threads with
//! deterministic per-cell seeds. The pieces:
//!
//! - [`scenario`] — the `Scenario` trait, grid builder ([`scenario::Grid`]),
//!   per-cell results and report assembly;
//! - [`registry`] — the central table mapping names (`fig12`, `table01`,
//!   …) to scenario implementations;
//! - [`runner`] — parallel cell execution, table/CSV printing and the
//!   machine-readable `BENCH_<name>.json` sink;
//! - [`scenarios`] — the reusable testbed builders behind the grids:
//!   [`scenarios::TestbedScenario`] (the 8-host / 10 Gbps / 410 KB DPDK
//!   software-switch setup of §6.2, Figs. 13–16, and the §3.1 motivation
//!   testbed of Fig. 6), [`scenarios::LeafSpineScenario`] (the §6.4
//!   fabric of Figs. 7, 17–23, dimension-scaled to keep each data point
//!   seconds of wall clock) and [`scenarios::CbrTestbed`] (the Tofino
//!   CBR micro-testbed of Figs. 3, 11, 12);
//! - [`report`] — ideal-FCT model and result aggregation;
//! - [`fabric`] — the topology-generic [`fabric::FabricScenario`]
//!   (leaf-spine / fat-tree / 3-tier with an oversubscription knob);
//! - [`spec_scenario`] — compiles declarative `occamy-spec` documents
//!   (`occamy-bench run --spec file.toml`) into registry-compatible
//!   scenarios over `FabricScenario`;
//! - [`shard`] — splits a grid into self-contained shard plan files,
//!   executes them independently (possibly on different machines) and
//!   merges the partial results into the byte-identical report a direct
//!   run produces (`occamy-bench shard plan|run|merge`); `shard run
//!   --resume` journals each finished cell so a killed shard restarts
//!   from where it stopped;
//! - [`fleet`] — the supervising coordinator (`occamy-bench fleet`):
//!   spawns one `shard run --resume` worker process per shard, monitors
//!   heartbeats, retries dead or hung workers with capped exponential
//!   backoff and merges the survivors;
//! - [`retry`] — the shared capped-backoff retry helper behind both.
//!
//! # CLI
//!
//! The single `occamy-bench` binary drives everything:
//!
//! ```text
//! cargo run --release -p occamy-bench -- list
//! cargo run --release -p occamy-bench -- run fig12 fig13
//! cargo run --release -p occamy-bench -- all --quick
//! ```
//!
//! Adding a workload is one ~50–150-line module in `src/figs/` plus one
//! registry line — no new binary, no copied topology setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod figs;
pub mod fleet;
pub mod live;
pub mod registry;
pub mod report;
pub mod retry;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod shard;
pub mod spec_scenario;

/// Returns `true` when quick mode is requested via `OCCAMY_QUICK=1`
/// (shorter runs for CI / smoke testing).
pub fn quick_mode() -> bool {
    std::env::var("OCCAMY_QUICK").is_ok_and(|v| v == "1")
}

/// Returns `true` when `OCCAMY_FREEZE_PERF=1` (or `--freeze-perf`):
/// wall-clock perf measurements are forced to zero so every report
/// artifact is byte-reproducible. Simulation results are unaffected —
/// this only blanks the timing fields (`wall_ms`, `events_per_sec`,
/// `serial_cell_time_ms`, `batch_wall_ms`), which is what lets the CI
/// shard-equivalence gate `cmp` a merged distributed run against a
/// direct single-machine run.
pub fn freeze_perf() -> bool {
    std::env::var("OCCAMY_FREEZE_PERF").is_ok_and(|v| v == "1")
}

/// Worker threads for *intra-run* domain-decomposed simulation
/// (`OCCAMY_SIM_THREADS`, set by `--threads`; default 1 = serial).
/// Distinct from the rayon pool that spreads grid *cells* across cores:
/// cells inherit `max(spec threads, this)` as their world's
/// `SimConfig::threads`, engaging `occamy_sim`'s deterministic parallel
/// executor on multi-domain topologies. Results are bit-identical for
/// every value — this only trades wall clock.
pub fn sim_threads() -> usize {
    std::env::var("OCCAMY_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1)
}

/// Applies the CLI/env intra-run thread count to a built world (keeping
/// any higher spec-level `[sim] threads` setting).
pub fn apply_sim_threads(world: &mut occamy_sim::World) {
    world.cfg.threads = world.cfg.threads.max(sim_threads());
}

/// Returns `true` when `OCCAMY_TELEMETRY=1` (set by `--telemetry` /
/// `--live`): the runner installs the out-of-band telemetry sink and
/// tails the trace bus into `results/<name>_telemetry.jsonl`. Telemetry
/// is read-only over simulation state, so every BENCH/CSV byte is
/// identical with it on or off (CI-enforced).
pub fn telemetry_enabled() -> bool {
    std::env::var("OCCAMY_TELEMETRY").is_ok_and(|v| v == "1")
}

/// Default telemetry snapshot cadence in executed events
/// (`OCCAMY_TELEMETRY_EVERY`; a spec's `[telemetry] every_events`
/// overrides it per cell).
pub fn telemetry_every() -> u64 {
    std::env::var("OCCAMY_TELEMETRY_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(50_000)
}

/// Returns `true` when `OCCAMY_LIVE=1` (set by `--live`): the sink also
/// renders the ANSI dashboard to stderr, and the runner suppresses its
/// per-cell start lines so they don't tear the display.
pub fn live_mode() -> bool {
    std::env::var("OCCAMY_LIVE").is_ok_and(|v| v == "1")
}
