//! Experiment harness for the Occamy reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). This library holds the
//! shared scenario builders:
//!
//! - [`scenarios::TestbedScenario`] — the 8-host / 10 Gbps / 410 KB DPDK
//!   software-switch setup of §6.2 (Figs. 13–16) and the motivation
//!   testbed of §3.1 (Fig. 6);
//! - [`scenarios::LeafSpineScenario`] — the leaf-spine fabric of §6.4
//!   (Figs. 7, 17–23), dimension-scaled to keep each data point seconds
//!   of wall clock (see `EXPERIMENTS.md` for the scaling rationale);
//! - [`report`] — ideal-FCT helpers, result aggregation and table/CSV
//!   output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod scenarios;

/// Returns `true` when quick mode is requested via `OCCAMY_QUICK=1`
/// (shorter runs for CI / smoke testing).
pub fn quick_mode() -> bool {
    std::env::var("OCCAMY_QUICK").is_ok_and(|v| v == "1")
}

/// Path under `results/` for a figure's CSV output.
pub fn results_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new("results").join(name)
}
