//! The central scenario table: every figure, table and extension study,
//! registered once and discoverable by name.

use crate::figs;
use crate::scenario::Scenario;

/// Every registered scenario, in catalog order (motivation, mechanism,
/// testbed end-to-end, large-scale, ablations, hardware).
static REGISTRY: &[&dyn Scenario] = &[
    &figs::fig03::Fig03,
    &figs::fig06::Fig06,
    &figs::fig07::Fig07,
    &figs::fig11::Fig11,
    &figs::fig12::Fig12,
    &figs::fig13::Fig13,
    &figs::fig14::Fig14,
    &figs::fig15::Fig15,
    &figs::fig16::Fig16,
    &figs::fig17::Fig17,
    &figs::fig18::Fig18,
    &figs::fig19::Fig19,
    &figs::fig20::Fig20,
    &figs::fig21::Fig21,
    &figs::fig22::Fig22,
    &figs::fig23::Fig23,
    &figs::table01::Table01,
    &figs::ablation_token_rate::AblationTokenRate,
    &figs::perf_transport::PerfTransport,
];

/// All registered scenarios, in catalog order.
pub fn registry() -> &'static [&'static dyn Scenario] {
    REGISTRY
}

/// Looks a scenario up by its registry name.
pub fn find_scenario(name: &str) -> Option<&'static dyn Scenario> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_the_full_catalog() {
        assert!(
            registry().len() >= 15,
            "expected at least 15 scenarios, found {}",
            registry().len()
        );
    }

    #[test]
    fn names_are_unique_and_descriptions_nonempty() {
        let names: BTreeSet<&str> = registry().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), registry().len(), "duplicate scenario name");
        for s in registry() {
            assert!(
                !s.description().is_empty(),
                "{} lacks a description",
                s.name()
            );
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert_eq!(find_scenario("fig12").map(|s| s.name()), Some("fig12"));
        assert!(find_scenario("fig99").is_none());
    }
}
