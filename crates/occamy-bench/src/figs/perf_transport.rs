//! **perf_transport** — the tracked transport hot-path baseline.
//!
//! Not a paper figure: this scenario exists so the simulator's
//! transport-layer throughput has a canonical, regression-tracked
//! number. Two cells on the paper-faithful k=8 fat-tree at 100 G
//! (`specs/paper_fabric_128h.toml` scale) exercise the two workload
//! shapes that bound the transport hot path:
//!
//! - **incast**: 32-way query responses only — synchronized window
//!   bursts, ECN-driven cwnd cuts, dup-ACK recoveries and a retransmission
//!   timer armed per response flow (thousands pending at once);
//! - **permutation**: every host streams 1 MB flows to a shifted peer at
//!   60% load under the same incast queries — the ACK-clock steady state
//!   where `on_ack`/`next_segment` dominate.
//!
//! The runner records `events` per cell and events/sec in
//! `BENCH_perf_transport.json` / `results/perf_transport_perf.csv`; CI
//! runs the quick scale serially on every push so the trajectory is
//! visible per commit. Headline (non-perf) metrics are pinned by the
//! golden snapshot like any other scenario — a transport refactor must
//! move events/sec, not results.

use crate::fabric::{FabricScenario, FabricTopo};
use crate::report::RunResult;
use crate::scenario::{CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario};
use crate::scenarios::BgPattern;
use occamy_core::BmKind;
use occamy_sim::{SimConfig, MS};
use occamy_stats::Table;

/// Registry entry for the transport hot-path baseline.
pub struct PerfTransport;

/// Builds one cell's fabric: paper-scale k=8 at full/quick, k=4 at
/// smoke so the registry smoke test stays seconds-scale.
fn scenario_for(cell: &CellSpec) -> FabricScenario {
    let k = if cell.scale == Scale::Smoke { 4 } else { 8 };
    let mut f = FabricScenario::paper_scaled(FabricTopo::FatTree { k }, BmKind::Occamy, 8.0);
    // The paper fabric: 100 G hosts and fabric links, 4 MB per 8 ports,
    // ECN K = 0.72 BDP at 100 G / 80 µs, min RTO 5 ms.
    f.host_rate_bps = 100_000_000_000;
    f.fabric_rate_bps = 100_000_000_000;
    f.buffer_per_8ports = 4_000_000;
    f.sim = SimConfig::large_scale();
    f.query_bytes = f.buffer_per_8ports * 40 / 100;
    f.query_fanout = 32;
    match cell.str("pattern") {
        "incast" => {
            f.bg = BgPattern::None;
            f.qps_per_host = 400.0;
        }
        "permutation" => {
            f.bg = BgPattern::Permutation {
                flow_bytes: 1_000_000,
                load: 0.6,
                shift: 1,
            };
            f.qps_per_host = 200.0;
        }
        other => panic!("unknown pattern '{other}'"),
    }
    let (duration, drain) = match cell.scale {
        Scale::Full => (15 * MS, 100 * MS),
        Scale::Quick => (4 * MS, 40 * MS),
        Scale::Smoke => (2 * MS, 20 * MS),
    };
    f.duration_ps = duration;
    f.drain_ps = drain;
    f.seed = cell.seed;
    f
}

impl Scenario for PerfTransport {
    fn name(&self) -> &'static str {
        "perf_transport"
    }

    fn description(&self) -> &'static str {
        "transport hot-path baseline: incast + permutation on the k=8 fat-tree at 100G"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        Grid::new("perf_transport", scale)
            .axis("pattern", ["incast", "permutation"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (world, result): (_, RunResult) = scenario_for(cell).run_world();
        crate::report::with_par_metrics(result.into_cell(), &world)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut t = Table::new(
            "perf_transport: transport-bound workloads (k=8 fat-tree, 100G, Occamy α=8)",
            &[
                "pattern",
                "queries",
                "qct_avg_ms",
                "qct_p99_ms",
                "bg_slowdown_avg",
                "losses",
                "events",
            ],
        );
        for o in outcomes {
            t.row(vec![
                o.spec.str("pattern").to_string(),
                o.result.fmt("queries"),
                o.result.fmt("qct_avg_ms"),
                o.result.fmt("qct_p99_ms"),
                o.result.fmt("bg_slowdown_avg"),
                o.result.fmt("losses"),
                o.result.fmt("events"),
            ]);
        }
        Report::new().table_csv(t, "perf_transport.csv").note(
            "Perf baseline, not a paper figure: events/sec for these cells is the \
             tracked transport hot-path number (see BENCH_perf_transport.json and \
             results/perf_transport_perf.csv; README §Performance has the trajectory).",
        )
    }
}
