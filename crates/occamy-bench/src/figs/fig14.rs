//! Paper **Fig. 14**: performance isolation between service queues.
//!
//! Two service queues per port, fairly scheduled with DRR; query traffic
//! (DCTCP) in one queue, background (CUBIC) in the other. The background
//! load is swept from 10% to 60%.
//!
//! Paper shape: as the load grows, DT and ABM start hitting RTOs for the
//! query traffic (exploding p99 QCT); Occamy and Pushout stay flat
//! because the buffer is reallocated quickly.

use crate::figs::scale_testbed;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, TestbedBg, TestbedScenario};
use occamy_sim::topology::SchedKind;
use occamy_sim::CcAlgo;

/// Registry entry for paper Fig. 14.
pub struct Fig14;

impl Scenario for Fig14 {
    fn name(&self) -> &'static str {
        "fig14"
    }

    fn description(&self) -> &'static str {
        "isolation between DRR service queues: QCT vs background load"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let loads: Vec<u64> = match scale {
            Scale::Full => vec![10, 20, 30, 40, 50, 60],
            Scale::Quick => vec![20, 50],
            Scale::Smoke => vec![30],
        };
        Grid::new("fig14", scale)
            .axis("bg_load_pct", loads)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(328_000); // 80% of buffer
        sc.classes = 2;
        sc.alpha_per_class = vec![alpha; 2];
        sc.sched = SchedKind::Drr { quantum: 1_500 };
        sc.query_class = 0;
        sc.bg = Some(TestbedBg {
            load: cell.u64("bg_load_pct") as f64 / 100.0,
            cc: CcAlgo::Cubic,
            class: 1,
        });
        sc.seed = cell.seed;
        scale_testbed(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        Report::new()
            .table_csv(
                matrix_table(
                    "Fig 14a: average QCT (ms)",
                    outcomes,
                    "bg_load_pct",
                    "scheme",
                    "qct_avg_ms",
                ),
                "fig14a.csv",
            )
            .table_csv(
                matrix_table(
                    "Fig 14b: p99 QCT (ms)",
                    outcomes,
                    "bg_load_pct",
                    "scheme",
                    "qct_p99_ms",
                ),
                "fig14b.csv",
            )
            .note(format!(
                "Shape check: columns {:?}; expect DT (and to a lesser degree \
                 ABM) p99 to blow up with load while Occamy/Pushout stay low.",
                evaluated_scheme_names()
            ))
    }
}
