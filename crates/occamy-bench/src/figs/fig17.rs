//! Paper **Fig. 17**: large-scale leaf-spine simulation with web-search
//! background traffic.
//!
//! Query (incast) traffic over a 90%-loaded web-search background; four
//! panels vs query size (% of a buffer partition): average / p99 QCT
//! slowdown, overall background average FCT slowdown, small-background
//! p99 FCT slowdown.
//!
//! Paper shape: Occamy reduces average QCT slowdown by up to ~44% vs DT
//! and ~36% vs ABM, tracks Pushout closely, and also helps background
//! flows (up to ~20% on average FCT, ~32% on small-flow p99).

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    find, matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, LeafSpineScenario};

/// Registry entry for paper Fig. 17.
pub struct Fig17;

impl Scenario for Fig17 {
    fn name(&self) -> &'static str {
        "fig17"
    }

    fn description(&self) -> &'static str {
        "leaf-spine fabric with web-search background: slowdowns vs query size"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![20, 60, 100],
            Scale::Quick => vec![40, 100],
            Scale::Smoke => vec![40],
        };
        Grid::new("fig17", scale)
            .axis("query_pct_buffer", sizes)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
        sc.query_bytes = sc.buffer_per_8ports * cell.u64("query_pct_buffer") / 100;
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (title, metric, csv) in [
            (
                "Fig 17a: average QCT slowdown",
                "qct_slowdown_avg",
                "fig17a.csv",
            ),
            (
                "Fig 17b: p99 QCT slowdown",
                "qct_slowdown_p99",
                "fig17b.csv",
            ),
            (
                "Fig 17c: overall bg average FCT slowdown",
                "bg_slowdown_avg",
                "fig17c.csv",
            ),
            (
                "Fig 17d: small bg p99 FCT slowdown",
                "small_bg_slowdown_p99",
                "fig17d.csv",
            ),
        ] {
            report = report.table_csv(
                matrix_table(title, outcomes, "query_pct_buffer", "scheme", metric),
                csv,
            );
        }
        // Anchor the shape check to the middle of whatever sizes this
        // grid actually ran (40% only exists in the Quick sweep).
        let sizes = crate::scenario::distinct(outcomes, "query_pct_buffer");
        let mid = &sizes[sizes.len() / 2];
        let at = |scheme: &str| {
            find(
                outcomes,
                &[("query_pct_buffer", mid), ("scheme", &Value::from(scheme))],
            )
            .and_then(|o| o.result.get("qct_slowdown_avg"))
        };
        if let (Some(d), Some(o)) = (at("DT"), at("Occamy")) {
            report = report.note(format!(
                "Shape check at {mid}% query size: Occamy cuts DT's average QCT \
                 slowdown by {:.0}% (paper: up to ~44%).",
                (1.0 - o / d) * 100.0
            ));
        }
        report
    }
}
