//! Paper **Fig. 12**: burst loss rate vs burst size for Occamy and DT
//! with α ∈ {1, 2, 4} on the P4-testbed scenario.
//!
//! Paper shape: (1) at equal α, Occamy absorbs markedly larger bursts
//! than DT (≈57% more at α = 4) because it vacates the entrenched queue
//! instead of waiting for it to drain; (2) Occamy *improves* as α grows
//! (more usable buffer, agility intact) while DT *degrades* (less
//! reserve, no agility).

use crate::scenario::{
    distinct, find, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use crate::scenarios::{bm_kind_by_name, CbrTestbed};
use occamy_sim::{CbrDesc, MS};
use occamy_stats::Table;

/// Registry entry for paper Fig. 12.
pub struct Fig12;

impl Scenario for Fig12 {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn description(&self) -> &'static str {
        "burst absorption: loss rate vs burst size, Occamy vs DT across alpha"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let (alphas, sizes): (Vec<f64>, Vec<u64>) = match scale {
            Scale::Smoke => (vec![1.0], vec![300_000, 500_000]),
            _ => (vec![1.0, 2.0, 4.0], (3..=8).map(|k| k * 100_000).collect()),
        };
        Grid::new("fig12", scale)
            .axis("alpha", alphas)
            .axis("burst", sizes)
            .axis("scheme", ["Occamy", "DT"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let kind = bm_kind_by_name(cell.str("scheme")).expect("known scheme");
        let tb = CbrTestbed::paper_p4(kind, cell.f64("alpha"));
        let mut w = tb.build();
        // Long-lived traffic entrenches queue 1 (toward host 2) from t=0.
        w.add_cbr(CbrDesc {
            host: 0,
            dst: 2,
            rate_bps: 20_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 10 * MS,
            budget_bytes: None,
        });
        // The measured burst hits queue 2 at line rate from t=3 ms.
        let burst = w.add_cbr(CbrDesc {
            host: 1,
            dst: 3,
            rate_bps: tb.fast_rate_bps,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 3 * MS,
            stop_ps: 10 * MS,
            budget_bytes: Some(cell.u64("burst")),
        });
        w.run_to_completion(12 * MS);
        CellResult::new()
            .metric("loss_rate", w.metrics.cbr[burst].loss_rate())
            .metric("events", w.metrics.events_processed as f64)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        let schemes = [Value::from("Occamy"), Value::from("DT")];
        let mut absorb: Vec<(String, u64)> = Vec::new();
        for alpha in distinct(outcomes, "alpha") {
            let mut t = Table::new(
                &format!("Fig 12, α = {alpha}: burst loss rate"),
                &["burst_KB", "Occamy", "DT"],
            );
            let mut max_lossless = [0u64; 2];
            for size in distinct(outcomes, "burst") {
                let &Value::U64(bytes) = &size else {
                    continue;
                };
                let mut cells = vec![(bytes / 1000).to_string()];
                for (i, scheme) in schemes.iter().enumerate() {
                    let loss = find(
                        outcomes,
                        &[("alpha", &alpha), ("burst", &size), ("scheme", scheme)],
                    )
                    .and_then(|o| o.result.get("loss_rate"));
                    if let Some(l) = loss {
                        if l < 0.001 {
                            max_lossless[i] = bytes;
                        }
                    }
                    cells.push(match loss {
                        Some(l) => format!("{l:.3}"),
                        None => "-".into(),
                    });
                }
                t.row(cells);
            }
            report = report.table_csv(t, &format!("fig12_alpha{alpha}.csv"));
            absorb.push((format!("Occamy α={alpha}"), max_lossless[0]));
            absorb.push((format!("DT α={alpha}"), max_lossless[1]));
        }
        let mut s = Table::new(
            "Fig 12 summary: largest lossless burst",
            &["scheme", "max_lossless_burst_KB"],
        );
        for (name, v) in &absorb {
            s.row(vec![name.clone(), (v / 1000).to_string()]);
        }
        report.table_csv(s, "fig12_summary.csv").note(
            "Expected shape: Occamy's largest lossless burst grows with α and \
             exceeds DT's at every α; DT's shrinks as α grows.",
        )
    }
}
