//! Paper **Fig. 6**: performance degradation of DT due to anomalous
//! behavior (the §3.1 motivation testbed).
//!
//! - Fig. 6a (buffer choking): high-priority incast shares a port with 14
//!   low-priority long-lived CUBIC flows under strict priority. DT is
//!   configured so the incast deserves the *same* buffer with and without
//!   the LP traffic (α = 8 for HP with LP present, α = 1 without); QCT
//!   should therefore be unaffected — but LP queues drain slowly and choke
//!   the buffer, inflating QCT several-fold.
//! - Fig. 6b (inter-port influence): the same comparison with the
//!   background on a *different* port — the degradation persists because
//!   DT cannot reallocate buffer fast enough for the incast.
//!
//! Scaled from the paper's 8 × 40 G / 2 MB testbed to 8 × 10 G / 500 KB
//! (same buffer per port per Gbps); query sizes scale by the same 4×.
//!
//! The no-background baseline is identical for both panels, so the grid
//! runs it once per query size (`config = none`) and both emitted tables
//! reference it.

use crate::report::fmt;
use crate::scenario::{
    find, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{CcAlgo, FlowDesc, SimConfig, MS, US};
use occamy_stats::Table;

const G10: u64 = 10_000_000_000;
const BUFFER: u64 = 500_000;

/// Registry entry for paper Fig. 6.
pub struct Fig06;

fn sizes_kb(scale: Scale) -> Vec<u64> {
    match scale {
        Scale::Full => vec![500, 1_000, 1_500, 2_000, 2_500, 3_000, 3_500],
        Scale::Quick => vec![1_000, 2_500],
        Scale::Smoke => vec![1_000],
    }
}

impl Scenario for Fig06 {
    fn name(&self) -> &'static str {
        "fig06"
    }

    fn description(&self) -> &'static str {
        "DT motivation: buffer choking and inter-port influence on incast QCT"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        Grid::new("fig06", scale)
            .axis("query_kb", sizes_kb(scale))
            // none: no background, HP α = 1 — the shared baseline.
            // same_port: LP CUBIC on the incast port, HP α = 8 (Fig. 6a).
            // other_port: LP CUBIC on port 5, HP α = 1 (Fig. 6b).
            .axis("config", ["none", "same_port", "other_port"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (bg_port, hp_alpha): (Option<usize>, f64) = match cell.str("config") {
            "none" => (None, 1.0),
            "same_port" => (Some(0), 8.0),
            _ => (Some(5), 1.0),
        };
        let (queries, gap, tail) = match cell.scale {
            Scale::Full => (8u64, 100 * MS, 500 * MS),
            Scale::Quick => (4, 60 * MS, 300 * MS),
            Scale::Smoke => (2, 30 * MS, 150 * MS),
        };
        let query_bytes = cell.u64("query_kb") * 1000;
        let mut w = single_switch(SingleSwitchCfg {
            host_rates_bps: vec![G10; 8],
            prop_ps: US,
            buffer_bytes: BUFFER,
            classes: 8,
            bm: BmSpec::per_class(BmKind::Dt, {
                let mut a = vec![1.0; 8];
                a[0] = hp_alpha;
                a
            }),
            sched: SchedKind::StrictPriority,
            sim: SimConfig {
                min_rto: 10 * MS,
                ..SimConfig::default()
            },
        });
        // Low-priority background: 14 long-lived CUBIC flows from hosts
        // 6/7, one per LP class 1..=7 (paper: "14 long-lived flows from 2
        // other senders, each classified into one of 7 low-priority
        // queues").
        if let Some(dst) = bg_port {
            for i in 0..14 {
                w.add_flow(FlowDesc {
                    src: 6 + i % 2,
                    dst,
                    bytes: u64::MAX / 4, // effectively long-lived
                    start_ps: 0,
                    prio: 1 + (i % 7) as u8,
                    cc: CcAlgo::Cubic,
                    query: None,
                    is_query: false,
                });
            }
        }
        // High-priority incast to host 0: degree 40 = 5 senders × 8 flows.
        for q in 0..queries {
            let start = 20 * MS + q * gap;
            for s in 0..5 {
                for _ in 0..8 {
                    w.add_flow(FlowDesc {
                        src: 1 + s,
                        dst: 0,
                        bytes: (query_bytes / 40).max(1),
                        start_ps: start,
                        prio: 0,
                        cc: CcAlgo::Dctcp,
                        query: Some(q),
                        is_query: true,
                    });
                }
            }
        }
        w.run_to_completion(20 * MS + queries * gap + tail);
        let mut qct = w.flow_records().qct_ms();
        CellResult::new()
            .metric("queries", qct.len() as f64)
            .metric_opt("qct_avg_ms", qct.mean())
            .metric_opt("qct_p99_ms", qct.p99())
            .metric("events", w.metrics.events_processed as f64)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        let mut worst = [0.0f64; 2];
        let panels = [
            (
                "same_port",
                "Fig 6a: buffer choking (HP incast vs LP traffic on the same port)",
                ["query_KB", "qct_ms_no_lp", "qct_ms_with_lp", "degradation"],
                "fig06a.csv",
            ),
            (
                "other_port",
                "Fig 6b: inter-port influence (background on a different port)",
                ["query_KB", "qct_ms_no_bg", "qct_ms_with_bg", "degradation"],
                "fig06b.csv",
            ),
        ];
        for (p, (config, title, cols, csv)) in panels.into_iter().enumerate() {
            let mut t = Table::new(title, &cols);
            for size in crate::scenario::distinct(outcomes, "query_kb") {
                let qct = |cfg: &str| {
                    find(
                        outcomes,
                        &[("query_kb", &size), ("config", &Value::from(cfg))],
                    )
                    .and_then(|o| o.result.get("qct_avg_ms"))
                };
                let without = qct("none");
                let with = qct(config);
                if let (Some(a), Some(b)) = (without, with) {
                    worst[p] = worst[p].max(b / a);
                }
                t.row(vec![
                    size.to_string(),
                    fmt(without),
                    fmt(with),
                    match (without, with) {
                        (Some(x), Some(y)) => format!("{:.1}x", y / x),
                        _ => "-".into(),
                    },
                ]);
            }
            report = report.table_csv(t, csv);
        }
        report.note(format!(
            "Shape check: paper reports up to ~8x degradation with LP traffic \
             (6a) and up to ~2x with inter-port background (6b); measured \
             {:.1}x and {:.1}x.",
            worst[0], worst[1]
        ))
    }
}
