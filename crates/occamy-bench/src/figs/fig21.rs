//! Paper **Fig. 21**: effectiveness of round-robin drop.
//!
//! Occamy deliberately expels from over-allocated queues in round-robin
//! order instead of tracking the longest queue (which needs a Maximum
//! Finder, Fig. 4). This ablation compares Occamy against its
//! longest-queue-drop variant on the leaf-spine scenario at 40%
//! background load.
//!
//! Paper shape: the difference is small — within ~15% on average QCT and
//! within ~8.8% on average FCT — justifying the cheap RR arbiter.

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    distinct, find, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use crate::scenarios::{bm_kind_by_name, BgPattern, LeafSpineScenario};
use occamy_stats::Table;

/// Registry entry for paper Fig. 21.
pub struct Fig21;

impl Scenario for Fig21 {
    fn name(&self) -> &'static str {
        "fig21"
    }

    fn description(&self) -> &'static str {
        "ablation: round-robin vs longest-queue victim selection"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![20, 60, 100],
            Scale::Quick => vec![40, 100],
            Scale::Smoke => vec![40],
        };
        Grid::new("fig21", scale)
            .axis("query_pct_buffer", sizes)
            .axis("variant", ["Occamy", "OccamyLongest"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let kind = bm_kind_by_name(cell.str("variant")).expect("known variant");
        let mut sc = LeafSpineScenario::paper_scaled(kind, 8.0);
        sc.bg = BgPattern::WebSearch { load: 0.4 };
        sc.query_bytes = sc.buffer_per_8ports * cell.u64("query_pct_buffer") / 100;
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let cols = &[
            "query_pct_buffer",
            "avg_qct_RR",
            "avg_qct_Longest",
            "p99_qct_RR",
            "p99_qct_Longest",
            "avg_fct_RR",
            "avg_fct_Longest",
            "p99_small_RR",
            "p99_small_Longest",
        ];
        let mut t = Table::new(
            "Fig 21: round-robin vs longest-queue drop (slowdowns)",
            cols,
        );
        let mut max_qct_gap = 0.0f64;
        let mut max_fct_gap = 0.0f64;
        for pct in distinct(outcomes, "query_pct_buffer") {
            let get = |variant: &str, metric: &str| {
                find(
                    outcomes,
                    &[
                        ("query_pct_buffer", &pct),
                        ("variant", &Value::from(variant)),
                    ],
                )
                .and_then(|o| o.result.get(metric))
            };
            let mut cells = vec![pct.to_string()];
            for metric in [
                "qct_slowdown_avg",
                "qct_slowdown_p99",
                "bg_slowdown_avg",
                "small_bg_slowdown_p99",
            ] {
                let rr = get("Occamy", metric);
                let longest = get("OccamyLongest", metric);
                if let (Some(a), Some(b)) = (rr, longest) {
                    let gap = (a - b).abs() / b.max(1e-9);
                    if metric == "qct_slowdown_avg" {
                        max_qct_gap = max_qct_gap.max(gap);
                    }
                    if metric == "bg_slowdown_avg" {
                        max_fct_gap = max_fct_gap.max(gap);
                    }
                }
                cells.push(crate::report::fmt(rr));
                cells.push(crate::report::fmt(longest));
            }
            t.row(cells);
        }
        Report::new().table_csv(t, "fig21.csv").note(format!(
            "Shape check: max avg-QCT gap {:.1}% (paper: within ~15%), max \
             avg-FCT gap {:.1}% (paper: within ~8.8%).",
            max_qct_gap * 100.0,
            max_fct_gap * 100.0
        ))
    }
}
