//! Paper **Fig. 20**: performance with higher query-traffic rates.
//!
//! The query load is swept from 10% to 80% (via the query rate, with
//! query size fixed at 80% of a buffer partition and light 10%
//! background).
//!
//! Paper shape: Occamy improves average QCT by up to ~38% vs DT and ~34%
//! vs ABM; the improvement is *largest at low query load* (DT's
//! inefficiency is most pronounced with few active ports); background
//! FCT is barely affected by the BM choice.

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, BgPattern, LeafSpineScenario};

/// Registry entry for paper Fig. 20.
pub struct Fig20;

impl Scenario for Fig20 {
    fn name(&self) -> &'static str {
        "fig20"
    }

    fn description(&self) -> &'static str {
        "query-rate sweep on the leaf-spine fabric: slowdowns vs query load"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let loads: Vec<u64> = match scale {
            Scale::Full => vec![10, 30, 50, 80],
            Scale::Quick => vec![20, 60],
            Scale::Smoke => vec![30],
        };
        Grid::new("fig20", scale)
            .axis("query_load_pct", loads)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
        sc.bg = BgPattern::WebSearch { load: 0.1 };
        sc.query_bytes = sc.buffer_per_8ports * 80 / 100;
        // Load = qps × size × oversubscription / link rate (paper's
        // footnote 5); our fabric has the same 2:1 oversubscription.
        let oversub = 2.0;
        sc.qps_per_host = cell.u64("query_load_pct") as f64 / 100.0 * sc.link_rate_bps as f64
            / (8.0 * sc.query_bytes as f64 * oversub);
        sc.seed = cell.seed;
        // Smoke's query-rate boost is skipped here: the sweep already
        // sets the rate explicitly.
        let qps = sc.qps_per_host;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.qps_per_host = qps;
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        Report::new()
            .table_csv(
                matrix_table(
                    "Fig 20a: average QCT slowdown",
                    outcomes,
                    "query_load_pct",
                    "scheme",
                    "qct_slowdown_avg",
                ),
                "fig20a.csv",
            )
            .table_csv(
                matrix_table(
                    "Fig 20b: overall bg average FCT slowdown",
                    outcomes,
                    "query_load_pct",
                    "scheme",
                    "bg_slowdown_avg",
                ),
                "fig20b.csv",
            )
            .note(format!(
                "Shape check: columns {:?}; Occamy/Pushout lead most at low \
                 loads; panel (b) roughly flat across schemes.",
                evaluated_scheme_names()
            ))
    }
}
