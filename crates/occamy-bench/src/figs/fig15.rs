//! Paper **Fig. 15**: mitigation of the buffer-choking problem.
//!
//! Two *priority* queues per port (strict priority): high-priority query
//! flows (α = 8 for every scheme) and low-priority CUBIC background
//! (α = 1). Both classes congest the same receiver port. Ideally the LP
//! background should not affect HP QCT at all.
//!
//! Paper shape: with background, DT's average QCT inflates up to ~6.6×
//! (p99 up to ~60×); ABM helps but cannot fix it (up to ~5.7×); Occamy ≈
//! Pushout are essentially unaffected.

use crate::figs::scale_testbed;
use crate::report::fmt;
use crate::scenario::{
    distinct, find, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Value,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, TestbedBg, TestbedScenario};
use occamy_sim::topology::SchedKind;
use occamy_sim::CcAlgo;
use occamy_stats::Table;

/// Registry entry for paper Fig. 15.
pub struct Fig15;

impl Scenario for Fig15 {
    fn name(&self) -> &'static str {
        "fig15"
    }

    fn description(&self) -> &'static str {
        "buffer-choking mitigation: HP QCT with vs without LP background"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![150, 170, 190, 210, 230, 250],
            Scale::Quick => vec![150, 250],
            Scale::Smoke => vec![200],
        };
        Grid::new("fig15", scale)
            .axis("query_pct_buffer", sizes)
            .axis("scheme", evaluated_scheme_names())
            .axis("bg", ["without", "with"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, _) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let bytes = 410_000 * cell.u64("query_pct_buffer") / 100;
        let mut sc = TestbedScenario::paper_dpdk(kind, 8.0).with_query_bytes(bytes);
        sc.classes = 2;
        // HP α = 8 for all schemes, LP α = 1 (paper §6.2).
        sc.alpha_per_class = vec![8.0, 1.0];
        sc.sched = SchedKind::StrictPriority;
        sc.query_class = 0;
        // The paper congests both priority queues at the SAME port: one
        // host receives every query and all the background (§6.2).
        sc.query_client = Some(0);
        sc.bg_dst = Some(0);
        sc.qps_per_host *= 4.0; // one client instead of eight: keep query count up
        sc.bg = (cell.str("bg") == "with").then_some(TestbedBg {
            load: 0.5,
            cc: CcAlgo::Cubic,
            class: 1,
        });
        sc.seed = cell.seed;
        scale_testbed(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let schemes = evaluated_scheme_names();
        let mut cols: Vec<String> = vec!["query_pct_buffer".into()];
        for n in &schemes {
            cols.push(format!("{n}_no_bg"));
            cols.push(format!("{n}_with_bg"));
        }
        let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut avg = Table::new(
            "Fig 15a: average QCT (ms), w/o vs w/ LP background",
            &colrefs,
        );
        let mut p99 = Table::new("Fig 15b: p99 QCT (ms), w/o vs w/ LP background", &colrefs);

        let mut worst_dt = 0.0f64;
        let mut worst_occamy = 0.0f64;
        for pct in distinct(outcomes, "query_pct_buffer") {
            let mut row_avg = vec![pct.to_string()];
            let mut row_p99 = vec![pct.to_string()];
            for name in &schemes {
                let get = |bg: &str, metric: &str| {
                    find(
                        outcomes,
                        &[
                            ("query_pct_buffer", &pct),
                            ("scheme", &Value::from(*name)),
                            ("bg", &Value::from(bg)),
                        ],
                    )
                    .and_then(|o| o.result.get(metric))
                };
                if let (Some(a), Some(b)) =
                    (get("without", "qct_avg_ms"), get("with", "qct_avg_ms"))
                {
                    let ratio = b / a;
                    if *name == "DT" {
                        worst_dt = worst_dt.max(ratio);
                    }
                    if *name == "Occamy" {
                        worst_occamy = worst_occamy.max(ratio);
                    }
                }
                row_avg.push(fmt(get("without", "qct_avg_ms")));
                row_avg.push(fmt(get("with", "qct_avg_ms")));
                row_p99.push(fmt(get("without", "qct_p99_ms")));
                row_p99.push(fmt(get("with", "qct_p99_ms")));
            }
            avg.row(row_avg);
            p99.row(row_p99);
        }
        Report::new()
            .table_csv(avg, "fig15a.csv")
            .table_csv(p99, "fig15b.csv")
            .note(format!(
                "Shape check: DT degrades {worst_dt:.1}x with background (paper: up \
                 to ~6.6x avg); Occamy degrades {worst_occamy:.1}x (paper: ~none)."
            ))
    }
}
