//! Paper **Fig. 3**: healthy vs anomalous DT dynamics.
//!
//! Two queues share a buffer under DT. Queue 1 is congested and sits at
//! its threshold; at t = 1 ms a burst arrives at queue 2.
//!
//! - *Healthy* (Fig. 3a): the burst arrives just above queue 2's drain
//!   rate, so DT has time to walk queue 1 down along `T(t)` and both
//!   queues converge to the fair share.
//! - *Anomalous* (Fig. 3b): the burst arrives far faster than queue 1
//!   can drain; `T(t)` collapses below `q1`, and queue 2 starts dropping
//!   packets *before* reaching its fair share ("drop before fair").

use crate::scenario::{CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Series};
use crate::scenarios::CbrTestbed;
use occamy_core::BmKind;
use occamy_sim::{ps_to_ms, CbrDesc, MS, US};
use occamy_stats::Table;

const BUFFER: u64 = 1_200_000;

/// Registry entry for paper Fig. 3.
pub struct Fig03;

impl Scenario for Fig03 {
    fn name(&self) -> &'static str {
        "fig03"
    }

    fn description(&self) -> &'static str {
        "DT dynamics: healthy convergence vs anomalous drop-before-fair"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        // One cell per panel; the q2 arrival rate is the only parameter.
        Grid::new("fig03", scale)
            .axis("panel", ["healthy", "anomalous"])
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        // Healthy: queue 2 grows slowly (11 G in, 10 G out ⇒ 1 G net).
        // Anomalous: ~90 G net — far faster than queue 1 drains.
        let q2_rate_bps: u64 = match cell.str("panel") {
            "healthy" => 11_000_000_000,
            _ => 100_000_000_000,
        };
        let horizon = if cell.scale == Scale::Smoke {
            4 * MS
        } else {
            12 * MS
        };
        let mut w = CbrTestbed::paper_p4(BmKind::Dt, 1.0).build();
        // Queue 1 (toward host 2): persistently congested from t = 0.
        w.add_cbr(CbrDesc {
            host: 0,
            dst: 2,
            rate_bps: 20_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: horizon,
            budget_bytes: None,
        });
        // Queue 2 (toward host 3): burst begins at t = 1 ms.
        w.add_cbr(CbrDesc {
            host: 1,
            dst: 3,
            rate_bps: q2_rate_bps,
            pkt_len: 1_460,
            prio: 0,
            start_ps: MS,
            stop_ps: horizon,
            budget_bytes: None,
        });
        w.add_queue_sampler(0, 0, 100 * US, horizon);
        w.run_to_completion(horizon);

        let mut series = Series::new("queues", &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
        for s in w
            .metrics
            .queue_samples
            .iter()
            .filter(|s| s.t % (500 * US) == 0)
        {
            series.row(vec![
                ps_to_ms(s.t),
                s.qlens[2] as f64 / 1e3,
                s.qlens[3] as f64 / 1e3,
                s.thresholds[2] as f64 / 1e3,
            ]);
        }
        let q2_end = w
            .metrics
            .queue_samples
            .iter()
            .last()
            .map(|s| s.qlens[3])
            .unwrap_or(0);
        CellResult::new()
            .metric("q2_loss_rate", w.metrics.cbr[1].loss_rate())
            .metric("total_drops", w.metrics.drops.total_losses() as f64)
            .metric("q2_end_bytes", q2_end as f64)
            .metric("events", w.metrics.events_processed as f64)
            .with_series(series)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (panel, title, csv) in [
            (
                "healthy",
                "Fig 3a: healthy DT behavior (slow burst)",
                "fig03a.csv",
            ),
            (
                "anomalous",
                "Fig 3b: anomalous DT behavior (fast burst)",
                "fig03b.csv",
            ),
        ] {
            let Some(o) = outcomes.iter().find(|o| o.spec.str("panel") == panel) else {
                continue;
            };
            let mut t = Table::new(title, &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
            if let Some(series) = o.result.find_series("queues") {
                for row in &series.rows {
                    t.row(vec![
                        format!("{:.1}", row[0]),
                        format!("{:.1}", row[1]),
                        format!("{:.1}", row[2]),
                        format!("{:.1}", row[3]),
                    ]);
                }
            }
            report = report.table_csv(t, csv);
        }

        // Shape check. In the healthy case queue 2 grows slowly enough
        // that DT walks queue 1 down along T(t): queue 2 itself loses
        // (almost) nothing. In the anomalous case the burst outruns queue
        // 1's drain, T(t) collapses below q1, and queue 2 is dropped
        // heavily *before* receiving its fair share.
        let metric = |panel: &str, key: &str| {
            outcomes
                .iter()
                .find(|o| o.spec.str("panel") == panel)
                .and_then(|o| o.result.get(key))
                .unwrap_or(f64::NAN)
        };
        let fair = BUFFER / 3; // q1 = q2 = T = B/3 at α = 1 with 2 queues
        report.note(format!(
            "Shape check: fair share = {} KB; healthy q2 converges to {} KB \
             with q2 loss rate {:.4} (total drops {}, mostly q1's own \
             overload); anomalous q2 suffers loss rate {:.4} before its fair \
             share.",
            fair / 1000,
            metric("healthy", "q2_end_bytes") as u64 / 1000,
            metric("healthy", "q2_loss_rate"),
            metric("healthy", "total_drops") as u64,
            metric("anomalous", "q2_loss_rate"),
        ))
    }
}
