//! Paper **Fig. 23**: impact of the buffer size.
//!
//! The per-port-per-Gbps buffer is swept from 3.44 KB (Intel Tofino) to
//! 9.6 KB (Broadcom Trident2); background 40%, query size 40% of the
//! (varying) partition buffer.
//!
//! Paper shape: Occamy keeps a consistent advantage over DT across the
//! whole range (~37% better average QCT at 3.44 KB, ~40% at 9.6 KB).

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, BgPattern, LeafSpineScenario};

/// Registry entry for paper Fig. 23.
pub struct Fig23;

impl Scenario for Fig23 {
    fn name(&self) -> &'static str {
        "fig23"
    }

    fn description(&self) -> &'static str {
        "buffer-size sweep (Tofino to Trident2): slowdowns vs KB/port/Gbps"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        // KB per port per Gbps, paper's Fig. 23 x-axis.
        let sizes: Vec<f64> = match scale {
            Scale::Full => vec![3.44, 5.12, 9.6],
            Scale::Quick => vec![3.44, 9.6],
            Scale::Smoke => vec![5.12],
        };
        Grid::new("fig23", scale)
            .axis("KB_per_port_per_Gbps", sizes)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
        sc.bg = BgPattern::WebSearch { load: 0.4 };
        // Buffer per 8 ports = 8 × rate_Gbps × KB-per-port-per-Gbps.
        let gbps = sc.link_rate_bps as f64 / 1e9;
        sc.buffer_per_8ports = (8.0 * gbps * cell.f64("KB_per_port_per_Gbps") * 1_000.0) as u64;
        sc.query_bytes = sc.buffer_per_8ports * 40 / 100;
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (title, metric, csv) in [
            (
                "Fig 23a: average QCT slowdown",
                "qct_slowdown_avg",
                "fig23a.csv",
            ),
            (
                "Fig 23b: p99 QCT slowdown",
                "qct_slowdown_p99",
                "fig23b.csv",
            ),
            (
                "Fig 23c: overall bg average FCT slowdown",
                "bg_slowdown_avg",
                "fig23c.csv",
            ),
            (
                "Fig 23d: small bg p99 FCT slowdown",
                "small_bg_slowdown_p99",
                "fig23d.csv",
            ),
        ] {
            report = report.table_csv(
                matrix_table(title, outcomes, "KB_per_port_per_Gbps", "scheme", metric),
                csv,
            );
        }
        report.note(format!(
            "Shape check: columns {:?}; Occamy should lead DT at every \
             buffer size, shrinking QCT slowdown by roughly a third or more.",
            evaluated_scheme_names()
        ))
    }
}
