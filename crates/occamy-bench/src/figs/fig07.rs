//! Paper **Fig. 7**: CDFs of buffer and memory-bandwidth utilization
//! sampled at packet-drop instants.
//!
//! Leaf-spine fabric under DT with web-search background (no queries).
//! - Fig. 7a: buffer utilization on drop for α ∈ {0.5, 1} at 40% load —
//!   the paper's point is that DT drops while a large fraction of the
//!   buffer is still free (p99 utilization ≈ 66% at α = 0.5).
//! - Fig. 7b: memory-bandwidth utilization on drop for loads
//!   {20, 40, 90}% — even at 90% load the median free bandwidth is ~38%,
//!   the headroom Occamy's expulsion path exploits.
//!
//! The (α = 0.5, load = 40%) operating point appears in both panels, so
//! the grid enumerates the four distinct simulations explicitly.

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    explicit_grid, find, CellOutcome, CellResult, CellSpec, Report, Scale, Scenario, Value,
};
use crate::scenarios::{BgPattern, LeafSpineScenario};
use occamy_core::BmKind;
use occamy_stats::{Cdf, Table};

/// Registry entry for paper Fig. 7.
pub struct Fig07;

const QUANTILES: [(f64, &str); 5] = [
    (0.25, "p25"),
    (0.50, "p50"),
    (0.75, "p75"),
    (0.90, "p90"),
    (0.99, "p99"),
];

impl Scenario for Fig07 {
    fn name(&self) -> &'static str {
        "fig07"
    }

    fn description(&self) -> &'static str {
        "DT waste: buffer and memory-bandwidth utilization at drop instants"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let points: &[(f64, f64)] = match scale {
            Scale::Smoke => &[(0.5, 0.4)],
            _ => &[(0.5, 0.4), (1.0, 0.4), (0.5, 0.2), (0.5, 0.9)],
        };
        explicit_grid(
            "fig07",
            scale,
            points
                .iter()
                .map(|&(alpha, load)| {
                    vec![("alpha", Value::from(alpha)), ("load", Value::from(load))]
                })
                .collect(),
        )
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let mut sc = LeafSpineScenario::paper_scaled(BmKind::Dt, cell.f64("alpha"));
        sc.bg = BgPattern::WebSearch {
            load: cell.f64("load"),
        };
        sc.qps_per_host = 0.0; // background only, as in §3.1
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        let (world, _) = sc.run_world();
        let mut result = CellResult::new()
            .metric("drops", world.metrics.drop_buffer_util.len() as f64)
            .metric("events", world.metrics.events_processed as f64);
        for (prefix, samples) in [
            ("buf", &world.metrics.drop_buffer_util),
            ("bw", &world.metrics.drop_membw_util),
        ] {
            let mut cdf = Cdf::new();
            for &u in samples {
                cdf.add(u);
            }
            for (q, label) in QUANTILES {
                result = result.metric_opt(&format!("{prefix}_{label}"), cdf.quantile(q));
            }
        }
        result
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let cols = &["series", "drops", "p25", "p50", "p75", "p90", "p99"];
        let quantile_row = |label: &str, o: &CellOutcome, prefix: &str| -> Vec<String> {
            let mut row = vec![
                label.to_string(),
                format!("{}", o.result.get("drops").unwrap_or(0.0) as u64),
            ];
            for (_, q) in QUANTILES {
                row.push(
                    o.result
                        .get(&format!("{prefix}_{q}"))
                        .map(|v| format!("{:.1}", v * 100.0))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        };
        let at = |alpha: f64, load: f64| {
            find(
                outcomes,
                &[("alpha", &Value::from(alpha)), ("load", &Value::from(load))],
            )
        };

        let mut a = Table::new(
            "Fig 7a: buffer utilization (%) at drop instants, 40% load",
            cols,
        );
        for alpha in [0.5, 1.0] {
            if let Some(o) = at(alpha, 0.4) {
                a.row(quantile_row(&format!("alpha={alpha}"), o, "buf"));
            }
        }

        let mut b = Table::new(
            "Fig 7b: memory-bandwidth utilization (%) at drop instants (alpha=0.5)",
            cols,
        );
        for load in [0.2, 0.4, 0.9] {
            if let Some(o) = at(0.5, load) {
                b.row(quantile_row(&format!("load={:.0}%", load * 100.0), o, "bw"));
            }
        }

        let p99_half = at(0.5, 0.4).and_then(|o| o.result.get("buf_p99"));
        let median_bw_90 = at(0.5, 0.9).and_then(|o| o.result.get("bw_p50"));
        Report::new()
            .table_csv(a, "fig07a.csv")
            .table_csv(b, "fig07b.csv")
            .note(format!(
                "Shape check: paper reports p99 buffer utilization ~66% at α=0.5 \
                 (measured {}); and ≥~38% median *free* memory bandwidth even at \
                 90% load (measured free {}).",
                p99_half
                    .map(|v| format!("{:.0}%", v * 100.0))
                    .unwrap_or_else(|| "n/a".into()),
                median_bw_90
                    .map(|v| format!("{:.0}%", (1.0 - v) * 100.0))
                    .unwrap_or_else(|| "n/a".into()),
            ))
    }
}
