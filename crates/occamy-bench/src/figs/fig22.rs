//! Paper **Fig. 22**: performance under heavy (120%) background load.
//!
//! Occamy's expulsion needs redundant memory bandwidth; this experiment
//! overloads the fabric to probe the §4.5 concern. The paper's answer:
//! congestion is unbalanced in practice (incast congests down-links while
//! up-links idle), so spare bandwidth remains and Occamy still wins.

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, BgPattern, LeafSpineScenario};

/// Registry entry for paper Fig. 22.
pub struct Fig22;

impl Scenario for Fig22 {
    fn name(&self) -> &'static str {
        "fig22"
    }

    fn description(&self) -> &'static str {
        "heavy 120% background load: does expulsion survive bandwidth pressure?"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![20, 60, 100],
            Scale::Quick => vec![40, 100],
            Scale::Smoke => vec![40],
        };
        Grid::new("fig22", scale)
            .axis("query_pct_buffer", sizes)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
        sc.bg = BgPattern::WebSearch { load: 1.2 };
        sc.query_bytes = sc.buffer_per_8ports * cell.u64("query_pct_buffer") / 100;
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (title, metric, csv) in [
            (
                "Fig 22a: average QCT slowdown (120% load)",
                "qct_slowdown_avg",
                "fig22a.csv",
            ),
            (
                "Fig 22b: p99 QCT slowdown (120% load)",
                "qct_slowdown_p99",
                "fig22b.csv",
            ),
            (
                "Fig 22c: overall bg average FCT slowdown",
                "bg_slowdown_avg",
                "fig22c.csv",
            ),
            (
                "Fig 22d: small bg p99 FCT slowdown",
                "small_bg_slowdown_p99",
                "fig22d.csv",
            ),
        ] {
            report = report.table_csv(
                matrix_table(title, outcomes, "query_pct_buffer", "scheme", metric),
                csv,
            );
        }
        report.note(format!(
            "Shape check: columns {:?}; Occamy must keep an edge over \
             DT/ABM even with the fabric overloaded (paper §6.4, Fig. 22).",
            evaluated_scheme_names()
        ))
    }
}
