//! **Extension ablation**: sensitivity of Occamy to the expulsion
//! bandwidth budget (the §4.5 discussion, beyond the paper's figures).
//!
//! The expulsion token bucket is refilled at `factor ×` the partition's
//! forwarding capacity. `factor = 0` disables expulsion entirely — by
//! the paper's argument Occamy must then degenerate to DT with the same
//! α (which, at α = 8, is DT with almost no reserve, i.e. *worse* than
//! tuned DT). Because transmission always pre-empts expulsion, the
//! budget only matters once it exceeds the *consumed* memory bandwidth:
//! redundancy is capacity minus utilization (the paper's Fig. 7b
//! framing), so factors below the sustained ~50–60% utilization behave
//! like factor 0, and the benefit switches on between 0.5 and 1.

use crate::figs::scale_testbed;
use crate::report::fmt;
use crate::scenario::{
    distinct, find, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::TestbedScenario;
use occamy_core::BmKind;
use occamy_stats::Table;

const FACTORS: [f64; 5] = [0.0, 0.05, 0.25, 0.5, 1.0];

/// Registry entry for the expulsion-bandwidth ablation.
pub struct AblationTokenRate;

impl Scenario for AblationTokenRate {
    fn name(&self) -> &'static str {
        "ablation_token_rate"
    }

    fn description(&self) -> &'static str {
        "extension: Occamy QCT vs expulsion-bandwidth budget, with tuned-DT reference"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![40, 80, 120],
            Scale::Quick => vec![80],
            Scale::Smoke => vec![80],
        };
        let mut variants: Vec<String> = FACTORS.iter().map(|f| format!("factor_{f}")).collect();
        variants.push("DT_alpha1".to_string());
        if scale == Scale::Smoke {
            variants = vec!["factor_1".into(), "DT_alpha1".into()];
        }
        Grid::new("ablation_token_rate", scale)
            .axis("query_pct_buffer", sizes)
            .axis("variant", variants)
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let bytes = 410_000 * cell.u64("query_pct_buffer") / 100;
        let variant = cell.str("variant");
        let mut sc = if let Some(factor) = variant.strip_prefix("factor_") {
            let mut sc = TestbedScenario::paper_dpdk(BmKind::Occamy, 8.0).with_query_bytes(bytes);
            sc.sim.expel_rate_factor = factor.parse().expect("factor value");
            sc
        } else {
            // Tuned-DT reference column.
            TestbedScenario::paper_dpdk(BmKind::Dt, 1.0).with_query_bytes(bytes)
        };
        sc.seed = cell.seed;
        scale_testbed(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let variants = distinct(outcomes, "variant");
        let mut cols: Vec<String> = vec!["query_pct_buffer".into()];
        cols.extend(variants.iter().map(|v| v.to_string()));
        let colrefs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        let mut avg = Table::new(
            "Ablation: Occamy avg QCT (ms) vs expulsion-bandwidth factor",
            &colrefs,
        );
        let mut p99 = Table::new(
            "Ablation: Occamy p99 QCT (ms) vs expulsion-bandwidth factor",
            &colrefs,
        );
        for pct in distinct(outcomes, "query_pct_buffer") {
            let mut row_avg = vec![pct.to_string()];
            let mut row_p99 = vec![pct.to_string()];
            for v in &variants {
                let o = find(outcomes, &[("query_pct_buffer", &pct), ("variant", v)]);
                row_avg.push(o.map_or_else(|| "-".into(), |o| fmt(o.result.get("qct_avg_ms"))));
                row_p99.push(o.map_or_else(|| "-".into(), |o| fmt(o.result.get("qct_p99_ms"))));
            }
            avg.row(row_avg);
            p99.row(row_p99);
        }
        Report::new()
            .table_csv(avg, "ablation_token_rate_avg.csv")
            .table_csv(p99, "ablation_token_rate_p99.csv")
            .note(
                "Shape check: factors at or below the sustained utilization \
                 (~0.5 here) behave like no expulsion at all; the full-rate \
                 budget restores Occamy's advantage over the tuned-DT reference \
                 — redundant bandwidth is what remains above utilization.",
            )
    }
}
