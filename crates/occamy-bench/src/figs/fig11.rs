//! Paper **Fig. 11**: queue-length evolution under Occamy vs DT with
//! α ∈ {1, 4} on the P4-testbed scenario.
//!
//! Topology (Fig. 12a): a sender with two fast NICs, two 10 G receivers,
//! one 1.2 MB shared-buffer switch. Long-lived traffic entrenches
//! queue 1; a bursty stream then arrives at queue 2. The paper's shape:
//! with Occamy, `q1` is actively drained (head-dropped) as soon as the
//! burst arrives, so `q2` climbs to the fair share before losing a
//! packet; with DT and a large α (little reserve), `q2` is choked far
//! below the fair share while `q1` stays entrenched.
//!
//! Timescale note: the paper's x-axis (µs) is inconsistent with draining
//! ~1 MB at 10 Gbps (~0.8 ms); we report milliseconds.

use crate::scenario::{CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario, Series};
use crate::scenarios::{bm_kind_by_name, CbrTestbed};
use occamy_sim::{ps_to_ms, CbrDesc, MS, US};
use occamy_stats::Table;

const BUFFER: u64 = 1_200_000;
const BURST_AT: u64 = 3 * MS;

/// Registry entry for paper Fig. 11.
pub struct Fig11;

impl Scenario for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn description(&self) -> &'static str {
        "queue evolution under a burst: Occamy drains the entrenched queue, DT cannot"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let alphas: Vec<f64> = match scale {
            Scale::Smoke => vec![1.0],
            _ => vec![1.0, 4.0],
        };
        Grid::new("fig11", scale)
            .axis("scheme", ["Occamy", "DT"])
            .axis("alpha", alphas)
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let kind = bm_kind_by_name(cell.str("scheme")).expect("known scheme");
        let tb = CbrTestbed::paper_p4(kind, cell.f64("alpha"));
        let horizon = if cell.scale == Scale::Smoke {
            5 * MS
        } else {
            8 * MS
        };
        let mut w = tb.build();
        // Long-lived traffic: 20 G → 10 G, from t = 0, entrenches queue 1.
        w.add_cbr(CbrDesc {
            host: 0,
            dst: 2,
            rate_bps: 20_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: horizon,
            budget_bytes: None,
        });
        // Bursty traffic: 100 G line-rate burst of 800 KB at t = BURST_AT.
        w.add_cbr(CbrDesc {
            host: 1,
            dst: 3,
            rate_bps: tb.fast_rate_bps,
            pkt_len: 1_460,
            prio: 0,
            start_ps: BURST_AT,
            stop_ps: horizon,
            budget_bytes: Some(800_000),
        });
        w.add_queue_sampler(0, 0, 50 * US, horizon);
        w.run_to_completion(horizon);

        let mut series = Series::new("queues", &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
        for s in w
            .metrics
            .queue_samples
            .iter()
            .filter(|s| s.t % (250 * US) == 0)
        {
            series.row(vec![
                ps_to_ms(s.t),
                s.qlens[2] as f64 / 1e3,
                s.qlens[3] as f64 / 1e3,
                s.thresholds[3] as f64 / 1e3,
            ]);
        }
        let q2_peak = w
            .metrics
            .queue_samples
            .iter()
            .map(|s| s.qlens[3])
            .max()
            .unwrap_or(0);
        CellResult::new()
            .metric("q2_peak_bytes", q2_peak as f64)
            .metric("total_drops", w.metrics.drops.total_losses() as f64)
            .metric("events", w.metrics.events_processed as f64)
            .with_series(series)
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        let panels = [
            ("Occamy", 1.0, "Fig 11a: Occamy, α = 1", "fig11a.csv"),
            ("Occamy", 4.0, "Fig 11b: Occamy, α = 4", "fig11b.csv"),
            ("DT", 1.0, "Fig 11c: DT, α = 1", "fig11c.csv"),
            ("DT", 4.0, "Fig 11d: DT, α = 4", "fig11d.csv"),
        ];
        let cell = |scheme: &str, alpha: f64| {
            outcomes
                .iter()
                .find(|o| o.spec.str("scheme") == scheme && o.spec.f64("alpha") == alpha)
        };
        let mut peaks: Vec<(String, u64, u64)> = Vec::new();
        for (scheme, alpha, title, csv) in panels {
            let Some(o) = cell(scheme, alpha) else {
                continue;
            };
            let mut t = Table::new(title, &["t_ms", "q1_KB", "q2_KB", "T_KB"]);
            if let Some(series) = o.result.find_series("queues") {
                for row in &series.rows {
                    t.row(vec![
                        format!("{:.2}", row[0]),
                        format!("{:.0}", row[1]),
                        format!("{:.0}", row[2]),
                        format!("{:.0}", row[3]),
                    ]);
                }
            }
            report = report.table_csv(t, csv);
            // Fair share with two congested queues: αB/(1+2α).
            let fair = (alpha * BUFFER as f64 / (1.0 + 2.0 * alpha)) as u64 / 1000;
            peaks.push((
                format!("{scheme} α{alpha}"),
                o.result.get("q2_peak_bytes").unwrap_or(0.0) as u64 / 1000,
                fair,
            ));
        }
        let summary = peaks
            .iter()
            .map(|(label, peak, fair)| format!("{label} {peak}/{fair}"))
            .collect::<Vec<_>>()
            .join("  ");
        report
            .note(format!(
                "Shape check (q2 peak vs fair share, KB): {summary}"
            ))
            .note(
                "Expected: Occamy reaches the fair share at both αs; DT reaches it \
                 only at α = 1 and is choked at α = 4 (paper Fig. 11d).",
            )
    }
}
