//! Paper **Fig. 13**: end-to-end burst absorption on the DPDK
//! software-switch testbed.
//!
//! 8 hosts × 10 Gbps, 410 KB shared buffer, DCTCP, Poisson incast
//! queries at 1% load over a 50% web-search background. Four panels per
//! query size (as % of buffer): average QCT, 99th-percentile QCT,
//! average background FCT, 99th-percentile small-background FCT.
//!
//! Paper shape: Occamy ≈ Pushout < ABM < DT on QCT (up to ~55% better
//! average QCT than DT); background FCT comparable across schemes.

use crate::figs::scale_testbed;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, TestbedScenario};

/// Registry entry for paper Fig. 13.
pub struct Fig13;

impl Scenario for Fig13 {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn description(&self) -> &'static str {
        "end-to-end burst absorption on the DPDK testbed: QCT and FCT vs query size"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![20, 40, 60, 80, 100, 120, 140],
            Scale::Quick => vec![40, 80, 120],
            Scale::Smoke => vec![80],
        };
        Grid::new("fig13", scale)
            .axis("query_pct_buffer", sizes)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let bytes = 410_000 * cell.u64("query_pct_buffer") / 100;
        let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(bytes);
        sc.seed = cell.seed;
        scale_testbed(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (title, metric, csv) in [
            ("Fig 13a: average QCT (ms)", "qct_avg_ms", "fig13a.csv"),
            ("Fig 13b: p99 QCT (ms)", "qct_p99_ms", "fig13b.csv"),
            (
                "Fig 13c: overall background average FCT (ms)",
                "bg_fct_avg_ms",
                "fig13c.csv",
            ),
            (
                "Fig 13d: small background p99 FCT (ms)",
                "small_bg_fct_p99_ms",
                "fig13d.csv",
            ),
        ] {
            report = report.table_csv(
                matrix_table(title, outcomes, "query_pct_buffer", "scheme", metric),
                csv,
            );
        }
        report.note(format!(
            "Shape check: columns ordered {:?}; expect Occamy ≈ Pushout \
             to beat ABM and DT on (a)/(b), with (c) roughly flat across \
             schemes.",
            evaluated_scheme_names()
        ))
    }
}
