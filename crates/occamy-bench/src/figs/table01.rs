//! Paper **Table 1**: hardware cost of Occamy's components.
//!
//! The paper synthesizes 286 lines of Verilog with Vivado (LUTs/FFs) and
//! Design Compiler on FreePDK45 (timing/area/power). We reproduce the
//! table through the analytic gate-level model in `occamy_hw::cost`,
//! calibrated at the paper's design point (64 queues, 19-bit lengths),
//! and extend it with the scaling the paper argues about: the head-drop
//! selector versus the Maximum Finder that Pushout would need.
//!
//! The grid has one cell per queue count of the scaling study; the
//! fixed-design-point model rows are computed by the first cell.

use crate::scenario::{CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario};
use occamy_hw::cost;
use occamy_stats::Table;

/// Registry entry for paper Table 1.
pub struct Table01;

fn cost_metrics(mut result: CellResult, name: &str, c: &cost::HwCost) -> CellResult {
    for (key, v) in [
        ("luts", c.luts as f64),
        ("ffs", c.flip_flops as f64),
        ("timing_ns", c.timing_ns),
        ("area_mm2", c.area_mm2),
        ("power_mw", c.power_mw),
    ] {
        result = result.metric(&format!("{name}_{key}"), v);
    }
    result
}

fn cost_row(name: &str, r: &CellResult, prefix: &str) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{}", r.get(&format!("{prefix}_luts")).unwrap_or(0.0) as u64),
        format!("{}", r.get(&format!("{prefix}_ffs")).unwrap_or(0.0) as u64),
        format!(
            "{:.2}",
            r.get(&format!("{prefix}_timing_ns")).unwrap_or(0.0)
        ),
        format!(
            "{:.2e}",
            r.get(&format!("{prefix}_area_mm2")).unwrap_or(0.0)
        ),
        format!("{:.3}", r.get(&format!("{prefix}_power_mw")).unwrap_or(0.0)),
    ]
}

impl Scenario for Table01 {
    fn name(&self) -> &'static str {
        "table01"
    }

    fn description(&self) -> &'static str {
        "hardware cost model: Occamy's circuits vs the Maximum Finder, with scaling"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let queues: Vec<u64> = match scale {
            Scale::Smoke => vec![64],
            _ => vec![32, 64, 128, 256, 512, 1024],
        };
        Grid::new("table01", scale).axis("queues", queues).build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let n = cell.u64("queues") as usize;
        // Scaling study at 20-bit queue lengths.
        let s = cost::selector(n, 20);
        let m = cost::maxfinder(n, 20);
        let mut result = CellResult::new();
        result = cost_metrics(result, "selector20", &s);
        result = cost_metrics(result, "maxfinder20", &m);
        if cell.index == 0 {
            // The fixed design-point model (paper's 64 queues, 19 bits)
            // only needs computing once.
            result = cost_metrics(
                result,
                "model_selector",
                &cost::selector(cost::PAPER_NUM_QUEUES, cost::PAPER_QLEN_BITS),
            );
            result = cost_metrics(result, "model_arbiter", &cost::fixed_priority_arbiter());
            result = cost_metrics(result, "model_executor", &cost::head_drop_executor());
            result = cost_metrics(
                result,
                "model_total",
                &cost::occamy_total(cost::PAPER_NUM_QUEUES, cost::PAPER_QLEN_BITS),
            );
        }
        result
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let cols = &["module", "LUTs", "FFs", "timing_ns", "area_mm2", "power_mW"];
        let mut report = Report::new();

        if let Some(first) = outcomes.first() {
            let mut model = Table::new("Table 1 (model): Occamy hardware cost at 64 queues", cols);
            model.row(cost_row("Selector", &first.result, "model_selector"));
            model.row(cost_row("Arbiter", &first.result, "model_arbiter"));
            model.row(cost_row("Executor", &first.result, "model_executor"));
            model.row(cost_row("Total", &first.result, "model_total"));
            report = report.table_csv(model, "table01_model.csv");
        }

        let mut paper = Table::new(
            "Table 1 (paper): reported by Vivado / Design Compiler",
            cols,
        );
        for (name, c) in [
            ("Selector", &cost::PAPER_SELECTOR),
            ("Arbiter", &cost::PAPER_ARBITER),
            ("Executor", &cost::PAPER_EXECUTOR),
        ] {
            paper.row(vec![
                name.to_string(),
                c.luts.to_string(),
                c.flip_flops.to_string(),
                format!("{:.2}", c.timing_ns),
                format!("{:.2e}", c.area_mm2),
                format!("{:.3}", c.power_mw),
            ]);
        }
        report = report.table(paper);

        let mut scaling = Table::new(
            "Extension: selector vs Maximum Finder (20-bit queue lengths)",
            &[
                "queues",
                "selector_LUTs",
                "selector_ns",
                "maxfinder_LUTs",
                "maxfinder_ns",
                "MF_misses_1GHz",
            ],
        );
        for o in outcomes {
            let r = &o.result;
            let mf_ns = r.get("maxfinder20_timing_ns").unwrap_or(0.0);
            scaling.row(vec![
                o.spec.u64("queues").to_string(),
                format!("{}", r.get("selector20_luts").unwrap_or(0.0) as u64),
                format!("{:.2}", r.get("selector20_timing_ns").unwrap_or(0.0)),
                format!("{}", r.get("maxfinder20_luts").unwrap_or(0.0) as u64),
                format!("{:.2}", mf_ns),
                if mf_ns > 1.0 { "yes" } else { "no" }.to_string(),
            ]);
        }
        report.table_csv(scaling, "table01_scaling.csv").note(
            "Shape check: selector dominates Occamy's cost; total stays under \
             0.03 mm2 / 1 mW; the Maximum Finder misses a 1 GHz cycle at switch \
             scale while the selector does not (paper Difficulty 3).",
        )
    }
}
