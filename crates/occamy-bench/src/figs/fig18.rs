//! Paper **Fig. 18**: performance with all-to-all background traffic
//! (the AI-workload scenario).
//!
//! Background: repeated all-to-all rounds of identical-size flows; the
//! flow size is swept 16 KB – 2 MB. Incast queries run on top.
//!
//! Paper shape: Occamy improves average QCT by up to ~33% and p99
//! background FCT by up to ~88% versus DT.

use crate::figs::scale_leaf_spine;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{evaluated_scheme_names, scheme_by_name, BgPattern, LeafSpineScenario};

/// Registry entry for paper Fig. 18.
pub struct Fig18;

impl Scenario for Fig18 {
    fn name(&self) -> &'static str {
        "fig18"
    }

    fn description(&self) -> &'static str {
        "all-to-all background (AI workload): slowdowns vs collective flow size"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let sizes: Vec<u64> = match scale {
            Scale::Full => vec![32_000, 128_000, 512_000, 2_000_000],
            Scale::Quick => vec![64_000, 512_000],
            Scale::Smoke => vec![128_000],
        };
        Grid::new("fig18", scale)
            .axis("flow_size", sizes)
            .axis("scheme", evaluated_scheme_names())
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let (kind, alpha) = scheme_by_name(cell.str("scheme")).expect("evaluated scheme");
        let mut sc = LeafSpineScenario::paper_scaled(kind, alpha);
        sc.bg = BgPattern::AllToAll {
            flow_bytes: cell.u64("flow_size"),
            load: 0.4,
        };
        sc.query_bytes = sc.buffer_per_8ports * 40 / 100;
        sc.seed = cell.seed;
        scale_leaf_spine(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        Report::new()
            .table_csv(
                matrix_table(
                    "Fig 18a: average QCT slowdown",
                    outcomes,
                    "flow_size",
                    "scheme",
                    "qct_slowdown_avg",
                ),
                "fig18a.csv",
            )
            .table_csv(
                matrix_table(
                    "Fig 18b: overall bg p99 FCT slowdown",
                    outcomes,
                    "flow_size",
                    "scheme",
                    "bg_slowdown_p99",
                ),
                "fig18b.csv",
            )
            .note(format!(
                "Shape check: columns {:?}; Occamy ≈ Pushout should lead on \
                 both panels, most visibly at mid flow sizes.",
                evaluated_scheme_names()
            ))
    }
}
