//! Paper **Fig. 16**: the impact of the `α` parameter on DT and Occamy
//! (the §6.3 parameter study).
//!
//! Same two-queue DRR setup as Fig. 14 (query DCTCP + background CUBIC).
//! Paper shape: DT is best at α ∈ {1, 2} and degrades at both extremes
//! (inefficient when small, anomalous when large); Occamy improves
//! monotonically with α and saturates around α = 4–8 — which is why the
//! paper recommends α = 8.

use crate::figs::scale_testbed;
use crate::scenario::{
    matrix_table, CellOutcome, CellResult, CellSpec, Grid, Report, Scale, Scenario,
};
use crate::scenarios::{bm_kind_by_name, TestbedBg, TestbedScenario};
use occamy_sim::topology::SchedKind;
use occamy_sim::CcAlgo;

/// Registry entry for paper Fig. 16.
pub struct Fig16;

impl Scenario for Fig16 {
    fn name(&self) -> &'static str {
        "fig16"
    }

    fn description(&self) -> &'static str {
        "alpha parameter study: DT degrades at extremes, Occamy saturates upward"
    }

    fn grid(&self, scale: Scale) -> Vec<CellSpec> {
        let (alphas, sizes): (Vec<f64>, Vec<u64>) = match scale {
            Scale::Full => (vec![0.5, 1.0, 2.0, 4.0, 8.0], vec![100, 120, 140, 160, 180]),
            Scale::Quick => (vec![0.5, 1.0, 2.0, 4.0, 8.0], vec![120, 180]),
            Scale::Smoke => (vec![1.0, 8.0], vec![140]),
        };
        Grid::new("fig16", scale)
            .axis("scheme", ["DT", "Occamy"])
            .axis("query_pct_buffer", sizes)
            .axis("alpha", alphas)
            .build()
    }

    fn run(&self, cell: &CellSpec) -> CellResult {
        let kind = bm_kind_by_name(cell.str("scheme")).expect("known scheme");
        let alpha = cell.f64("alpha");
        let bytes = 410_000 * cell.u64("query_pct_buffer") / 100;
        let mut sc = TestbedScenario::paper_dpdk(kind, alpha).with_query_bytes(bytes);
        sc.classes = 2;
        sc.alpha_per_class = vec![alpha; 2];
        sc.sched = SchedKind::Drr { quantum: 1_500 };
        sc.bg = Some(TestbedBg {
            load: 0.5,
            cc: CcAlgo::Cubic,
            class: 1,
        });
        sc.seed = cell.seed;
        scale_testbed(&mut sc, cell.scale);
        sc.run().into_cell()
    }

    fn emit(&self, outcomes: &[CellOutcome]) -> Report {
        let mut report = Report::new();
        for (scheme, label, csv) in [
            ("DT", "Fig 16a: DT QCT (ms) vs α", "fig16a"),
            ("Occamy", "Fig 16b: Occamy QCT (ms) vs α", "fig16b"),
        ] {
            let subset: Vec<CellOutcome> = outcomes
                .iter()
                .filter(|o| o.spec.str("scheme") == scheme)
                .cloned()
                .collect();
            // The paper plots p99; in our harsher incast the
            // non-preemptive p99 saturates at min-RTO, so the average
            // reveals the α trend (how *often* queries time out) — print
            // both.
            report = report
                .table_csv(
                    matrix_table(
                        &format!("{label} (p99)"),
                        &subset,
                        "query_pct_buffer",
                        "alpha",
                        "qct_p99_ms",
                    ),
                    &format!("{csv}_p99.csv"),
                )
                .table_csv(
                    matrix_table(
                        &format!("{label} (average)"),
                        &subset,
                        "query_pct_buffer",
                        "alpha",
                        "qct_avg_ms",
                    ),
                    &format!("{csv}_avg.csv"),
                );
        }
        report.note(
            "Shape check: DT best near α ∈ {1, 2}, worse at 0.5 and 8; \
             Occamy monotonically better with α, saturating by α = 4–8.",
        )
    }
}
