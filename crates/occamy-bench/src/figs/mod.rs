//! One module per registered scenario (paper figure, table or extension
//! study). Each module is a ~50–150-line [`crate::scenario::Scenario`]
//! implementation: a parameter grid, a per-cell runner and an emitter
//! that rebuilds the tables the original per-figure binaries printed.

use crate::scenario::Scale;
use crate::scenarios::{LeafSpineScenario, TestbedScenario};
use occamy_sim::MS;

/// Applies the shared duration/rate reductions for the DPDK testbed
/// scenarios: `Quick` mirrors the old binaries' `OCCAMY_QUICK` settings;
/// `Smoke` shortens further and raises the query rate so a near-trivial
/// run still completes queries (the same recipe as the crate's
/// `tiny_testbed_run_is_sane` test).
pub(crate) fn scale_testbed(sc: &mut TestbedScenario, scale: Scale) {
    match scale {
        Scale::Full => {}
        Scale::Quick => {
            sc.duration_ps = 100 * MS;
            sc.drain_ps = 300 * MS;
        }
        Scale::Smoke => {
            sc.duration_ps = 30 * MS;
            sc.drain_ps = 200 * MS;
            sc.qps_per_host *= 20.0;
        }
    }
}

/// The leaf-spine counterpart of [`scale_testbed`].
pub(crate) fn scale_leaf_spine(sc: &mut LeafSpineScenario, scale: Scale) {
    match scale {
        Scale::Full => {}
        Scale::Quick => {
            sc.duration_ps = 10 * MS;
            sc.drain_ps = 60 * MS;
        }
        Scale::Smoke => {
            sc.duration_ps = 3 * MS;
            sc.drain_ps = 40 * MS;
            sc.qps_per_host *= 4.0;
        }
    }
}

pub mod ablation_token_rate;
pub mod fig03;
pub mod fig06;
pub mod fig07;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod perf_transport;
pub mod table01;
