//! The declarative scenario layer: parameter grids, per-cell results and
//! report assembly.
//!
//! A [`Scenario`] describes one experiment (one figure or table of the
//! paper, or an extension study) as three pure pieces:
//!
//! 1. a **parameter grid** ([`Scenario::grid`]) — every independent
//!    simulation the experiment needs, one [`CellSpec`] each, with a
//!    deterministic per-cell seed;
//! 2. a **cell runner** ([`Scenario::run`]) — executes exactly one cell
//!    and distills it into a flat [`CellResult`] (named scalar metrics
//!    plus optional time series);
//! 3. an **emitter** ([`Scenario::emit`]) — folds all cell outcomes into
//!    the human-readable tables, CSV files and shape-check notes the old
//!    per-figure binaries printed.
//!
//! Because cells are independent and seeded, the runner (see
//! [`crate::runner`]) can execute them in parallel in any order and the
//! output is still reproducible.

use occamy_stats::{Json, Table};
use std::fmt;
use std::time::Duration;

// -------------------------------------------------------------------
// Scale
// -------------------------------------------------------------------

/// How much work a grid should generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper-faithful sweep (minutes of wall clock per scenario).
    Full,
    /// Reduced sweeps and durations for CI (`OCCAMY_QUICK=1` or
    /// `--quick`).
    Quick,
    /// A near-trivial grid that must finish in seconds — used by the
    /// registry smoke test to prove every scenario runs end to end.
    Smoke,
}

impl Scale {
    /// Resolves the scale from the environment: [`Scale::Quick`] when
    /// `OCCAMY_QUICK=1`, else [`Scale::Full`].
    pub fn from_env() -> Scale {
        if crate::quick_mode() {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Whether durations should be shortened (anything but `Full`).
    pub fn is_reduced(self) -> bool {
        self != Scale::Full
    }

    /// Parses the `Display` spelling back (shard files record the scale
    /// a plan was generated at).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Full => write!(f, "full"),
            Scale::Quick => write!(f, "quick"),
            Scale::Smoke => write!(f, "smoke"),
        }
    }
}

// -------------------------------------------------------------------
// Parameter values and cells
// -------------------------------------------------------------------

/// One grid-parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (sizes, counts, percentages).
    U64(u64),
    /// A float (α values, load fractions).
    F64(f64),
    /// A symbolic value (scheme names, panel labels).
    Str(String),
}

impl Value {
    /// JSON form of the value.
    pub fn to_json(&self) -> Json {
        match self {
            Value::U64(v) => Json::from(*v),
            Value::F64(v) => Json::from(*v),
            Value::Str(s) => Json::from(s.as_str()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One point of a scenario's parameter grid: the cell's parameters, its
/// position, its deterministic seed and the scale it was generated for.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position within the grid (stable across runs).
    pub index: usize,
    /// Deterministic seed derived from the scenario name and the cell
    /// index — workload generation inside the cell must use this.
    pub seed: u64,
    /// The scale the grid was generated for (cells shorten their
    /// durations on reduced scales).
    pub scale: Scale,
    params: Vec<(String, Value)>,
}

impl CellSpec {
    /// Reconstructs a cell from its serialized parts — the
    /// deserialization path of shard plan files (see [`crate::shard`]).
    /// The regular construction path is [`Grid::build`], which derives
    /// `seed` from the grid name and `index`.
    pub fn from_parts(
        index: usize,
        seed: u64,
        scale: Scale,
        params: Vec<(String, Value)>,
    ) -> CellSpec {
        CellSpec {
            index,
            seed,
            scale,
            params,
        }
    }

    /// Looks a parameter up by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn expect(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("cell has no parameter '{key}' (params: {})", self.label()))
    }

    /// The `u64` parameter `key`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or not a `U64`.
    pub fn u64(&self, key: &str) -> u64 {
        match self.expect(key) {
            Value::U64(v) => *v,
            other => panic!("parameter '{key}' is {other:?}, not u64"),
        }
    }

    /// The numeric parameter `key` as `f64` (accepts `U64` too).
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or a string.
    pub fn f64(&self, key: &str) -> f64 {
        match self.expect(key) {
            Value::F64(v) => *v,
            Value::U64(v) => *v as f64,
            other => panic!("parameter '{key}' is {other:?}, not numeric"),
        }
    }

    /// The string parameter `key`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is missing or not a string.
    pub fn str(&self, key: &str) -> &str {
        match self.expect(key) {
            Value::Str(s) => s.as_str(),
            other => panic!("parameter '{key}' is {other:?}, not a string"),
        }
    }

    /// All parameters, in axis order.
    pub fn params(&self) -> &[(String, Value)] {
        &self.params
    }

    /// A compact `key=value key=value` label for logs.
    pub fn label(&self) -> String {
        self.params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// JSON form: `{params: {...}, seed: n}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "params",
                Json::obj(self.params.iter().map(|(k, v)| (k.clone(), v.to_json()))),
            ),
            ("seed", Json::from(self.seed)),
        ])
    }
}

// -------------------------------------------------------------------
// Grid builder
// -------------------------------------------------------------------

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cartesian-product grid builder with deterministic per-cell seeds.
///
/// Axes multiply in declaration order: the *last* axis varies fastest,
/// so `axis("size", ..).axis("scheme", ..)` yields all schemes for the
/// first size, then all schemes for the second — the iteration order the
/// old figure binaries used.
#[derive(Debug, Clone)]
pub struct Grid {
    name: &'static str,
    scale: Scale,
    axes: Vec<(String, Vec<Value>)>,
}

impl Grid {
    /// Starts a grid for the scenario `name` at `scale`.
    pub fn new(name: &'static str, scale: Scale) -> Self {
        Grid {
            name,
            scale,
            axes: Vec::new(),
        }
    }

    /// Adds an axis with the given values.
    pub fn axis<V: Into<Value>>(mut self, key: &str, values: impl IntoIterator<Item = V>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "axis '{key}' has no values");
        self.axes.push((key.to_string(), values));
        self
    }

    /// Materializes every cell of the cartesian product.
    pub fn build(self) -> Vec<CellSpec> {
        let total: usize = self.axes.iter().map(|(_, v)| v.len()).product();
        let base = fnv1a(self.name);
        let mut cells = Vec::with_capacity(total);
        for index in 0..total {
            let mut rem = index;
            let mut params = Vec::with_capacity(self.axes.len());
            // Decode `index` in mixed radix, last axis fastest.
            let mut stride = total;
            for (key, values) in &self.axes {
                stride /= values.len();
                let pick = rem / stride;
                rem %= stride;
                params.push((key.clone(), values[pick].clone()));
            }
            cells.push(CellSpec {
                index,
                seed: splitmix(base ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
                scale: self.scale,
                params,
            });
        }
        cells
    }
}

/// Builds a grid from explicitly enumerated cells, for experiments whose
/// parameter sets are not a full cartesian product (e.g. Fig. 7's two
/// panels sharing one operating point). Seeds follow the same
/// name-and-index derivation as [`Grid`].
pub fn explicit_grid(
    name: &'static str,
    scale: Scale,
    cells: Vec<Vec<(&str, Value)>>,
) -> Vec<CellSpec> {
    let base = fnv1a(name);
    cells
        .into_iter()
        .enumerate()
        .map(|(index, params)| CellSpec {
            index,
            seed: splitmix(base ^ (index as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
            scale,
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        })
        .collect()
}

// -------------------------------------------------------------------
// Cell results
// -------------------------------------------------------------------

/// A named time series produced by one cell (queue evolution, CDF
/// quantiles, …): column names plus rows of numbers.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name, unique within the cell.
    pub name: String,
    /// Column names, one per entry of each row.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Series {
            name: name.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "series row width mismatch");
        self.rows.push(row);
    }

    /// JSON form of the series.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "columns",
                Json::arr(self.columns.iter().map(|c| Json::from(c.as_str()))),
            ),
            (
                "rows",
                Json::arr(
                    self.rows
                        .iter()
                        .map(|r| Json::arr(r.iter().map(|&v| Json::from(v)))),
                ),
            ),
        ])
    }
}

/// The distilled output of one cell: named scalar metrics (insertion
/// ordered) plus optional series.
#[derive(Debug, Clone, Default)]
pub struct CellResult {
    metrics: Vec<(String, f64)>,
    series: Vec<Series>,
}

impl CellResult {
    /// Creates an empty result.
    pub fn new() -> Self {
        CellResult::default()
    }

    /// Adds a scalar metric.
    pub fn metric(mut self, key: &str, v: f64) -> Self {
        self.metrics.push((key.to_string(), v));
        self
    }

    /// Adds a scalar metric when present (missing statistics are simply
    /// omitted and later format as `-`).
    pub fn metric_opt(self, key: &str, v: Option<f64>) -> Self {
        match v {
            Some(v) => self.metric(key, v),
            None => self,
        }
    }

    /// Attaches a series.
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Looks a metric up.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// Formats a metric with 3 decimals, `-` when absent.
    pub fn fmt(&self, key: &str) -> String {
        crate::report::fmt(self.get(key))
    }

    /// All metrics in insertion order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// All series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Finds a series by name.
    pub fn find_series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Whether the cell produced nothing at all.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.series.is_empty()
    }

    /// JSON form: `{metrics: {...}, series: [...]}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![(
            "metrics".to_string(),
            Json::obj(
                self.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::from(*v))),
            ),
        )];
        if !self.series.is_empty() {
            fields.push((
                "series".to_string(),
                Json::arr(self.series.iter().map(Series::to_json)),
            ));
        }
        Json::Obj(fields)
    }
}

/// A finished cell: its spec, its result and how long it took.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The grid point that was run.
    pub spec: CellSpec,
    /// What it measured.
    pub result: CellResult,
    /// Wall-clock time of [`Scenario::run`] for this cell.
    pub wall: Duration,
    /// Peak resident-set size of the process when the cell finished
    /// (`VmHWM` from `/proc/self/status`; 0 off-Linux and under
    /// `--freeze-perf`). Process-wide high-water mark, so within one
    /// run it is monotone across cells in completion order.
    pub rss: u64,
}

// -------------------------------------------------------------------
// Reports
// -------------------------------------------------------------------

/// The rendered output of a scenario: tables (optionally mirrored to
/// CSV files under `results/`) and free-form shape-check notes.
#[derive(Debug, Clone, Default)]
pub struct Report {
    tables: Vec<(Table, Option<String>)>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds a table that is only printed.
    pub fn table(mut self, t: Table) -> Self {
        self.tables.push((t, None));
        self
    }

    /// Adds a table that is printed and mirrored to `results/<csv>`.
    pub fn table_csv(mut self, t: Table, csv: &str) -> Self {
        self.tables.push((t, Some(csv.to_string())));
        self
    }

    /// Adds a shape-check / commentary note.
    pub fn note(mut self, n: impl Into<String>) -> Self {
        self.notes.push(n.into());
        self
    }

    /// The tables with their optional CSV file names.
    pub fn tables(&self) -> &[(Table, Option<String>)] {
        &self.tables
    }

    /// The notes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

// -------------------------------------------------------------------
// The trait
// -------------------------------------------------------------------

/// One declarative experiment: a named, self-describing parameter grid
/// whose independent cells the runner may execute in parallel.
pub trait Scenario: Sync {
    /// Registry name (`fig12`, `table01`, …).
    fn name(&self) -> &'static str;

    /// One-line description shown by `occamy-bench list`.
    fn description(&self) -> &'static str;

    /// The parameter grid at the given scale. Every cell must be
    /// independent of every other cell.
    fn grid(&self, scale: Scale) -> Vec<CellSpec>;

    /// Runs one cell. Must be deterministic given `cell` (use
    /// `cell.seed` for any randomness) and must not mutate shared state —
    /// the runner calls this concurrently from many threads.
    fn run(&self, cell: &CellSpec) -> CellResult;

    /// Folds all outcomes (in grid order) into tables and notes.
    fn emit(&self, outcomes: &[CellOutcome]) -> Report;

    /// Per-cell telemetry snapshot cadence override in executed events
    /// (`None` = the runner default). Spec scenarios surface their
    /// `[telemetry] every_events` knob here; only consulted when a
    /// telemetry sink is installed.
    fn telemetry_every(&self) -> Option<u64> {
        None
    }
}

// -------------------------------------------------------------------
// Emit helpers shared by the figure modules
// -------------------------------------------------------------------

/// The distinct values of parameter `key`, in first-appearance order.
pub fn distinct(outcomes: &[CellOutcome], key: &str) -> Vec<Value> {
    let mut seen: Vec<Value> = Vec::new();
    for o in outcomes {
        if let Some(v) = o.spec.get(key) {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        }
    }
    seen
}

/// The outcome whose parameters match every `(key, value)` selector.
pub fn find<'a>(outcomes: &'a [CellOutcome], sel: &[(&str, &Value)]) -> Option<&'a CellOutcome> {
    outcomes
        .iter()
        .find(|o| sel.iter().all(|(k, v)| o.spec.get(k) == Some(v)))
}

/// Builds the ubiquitous "row axis × column axis" metric table: one row
/// per distinct `row_key` value, one column per distinct `col_key`
/// value, each cell showing `metric` (or `-`).
pub fn matrix_table(
    title: &str,
    outcomes: &[CellOutcome],
    row_key: &str,
    col_key: &str,
    metric: &str,
) -> Table {
    let rows = distinct(outcomes, row_key);
    let cols = distinct(outcomes, col_key);
    let mut columns = vec![row_key.to_string()];
    columns.extend(cols.iter().map(|c| c.to_string()));
    let colrefs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(title, &colrefs);
    for r in &rows {
        let mut cells = vec![r.to_string()];
        for c in &cols {
            let cell = find(outcomes, &[(row_key, r), (col_key, c)]);
            cells.push(cell.map_or_else(|| "-".to_string(), |o| o.result.fmt(metric)));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_cartesian_last_axis_fastest() {
        let cells = Grid::new("t", Scale::Full)
            .axis("size", [10u64, 20])
            .axis("scheme", ["A", "B", "C"])
            .build();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].u64("size"), 10);
        assert_eq!(cells[0].str("scheme"), "A");
        assert_eq!(cells[2].str("scheme"), "C");
        assert_eq!(cells[3].u64("size"), 20);
        assert_eq!(cells[3].str("scheme"), "A");
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = Grid::new("x", Scale::Full).axis("k", [1u64, 2, 3]).build();
        let b = Grid::new("x", Scale::Full).axis("k", [1u64, 2, 3]).build();
        assert!(a.iter().zip(&b).all(|(ca, cb)| ca.seed == cb.seed));
        let mut seeds: Vec<u64> = a.iter().map(|c| c.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 3, "seed collision");
        let other = Grid::new("y", Scale::Full).axis("k", [1u64]).build();
        assert_ne!(other[0].seed, a[0].seed, "seed must depend on name");
    }

    #[test]
    fn cell_accessors_and_label() {
        let cells = Grid::new("t", Scale::Quick)
            .axis("alpha", [2.0f64])
            .axis("size", [80u64])
            .axis("scheme", ["DT"])
            .build();
        let c = &cells[0];
        assert_eq!(c.f64("alpha"), 2.0);
        assert_eq!(c.f64("size"), 80.0); // u64 coerces
        assert_eq!(c.u64("size"), 80);
        assert_eq!(c.str("scheme"), "DT");
        assert_eq!(c.label(), "alpha=2 size=80 scheme=DT");
        assert_eq!(c.scale, Scale::Quick);
    }

    #[test]
    #[should_panic(expected = "no parameter 'missing'")]
    fn missing_parameter_panics_clearly() {
        let cells = Grid::new("t", Scale::Full).axis("k", [1u64]).build();
        let _ = cells[0].u64("missing");
    }

    #[test]
    fn cell_result_roundtrip() {
        let r = CellResult::new()
            .metric("qct_avg_ms", 1.25)
            .metric_opt("skipped", None)
            .metric_opt("p99", Some(9.0));
        assert_eq!(r.get("qct_avg_ms"), Some(1.25));
        assert_eq!(r.get("skipped"), None);
        assert_eq!(r.fmt("p99"), "9.000");
        assert_eq!(r.fmt("skipped"), "-");
        assert!(!r.is_empty());
        let j = r.to_json().render();
        assert!(j.contains("\"qct_avg_ms\":1.25"), "{j}");
    }

    #[test]
    fn matrix_table_pairs_rows_and_columns() {
        let cells = Grid::new("t", Scale::Full)
            .axis("size", [1u64, 2])
            .axis("scheme", ["A", "B"])
            .build();
        let outcomes: Vec<CellOutcome> = cells
            .into_iter()
            .map(|spec| {
                let v =
                    spec.u64("size") as f64 * if spec.str("scheme") == "A" { 1.0 } else { 10.0 };
                CellOutcome {
                    spec,
                    result: CellResult::new().metric("m", v),
                    wall: Duration::ZERO,
                    rss: 0,
                }
            })
            .collect();
        let t = matrix_table("demo", &outcomes, "size", "scheme", "m");
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("1.000") && s.contains("20.000"), "{s}");
    }

    #[test]
    fn series_width_checked() {
        let mut s = Series::new("q", &["t", "v"]);
        s.row(vec![0.0, 1.0]);
        assert_eq!(s.rows.len(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.row(vec![1.0]);
        }));
        assert!(r.is_err());
    }
}
