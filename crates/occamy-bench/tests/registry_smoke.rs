//! Registry smoke test: every registered scenario must run end to end
//! at `Smoke` scale (tiny grids, short sim horizons) and produce
//! non-empty results and a non-empty report — so a new registry entry
//! that wedges, panics or measures nothing fails CI immediately.

use occamy_bench::registry::{find_scenario, registry};
use occamy_bench::runner::execute;
use occamy_bench::scenario::Scale;

#[test]
fn every_scenario_runs_to_completion_at_smoke_scale() {
    let (runs, stats) = execute(registry(), Scale::Smoke, true);
    assert_eq!(runs.len(), registry().len());
    assert!(stats.cells > 0);
    for run in &runs {
        let name = run.scenario.name();
        assert!(!run.outcomes.is_empty(), "{name}: empty grid");
        for o in &run.outcomes {
            assert!(
                !o.result.is_empty(),
                "{name}: cell [{}] produced no metrics or series",
                o.spec.label()
            );
        }
        let report = &run.report;
        assert!(
            report.tables().iter().any(|(t, _)| !t.is_empty()),
            "{name}: report has no populated table"
        );
    }
}

#[test]
fn cells_are_deterministic_across_runs() {
    // The same cell spec must yield identical metrics when re-run — the
    // property that makes parallel execution order-independent.
    let scenario = find_scenario("fig13").expect("fig13 registered");
    let cell = &scenario.grid(Scale::Smoke)[0];
    let a = scenario.run(cell);
    let b = scenario.run(cell);
    assert_eq!(a.metrics(), b.metrics(), "fig13 cell not deterministic");
    assert!(
        a.get("queries").unwrap_or(0.0) > 0.0,
        "no queries completed"
    );
}
