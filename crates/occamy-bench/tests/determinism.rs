//! Determinism regression tests for the event-queue compaction.
//!
//! The compact event queue (interned packets, deferred setup lane,
//! 4-ary heap) must preserve the exact `(time, insertion-sequence)`
//! execution order: two runs of the same registry scenario have to
//! produce **byte-identical** reports and per-cell metrics, or parallel
//! cell execution (and every figure table) stops being reproducible.

use occamy_bench::registry::find_scenario;
use occamy_bench::runner::execute;
use occamy_bench::scenario::{CellOutcome, Scale};

/// Renders everything deterministic about a finished run: every cell's
/// metrics/series JSON plus the emitted report tables and notes
/// (wall-clock timing deliberately excluded).
fn fingerprint(name: &str, outcomes: &[CellOutcome], report_tables: String) -> String {
    let mut s = format!("scenario {name}\n");
    for o in outcomes {
        s.push_str(&format!(
            "cell {} [{}] -> {}\n",
            o.spec.index,
            o.spec.label(),
            o.result.to_json().render()
        ));
    }
    s.push_str(&report_tables);
    s
}

fn run_fingerprint(name: &str) -> String {
    let scenario = find_scenario(name).unwrap_or_else(|| panic!("{name} not registered"));
    let (runs, _) = execute(&[scenario], Scale::Smoke, true);
    let run = &runs[0];
    let mut tables = String::new();
    for (t, _) in run.report.tables() {
        tables.push_str(&t.render());
    }
    for note in run.report.notes() {
        tables.push_str(note);
        tables.push('\n');
    }
    fingerprint(name, &run.outcomes, tables)
}

#[test]
fn repeated_runs_are_byte_identical() {
    // One CBR scenario (pure event-loop dynamics, exercises the Occamy
    // expulsion path) and one transport scenario (flows, RTO timers,
    // deferred flow starts).
    for name in ["fig12", "fig13"] {
        let a = run_fingerprint(name);
        let b = run_fingerprint(name);
        assert_eq!(a, b, "{name}: reports diverged between identical runs");
        assert!(
            a.contains("\"events\""),
            "{name}: cells must report simulator events"
        );
    }
}

#[test]
fn serial_and_parallel_execution_agree() {
    let scenario = find_scenario("fig12").expect("fig12 registered");
    let (serial, _) = execute(&[scenario], Scale::Smoke, false);
    let (parallel, _) = execute(&[scenario], Scale::Smoke, true);
    for (a, b) in serial[0].outcomes.iter().zip(&parallel[0].outcomes) {
        assert_eq!(a.spec.index, b.spec.index);
        assert_eq!(
            a.result.to_json().render(),
            b.result.to_json().render(),
            "cell [{}] differs between serial and parallel execution",
            a.spec.label()
        );
    }
}
