//! The sharding acceptance bar: **plan → run → merge must be
//! byte-identical to a direct run** — for a registry figure and for a
//! `--spec` scenario — and every corruption of a shard file must fail
//! with a clear error naming the shard, never a panic or a silently
//! dropped cell.
//!
//! Everything runs under `OCCAMY_FREEZE_PERF=1` (as the CI
//! `shard-equivalence` job does): wall-clock fields are the one
//! platform-dependent output, and freezing them to zero is what makes
//! `cmp`-level equality meaningful across machines.

use occamy_bench::runner::{execute, render_into};
use occamy_bench::scenario::{Scale, Scenario};
use occamy_bench::shard::{self, ShardSource};
use occamy_bench::spec_scenario::SpecScenario;
use occamy_stats::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn freeze() {
    std::env::set_var("OCCAMY_FREEZE_PERF", "1");
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "occamy_shard_eq_{}_{tag}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .canonicalize()
        .expect("specs/ directory exists")
}

/// Every file under `root`, keyed by its relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

/// Runs `source` directly (serial) and renders into `root`.
fn direct(source: &ShardSource, scale: Scale, root: &Path) {
    let (runs, stats) = execute(&[source.scenario()], scale, false);
    render_into(&runs[0], scale, stats.wall, root).unwrap();
}

/// plan → run each shard → merge into `root`; returns the partial paths.
fn sharded(source: &ShardSource, scale: Scale, shards: usize, root: &Path) -> Vec<PathBuf> {
    let plans = shard::plan(source, scale, shards, &root.join("shards")).unwrap();
    let partials: Vec<PathBuf> = plans
        .iter()
        .map(|p| shard::run_shard(p, false, None, false).unwrap())
        .collect();
    shard::merge(&partials, root).unwrap();
    partials
}

/// The full equivalence check: identical file sets, byte-identical
/// contents (BENCH json and every CSV).
fn assert_equivalent(source: &ShardSource, scale: Scale, shards: usize, tag: &str) {
    freeze();
    let a = scratch(&format!("{tag}_direct"));
    let b = scratch(&format!("{tag}_merged"));
    direct(source, scale, &a);
    sharded(source, scale, shards, &b);
    let direct_files = tree(&a);
    let mut merged_files = tree(&b);
    // The merged tree also holds the shard plan/partial files.
    merged_files.retain(|k, _| !k.starts_with("shards"));
    assert_eq!(
        direct_files.keys().collect::<Vec<_>>(),
        merged_files.keys().collect::<Vec<_>>(),
        "{tag}: output file sets differ"
    );
    let name = source.scenario().name();
    assert!(
        direct_files.contains_key(&format!("BENCH_{name}.json")),
        "{tag}: direct run produced no BENCH json"
    );
    for (path, bytes) in &direct_files {
        assert_eq!(
            bytes, &merged_files[path],
            "{tag}: {path} differs between direct run and plan/run/merge"
        );
    }
    let _ = std::fs::remove_dir_all(&a);
    let _ = std::fs::remove_dir_all(&b);
}

#[test]
fn fig12_plan_run_merge_is_byte_identical_to_direct_run() {
    let source = ShardSource::from_name("fig12").unwrap();
    assert_equivalent(&source, Scale::Smoke, 3, "fig12");
}

#[test]
fn spec_scenario_plan_run_merge_is_byte_identical_to_direct_run() {
    let path = specs_dir().join("smoke.toml");
    let spec = SpecScenario::load(path.to_str().unwrap()).unwrap();
    assert_equivalent(&ShardSource::Spec(spec), Scale::Smoke, 2, "spec_smoke");
}

#[test]
fn paper_fabric_128h_plans_without_executing() {
    // The payoff spec: 60 full-scale cells of a 128-host fabric. Plan
    // it 8 ways (what CI smokes) and check coverage — but never run a
    // cell; that is what the sharding exists to distribute.
    let path = specs_dir().join("paper_fabric_128h.toml");
    let spec = SpecScenario::load(path.to_str().unwrap()).unwrap();
    assert_eq!(
        spec.grid(Scale::Full).len(),
        60,
        "5 sizes × 3 loads × 4 schemes"
    );
    let root = scratch("plan128h");
    let plans = shard::plan(&ShardSource::Spec(spec), Scale::Full, 8, &root).unwrap();
    assert_eq!(plans.len(), 8);
    let mut covered = 0usize;
    for p in &plans {
        let doc = Json::parse(&std::fs::read_to_string(p).unwrap()).unwrap();
        assert_eq!(doc.get("format").and_then(Json::as_u64), Some(1));
        assert!(
            doc.get("spec_toml").and_then(Json::as_str).is_some(),
            "spec plans must be self-contained"
        );
        covered += doc.get("cells").and_then(Json::as_arr).unwrap().len();
    }
    assert_eq!(covered, 60, "all cells assigned to some shard");
    let _ = std::fs::remove_dir_all(&root);
}

// -------------------------------------------------------------------
// Corruption handling
// -------------------------------------------------------------------

/// Plans fig12 into 2 shards and runs both, returning (root, partials).
fn fig12_partials() -> (PathBuf, Vec<PathBuf>) {
    freeze();
    let root = scratch("corrupt");
    let source = ShardSource::from_name("fig12").unwrap();
    let plans = shard::plan(&source, Scale::Smoke, 2, &root.join("shards")).unwrap();
    let partials = plans
        .iter()
        .map(|p| shard::run_shard(p, false, None, false).unwrap())
        .collect();
    (root, partials)
}

#[test]
fn truncated_partial_fails_naming_the_shard() {
    let (root, partials) = fig12_partials();
    let bytes = std::fs::read(&partials[1]).unwrap();
    std::fs::write(&partials[1], &bytes[..bytes.len() / 2]).unwrap();
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(
        err.contains("fig12.shard-1.result.json"),
        "error must name the truncated shard: {err}"
    );
    assert!(
        err.contains("truncated or corrupted"),
        "error must say what is wrong: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn version_mismatch_fails_with_both_versions() {
    let (root, partials) = fig12_partials();
    let text = std::fs::read_to_string(&partials[0]).unwrap();
    std::fs::write(&partials[0], text.replace("\"format\":1", "\"format\":99")).unwrap();
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(
        err.contains("fig12.shard-0.result.json") && err.contains("99"),
        "error must name the shard and its version: {err}"
    );
    assert!(err.contains("version 1"), "{err}");

    // Same gate on the plan side.
    let plan = root.join("shards/fig12.shard-0.json");
    let text = std::fs::read_to_string(&plan).unwrap();
    std::fs::write(&plan, text.replace("\"format\":1", "\"format\":2")).unwrap();
    let err = shard::run_shard(&plan, false, None, false).unwrap_err();
    assert!(err.contains("format version 2"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn missing_shard_fails_listing_it() {
    let (root, partials) = fig12_partials();
    let err = shard::merge(&partials[..1], &root).unwrap_err();
    assert!(
        err.contains("missing partial(s) for shard(s) 1"),
        "error must list the absent shard: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_shard_fails_naming_both_files() {
    let (root, partials) = fig12_partials();
    let dup = vec![partials[0].clone(), partials[0].clone()];
    let err = shard::merge(&dup, &root).unwrap_err();
    assert!(
        err.contains("already provided by"),
        "duplicate shard must be rejected: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropped_cell_fails_instead_of_silently_merging() {
    let (root, partials) = fig12_partials();
    // Surgically remove one outcome from shard 0 (keeping valid JSON),
    // as a partially-uploaded or interrupted run would.
    let doc = Json::parse(&std::fs::read_to_string(&partials[0]).unwrap()).unwrap();
    let Json::Obj(mut fields) = doc else { panic!() };
    let mut removed = None;
    for (k, v) in &mut fields {
        if k == "outcomes" {
            let Json::Arr(items) = v else { panic!() };
            removed = items.pop();
        }
    }
    assert!(removed.is_some(), "partial had no outcomes to drop");
    std::fs::write(&partials[0], format!("{}\n", Json::Obj(fields))).unwrap();
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(
        err.contains("missing from the provided partials"),
        "a dropped cell must fail the merge: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tampered_seed_is_rejected_before_running() {
    freeze();
    let root = scratch("tamper");
    let source = ShardSource::from_name("fig12").unwrap();
    let plans = shard::plan(&source, Scale::Smoke, 2, &root).unwrap();
    let doc = Json::parse(&std::fs::read_to_string(&plans[0]).unwrap()).unwrap();
    let Json::Obj(mut fields) = doc else { panic!() };
    for (k, v) in &mut fields {
        if k == "cells" {
            let Json::Arr(items) = v else { panic!() };
            let Json::Obj(cell) = &mut items[0] else {
                panic!()
            };
            for (ck, cv) in cell {
                if ck == "seed" {
                    *cv = Json::from(12345u64);
                }
            }
        }
    }
    std::fs::write(&plans[0], format!("{}\n", Json::Obj(fields))).unwrap();
    let err = shard::run_shard(&plans[0], false, None, false).unwrap_err();
    assert!(
        err.contains("disagrees with this binary's grid"),
        "a tampered seed must not execute: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn consistently_shrunken_partials_do_not_silently_drop_cells() {
    // Both partials rewritten to claim a 2-cell grid, with the cells
    // beyond it removed — internally consistent, but not the grid this
    // binary derives for fig12. The merge must refuse, not emit a
    // "complete" half-report.
    let (root, partials) = fig12_partials();
    for p in &partials {
        let doc = Json::parse(&std::fs::read_to_string(p).unwrap()).unwrap();
        let Json::Obj(mut fields) = doc else { panic!() };
        for (k, v) in &mut fields {
            if k == "total_cells" {
                *v = Json::from(2u64);
            }
            if k == "outcomes" {
                let Json::Arr(items) = v else { panic!() };
                items.retain(|o| o.get("index").and_then(Json::as_u64).unwrap() < 2);
            }
        }
        std::fs::write(p, format!("{}\n", Json::Obj(fields))).unwrap();
    }
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(
        err.contains("this binary generates 4"),
        "a shrunken grid must fail the merge: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn absurd_wall_ms_errors_instead_of_panicking() {
    let (root, partials) = fig12_partials();
    let text = std::fs::read_to_string(&partials[0]).unwrap();
    assert!(text.contains("\"wall_ms\":0"), "freeze-perf zeroes walls");
    std::fs::write(
        &partials[0],
        text.replacen("\"wall_ms\":0", "\"wall_ms\":1e300", 1),
    )
    .unwrap();
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(
        err.contains("'wall_ms'") && err.contains("out of range"),
        "{err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn implausible_header_counts_error_instead_of_aborting() {
    let (root, partials) = fig12_partials();
    let text = std::fs::read_to_string(&partials[0]).unwrap();
    std::fs::write(
        &partials[0],
        text.replace("\"total_cells\":4", "\"total_cells\":4000000000000000000"),
    )
    .unwrap();
    let err = shard::merge(&partials, &root).unwrap_err();
    assert!(err.contains("implausible total_cells"), "{err}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn partials_from_different_plans_do_not_merge() {
    let (root, partials) = fig12_partials();
    // A 3-shard replan of the same scenario: shard counts disagree.
    let source = ShardSource::from_name("fig12").unwrap();
    let other_plans = shard::plan(&source, Scale::Smoke, 3, &root.join("shards3")).unwrap();
    let other = shard::run_shard(&other_plans[1], false, None, false).unwrap();
    let err = shard::merge(&[partials[0].clone(), other], &root).unwrap_err();
    assert!(
        err.contains("partials of different plans"),
        "mixed plans must be rejected: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
