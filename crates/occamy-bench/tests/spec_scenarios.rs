//! End-to-end tests of the declarative-spec pipeline over the shipped
//! `specs/` examples: every spec parses, compiles, re-emits and
//! round-trips; spec runs are deterministic; and the `fig17_repro.toml`
//! spec reproduces the registry scenario's tables **bit for bit** —
//! the acceptance bar for `--spec` being a first-class front-end to the
//! scenario machinery.

use occamy_bench::registry::find_scenario;
use occamy_bench::runner::execute;
use occamy_bench::scenario::{Scale, Scenario};
use occamy_bench::spec_scenario::SpecScenario;
use std::path::PathBuf;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .canonicalize()
        .expect("specs/ directory exists")
}

fn shipped_specs() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(specs_dir())
        .expect("read specs/")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml" || e == "json"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 3,
        "expected ≥ 3 example specs, found {files:?}"
    );
    files
}

#[test]
fn every_shipped_spec_parses_compiles_and_round_trips() {
    for path in shipped_specs() {
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = occamy_spec::spec_from_file_text(path.to_str().unwrap(), &text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // parse → re-emit → parse must be the identity.
        let reparsed = occamy_spec::spec_from_toml(&doc.to_toml())
            .unwrap_or_else(|e| panic!("{}: re-emitted spec invalid: {e}", path.display()));
        assert_eq!(
            doc,
            reparsed,
            "{}: round trip changed the spec",
            path.display()
        );
        // …and the compiled scenario must produce sane grids at every
        // scale (non-empty, deterministic seeds, scheme axis last).
        let scenario = SpecScenario::new(doc);
        for scale in [Scale::Full, Scale::Quick, Scale::Smoke] {
            let a = scenario.grid(scale);
            let b = scenario.grid(scale);
            assert!(!a.is_empty(), "{}: empty grid", path.display());
            assert_eq!(a.len(), b.len());
            for (ca, cb) in a.iter().zip(&b) {
                assert_eq!(ca.seed, cb.seed, "{}: seeds unstable", path.display());
                assert!(
                    ca.get("scheme").is_some(),
                    "{}: no scheme axis",
                    path.display()
                );
            }
        }
    }
}

#[test]
fn spec_loader_gives_named_suggestions_not_panics() {
    let dir = std::env::temp_dir().join("occamy_spec_errors");
    std::fs::create_dir_all(&dir).unwrap();
    for (file, content, expect) in [
        (
            "topo.toml",
            "name = \"x\"\n[topology]\nkind = \"leaf_spin\"\n",
            "did you mean 'leaf_spine'?",
        ),
        (
            "scheme.toml",
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[schemes]\nuse = [\"Pushuot\"]\n",
            "did you mean 'Pushout'?",
        ),
        (
            "traffic.toml",
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[traffic]\nbackground = \"web_serach\"\n",
            "did you mean 'web_search'?",
        ),
        (
            "knob.toml",
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[grid]\nquery_pct_bufer = [10]\n",
            "did you mean 'query_pct_buffer'?",
        ),
        (
            "key.toml",
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\nhost_rate_gpbs = 10.0\n",
            "did you mean 'host_rate_gbps'?",
        ),
    ] {
        let path = dir.join(file);
        std::fs::write(&path, content).unwrap();
        let err = SpecScenario::load(path.to_str().unwrap())
            .err()
            .unwrap_or_else(|| panic!("{file}: bad spec loaded successfully"));
        assert!(err.contains(expect), "{file}: error lacks suggestion: {err}");
    }
}

#[test]
fn spec_runs_are_deterministic() {
    let path = specs_dir().join("smoke.toml");
    let scenario = SpecScenario::load(path.to_str().unwrap()).unwrap();
    let render = || {
        let (runs, _) = execute(&[scenario], Scale::Smoke, true);
        let mut s = String::new();
        for o in &runs[0].outcomes {
            s.push_str(&format!(
                "cell {} [{}] -> {}\n",
                o.spec.index,
                o.spec.label(),
                o.result.to_json().render()
            ));
        }
        for (t, _) in runs[0].report.tables() {
            s.push_str(&t.render());
        }
        s
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "spec run not byte-identical on repeat");
    assert!(
        a.contains("\"events\""),
        "cells must count simulator events"
    );
}

/// The acceptance criterion: a spec recreating a registry scenario's
/// grid reproduces its tables bit for bit.
#[test]
fn fig17_repro_spec_matches_registry_tables_bit_for_bit() {
    let path = specs_dir().join("fig17_repro.toml");
    let spec = SpecScenario::load(path.to_str().unwrap()).unwrap();
    let fig17 = find_scenario("fig17").expect("fig17 registered");

    // Same grid: labels and seeds agree cell by cell.
    let sg = spec.grid(Scale::Smoke);
    let fg = fig17.grid(Scale::Smoke);
    assert_eq!(sg.len(), fg.len());
    for (a, b) in sg.iter().zip(&fg) {
        assert_eq!(a.seed, b.seed, "cell {} seed", a.index);
        assert_eq!(a.label(), b.label(), "cell {} label", a.index);
    }

    let (runs, _) = execute(&[spec as &dyn Scenario, fig17], Scale::Smoke, true);
    let (spec_run, fig_run) = (&runs[0], &runs[1]);

    // Cell metrics agree exactly.
    for (a, b) in spec_run.outcomes.iter().zip(&fig_run.outcomes) {
        assert_eq!(
            a.result.to_json().render(),
            b.result.to_json().render(),
            "cell {} metrics diverge",
            a.spec.index
        );
    }

    // And the four emitted tables are byte-identical.
    let spec_tables = spec_run.report.tables();
    let fig_tables = fig_run.report.tables();
    assert_eq!(spec_tables.len(), 4);
    assert_eq!(fig_tables.len(), 4);
    for ((st, _), (ft, _)) in spec_tables.iter().zip(fig_tables) {
        assert_eq!(
            st.render(),
            ft.render(),
            "spec table differs from registry table"
        );
    }
}
