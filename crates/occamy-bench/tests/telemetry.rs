//! The telemetry acceptance bar: **turning the trace bus on must not
//! change a single output byte**. One direct run of the CI smoke spec
//! is compared against a telemetry-enabled run and against a
//! telemetry-enabled `--threads 4` run — BENCH json and every CSV must
//! be byte-identical under `OCCAMY_FREEZE_PERF=1` — and the JSONL
//! stream itself must be non-empty, parseable by `occamy_stats::Json`
//! and wall-clock-free under freeze.
//!
//! Everything lives in ONE #[test]: telemetry enablement, freeze-perf
//! and thread count are process-global environment variables, so the
//! phases must run sequentially in a fixed order.

use occamy_bench::live::TelemetrySink;
use occamy_bench::runner::{execute, render_into};
use occamy_bench::scenario::{Scale, Scenario};
use occamy_bench::spec_scenario::SpecScenario;
use occamy_stats::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("occamy_telemetry_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every result artifact under `root` (BENCH json + CSVs), keyed by
/// relative path — telemetry JSONL streams excluded, they exist only on
/// the telemetry side by construction.
fn artifacts(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .to_string();
                if !rel.ends_with("_telemetry.jsonl") {
                    out.insert(rel, std::fs::read(&path).unwrap());
                }
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

fn direct(scenario: &'static dyn Scenario, root: &Path) {
    let (runs, stats) = execute(&[scenario], Scale::Smoke, false);
    render_into(&runs[0], Scale::Smoke, stats.wall, root).unwrap();
}

fn assert_same_artifacts(a: &BTreeMap<String, Vec<u8>>, b: &BTreeMap<String, Vec<u8>>, tag: &str) {
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "{tag}: artifact file sets differ"
    );
    for (path, bytes) in a {
        assert_eq!(
            bytes, &b[path],
            "{tag}: {path} differs — telemetry must be invisible in outputs"
        );
    }
}

#[test]
fn telemetry_changes_no_output_byte_and_streams_parse() {
    std::env::set_var("OCCAMY_FREEZE_PERF", "1");
    let spec_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs/smoke.toml");
    let spec = SpecScenario::load(spec_path.to_str().unwrap()).unwrap();
    assert_eq!(
        spec.telemetry_every(),
        Some(20_000),
        "smoke.toml carries a [telemetry] cadence"
    );

    // Phase 1: baseline, no telemetry.
    let base = scratch("off");
    direct(spec, &base);
    let base_files = artifacts(&base);
    assert!(
        base_files.contains_key("BENCH_spec_smoke.json"),
        "baseline produced no BENCH json"
    );

    // Phase 2: telemetry on. Same bytes everywhere, plus a JSONL stream.
    let tele = scratch("on");
    let sink = TelemetrySink::start(&tele, false);
    direct(spec, &tele);
    sink.finish();
    assert_same_artifacts(&base_files, &artifacts(&tele), "telemetry on vs off");

    let stream = tele.join("results/spec_smoke_telemetry.jsonl");
    let text = std::fs::read_to_string(&stream).expect("telemetry stream was written");
    let records: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("unparseable JSONL line: {e}\n{l}")))
        .collect();
    assert!(!records.is_empty(), "telemetry stream is empty");
    let kinds: Vec<&str> = records
        .iter()
        .map(|r| r.get("kind").and_then(Json::as_str).unwrap())
        .collect();
    let count = |k: &str| kinds.iter().filter(|&&x| x == k).count();
    let cells = spec.grid(Scale::Smoke).len();
    assert_eq!(count("cell_start"), cells, "one start marker per cell");
    assert_eq!(count("cell_end"), cells, "one end marker per cell");
    assert!(count("snap") > 0, "no periodic snapshots fired: {kinds:?}");
    assert_eq!(count("summary"), 1, "one closing sketch summary");
    assert_eq!(
        kinds.last().copied(),
        Some("summary"),
        "summary closes the stream"
    );
    for r in &records {
        // Under freeze-perf even the stream is wall-clock-free.
        if let Some(ms) = r.get("unix_ms").and_then(Json::as_u64) {
            assert_eq!(ms, 0, "unix_ms must be zeroed under freeze-perf");
        }
        if r.get("kind").and_then(Json::as_str) == Some("snap") {
            assert_eq!(r.get("events_per_sec").and_then(Json::as_f64), Some(0.0));
            assert!(r.get("events").and_then(Json::as_u64).unwrap() > 0);
            let switches = r.get("switches").and_then(Json::as_arr).unwrap();
            assert_eq!(switches.len(), 20, "k=4 fat-tree has 20 switches");
        }
    }
    let summary = records.last().unwrap();
    assert_eq!(summary.get("sketch_eps").and_then(Json::as_f64), Some(0.01));
    assert!(summary.get("occ_frac_p99").and_then(Json::as_f64).is_some());

    // Phase 3: telemetry on + 4 intra-run threads. Still the same bytes.
    std::env::set_var("OCCAMY_SIM_THREADS", "4");
    let par = scratch("threads");
    let sink = TelemetrySink::start(&par, false);
    direct(spec, &par);
    sink.finish();
    std::env::remove_var("OCCAMY_SIM_THREADS");
    assert_same_artifacts(
        &base_files,
        &artifacts(&par),
        "telemetry + threads 4 vs serial",
    );
    let par_text = std::fs::read_to_string(par.join("results/spec_smoke_telemetry.jsonl")).unwrap();
    for l in par_text.lines() {
        Json::parse(l).expect("threaded stream parses");
    }

    for d in [&base, &tele, &par] {
        let _ = std::fs::remove_dir_all(d);
    }
}
