//! Golden-metric regression tracking (ROADMAP: "result regression
//! tracking"): `golden/` holds committed smoke-scale `BENCH_<name>.json`
//! snapshots of three stable scenarios; this test re-runs them
//! in-process and fails when any *headline* metric drifts beyond
//! tolerance.
//!
//! Perf fields are deliberately excluded from the comparison: `wall_ms`
//! / `events_per_sec` vary run to run, and the `events` count is an
//! engine property (event-loop refactors legitimately change it without
//! changing results). Everything else — queries, QCT/FCT slowdowns,
//! losses, unfinished — must match the snapshot to one part in 10⁶.
//!
//! Regenerating after an *intentional* result change:
//!
//! ```text
//! cd $(mktemp -d) && occamy-bench run fig03 fig12 fig20 --smoke --serial
//! cp BENCH_fig03.json BENCH_fig12.json BENCH_fig20.json <repo>/golden/
//! ```

use occamy_bench::registry::find_scenario;
use occamy_bench::runner::execute;
use occamy_bench::scenario::Scale;
use occamy_spec::Value;
use std::path::PathBuf;

/// The tracked scenarios: one CBR micro-testbed (fig03), one CBR sweep
/// with an α axis (fig12), one transport-level leaf-spine study
/// (fig20) and the transport hot-path baseline (perf_transport, whose
/// *headline* metrics must survive transport-layer perf work untouched)
/// — together they cover every simulation substrate.
const TRACKED: &[&str] = &["fig03", "fig12", "fig20", "perf_transport"];

/// Metric keys excluded from the comparison (perf, not results).
const PERF_METRICS: &[&str] = &["events"];

const REL_TOL: f64 = 1e-6;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../golden")
        .canonicalize()
        .expect("golden/ directory exists")
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1e-12)
}

#[test]
fn headline_metrics_match_golden_snapshots() {
    for name in TRACKED {
        let path = golden_dir().join(format!("BENCH_{name}.json"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let golden =
            occamy_spec::json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            golden.get("scale").and_then(|v| v.as_str().ok()),
            Some("smoke"),
            "{name}: golden snapshots are smoke-scale"
        );

        let scenario = find_scenario(name).unwrap_or_else(|| panic!("{name} not registered"));
        let (runs, _) = execute(&[scenario], Scale::Smoke, true);
        let run = &runs[0];

        let cells = golden
            .get("results")
            .and_then(|v| v.as_array().ok())
            .unwrap_or_else(|| panic!("{name}: golden file has no results"));
        assert_eq!(
            cells.len(),
            run.outcomes.len(),
            "{name}: grid size changed — regenerate golden/ if intentional"
        );

        for (cell, outcome) in cells.iter().zip(&run.outcomes) {
            let label = outcome.spec.label();
            // The cell identity (its seed) must match: a seed change
            // means the grid moved, not that results drifted.
            assert_eq!(
                cell.get("seed").and_then(|v| v.as_u64().ok()),
                Some(outcome.spec.seed),
                "{name} [{label}]: cell seed changed"
            );
            let metrics = cell
                .get("metrics")
                .unwrap_or_else(|| panic!("{name} [{label}]: golden cell has no metrics"));
            let entries = metrics.entries().unwrap();
            let kept: Vec<&(String, Value)> = entries
                .iter()
                .filter(|(k, _)| !PERF_METRICS.contains(&k.as_str()))
                .collect();
            assert!(!kept.is_empty(), "{name} [{label}]: nothing to compare");
            for (key, golden_v) in kept {
                let want = golden_v.as_f64().unwrap();
                let got = outcome
                    .result
                    .get(key)
                    .unwrap_or_else(|| panic!("{name} [{label}]: metric '{key}' disappeared"));
                assert!(
                    close(want, got),
                    "{name} [{label}]: '{key}' drifted: golden {want}, got {got} \
                     (tol {REL_TOL}); regenerate golden/ if this change is intentional"
                );
            }
            // Metrics present now but absent from the snapshot are fine
            // (new metrics get added); the perf trio is checked to stay
            // out of the snapshot comparison by construction.
        }
    }
}

#[test]
fn golden_snapshots_cover_all_tracked_scenarios() {
    let dir = golden_dir();
    for name in TRACKED {
        assert!(
            dir.join(format!("BENCH_{name}.json")).exists(),
            "golden/BENCH_{name}.json missing"
        );
    }
}
