//! The fault-tolerance acceptance bar: **kill → resume → merge must be
//! byte-identical to an uninterrupted direct run**, journal corruption
//! must fail naming the shard, and the fleet coordinator must survive a
//! SIGKILLed worker by re-dispatching it — with the retried attempt
//! recomputing only the cells the dead one never journaled.
//!
//! Everything runs under `OCCAMY_FREEZE_PERF=1` (as the CI
//! `fleet-resilience` job does), which is what makes `cmp`-level
//! equality meaningful across kills and machines.

use occamy_bench::runner::{execute, render_into};
use occamy_bench::scenario::Scale;
use occamy_bench::shard::{self, ShardSource};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn freeze() {
    std::env::set_var("OCCAMY_FREEZE_PERF", "1");
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "occamy_fleet_resume_{}_{tag}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every file under `root`, keyed by its relative path.
fn tree(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .unwrap()
                    .to_string_lossy()
                    .to_string();
                out.insert(rel, std::fs::read(&path).unwrap());
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(root, root, &mut out);
    out
}

/// Runs fig12 directly (serial, frozen) and renders into `root`.
fn direct_fig12(root: &Path) {
    freeze();
    let source = ShardSource::from_name("fig12").unwrap();
    let (runs, stats) = execute(&[source.scenario()], Scale::Smoke, false);
    render_into(&runs[0], Scale::Smoke, stats.wall, root).unwrap();
}

/// Asserts the merged output under `merged_root` matches a direct run,
/// ignoring the `shards/` working directory.
fn assert_matches_direct(merged_root: &Path, tag: &str) {
    let a = scratch(&format!("{tag}_direct"));
    direct_fig12(&a);
    let direct_files = tree(&a);
    let mut merged_files = tree(merged_root);
    merged_files.retain(|k, _| !k.starts_with("shards"));
    assert_eq!(
        direct_files.keys().collect::<Vec<_>>(),
        merged_files.keys().collect::<Vec<_>>(),
        "{tag}: output file sets differ"
    );
    for (path, bytes) in &direct_files {
        assert_eq!(
            bytes, &merged_files[path],
            "{tag}: {path} differs between direct run and kill/resume/merge"
        );
    }
    let _ = std::fs::remove_dir_all(&a);
}

/// Plans fig12 (smoke: 4 cells) into 2 shards under `root/shards` and
/// runs both serially, journaling as they go. Returns (plans, partials).
fn fig12_fleet_artifacts(root: &Path) -> (Vec<PathBuf>, Vec<PathBuf>) {
    freeze();
    let source = ShardSource::from_name("fig12").unwrap();
    let plans = shard::plan(&source, Scale::Smoke, 2, &root.join("shards")).unwrap();
    let partials = plans
        .iter()
        .map(|p| shard::run_shard(p, false, None, false).unwrap())
        .collect();
    (plans, partials)
}

/// Truncates a journal to its header plus the first `keep` outcome
/// lines (preserving the trailing newline) — exactly what the disk
/// holds after a worker is SIGKILLed `keep` cells in.
fn truncate_journal(journal: &Path, keep: usize) -> String {
    let text = std::fs::read_to_string(journal).unwrap();
    let kept: Vec<&str> = text.lines().take(1 + keep).collect();
    let truncated = format!("{}\n", kept.join("\n"));
    std::fs::write(journal, &truncated).unwrap();
    truncated
}

#[test]
fn kill_and_resume_merges_byte_identical_to_direct_run() {
    let root = scratch("resume");
    let (plans, partials) = fig12_fleet_artifacts(&root);

    // Simulate shard 0 dying one cell in: journal loses its second
    // outcome, the partial and heartbeat were never written.
    let journal = shard::journal_path(&plans[0]);
    let full = std::fs::read_to_string(&journal).unwrap();
    assert_eq!(full.lines().count(), 3, "header + 2 journaled cells");
    let truncated = truncate_journal(&journal, 1);
    std::fs::remove_file(&partials[0]).unwrap();
    std::fs::remove_file(shard::heartbeat_path(&plans[0])).unwrap();

    // Resume: the journaled cell is replayed, only the missing one
    // recomputed, and the journal grows append-only.
    let resumed_partial = shard::run_shard(&plans[0], false, None, true).unwrap();
    assert_eq!(resumed_partial, partials[0]);
    let resumed = std::fs::read_to_string(&journal).unwrap();
    assert!(
        resumed.starts_with(&truncated),
        "resume must append to the surviving journal, not rewrite it"
    );
    assert_eq!(
        resumed.lines().count(),
        3,
        "resume recomputes exactly the one unjournaled cell"
    );

    shard::merge(&partials, &root).unwrap();
    assert_matches_direct(&root, "resume");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn merge_accepts_journals_in_place_of_partials() {
    let root = scratch("jmerge");
    let (plans, partials) = fig12_fleet_artifacts(&root);
    // Shard 0 by journal, shard 1 by partial — any mix merges to the
    // same bytes.
    let inputs = vec![shard::journal_path(&plans[0]), partials[1].clone()];
    shard::merge(&inputs, &root).unwrap();
    assert_matches_direct(&root, "jmerge");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn journal_and_partial_for_same_shard_do_not_merge() {
    let root = scratch("dupshard");
    let (plans, partials) = fig12_fleet_artifacts(&root);
    let inputs = vec![
        partials[0].clone(),
        shard::journal_path(&plans[0]),
        partials[1].clone(),
    ];
    let err = shard::merge(&inputs, &root).unwrap_err();
    assert!(
        err.contains("already provided by"),
        "a shard covered twice must be rejected: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_journal_line_fails_naming_the_shard() {
    let root = scratch("torn");
    let (plans, _partials) = fig12_fleet_artifacts(&root);
    let journal = shard::journal_path(&plans[1]);
    let text = std::fs::read_to_string(&journal).unwrap();

    // A journal cut mid-line (no trailing newline), as an interrupted
    // copy leaves it.
    std::fs::write(&journal, &text[..text.len() - 20]).unwrap();
    let err = shard::run_shard(&plans[1], false, None, true).unwrap_err();
    assert!(
        err.contains("truncated mid-write") && err.contains("shard-1"),
        "a torn journal must fail naming the shard: {err}"
    );

    // A half-written last line that does end in a newline: invalid JSON.
    std::fs::write(&journal, format!("{}\n", &text[..text.len() - 20])).unwrap();
    let err = shard::run_shard(&plans[1], false, None, true).unwrap_err();
    assert!(
        err.contains("not valid JSON") && err.contains("shard 1"),
        "a half-written line must fail naming the shard: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicated_journal_cell_fails_naming_the_shard() {
    let root = scratch("dupcell");
    let (plans, _partials) = fig12_fleet_artifacts(&root);
    let journal = shard::journal_path(&plans[1]);
    let mut text = std::fs::read_to_string(&journal).unwrap();
    let last = text.lines().last().unwrap().to_string();
    text.push_str(&last);
    text.push('\n');
    std::fs::write(&journal, &text).unwrap();

    // Both the resume path and the merge path must refuse it.
    let err = shard::run_shard(&plans[1], false, None, true).unwrap_err();
    assert!(
        err.contains("already journaled") && err.contains("shard 1"),
        "a duplicated cell must fail the resume: {err}"
    );
    let err = shard::merge(std::slice::from_ref(&journal), &root).unwrap_err();
    assert!(
        err.contains("already journaled") && err.contains("shard 1"),
        "a duplicated cell must fail the merge: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn foreign_journal_is_rejected_on_resume() {
    let root = scratch("foreign");
    let (plans, partials) = fig12_fleet_artifacts(&root);
    // Shard 1's journal dropped in place of shard 0's: header mismatch.
    std::fs::copy(
        shard::journal_path(&plans[1]),
        shard::journal_path(&plans[0]),
    )
    .unwrap();
    std::fs::remove_file(&partials[0]).unwrap();
    let err = shard::run_shard(&plans[0], false, None, true).unwrap_err();
    assert!(
        err.contains("belongs to a different plan"),
        "a foreign journal must not resume: {err}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

// -------------------------------------------------------------------
// Fleet coordinator, end to end against the real binary
// -------------------------------------------------------------------

fn bench_binary() -> &'static str {
    env!("CARGO_BIN_EXE_occamy-bench")
}

/// The tentpole acceptance test: a fleet whose shard-1 worker SIGKILLs
/// itself one cell in must finish via retry + resume, recompute only
/// the unjournaled cell, and merge byte-identical to a direct run.
#[test]
fn fleet_survives_a_sigkilled_worker_and_merges_byte_identical() {
    let root = scratch("fleet_kill");
    freeze();
    let source = ShardSource::from_name("fig12").unwrap();
    let plans = shard::plan(&source, Scale::Smoke, 2, &root.join("shards")).unwrap();

    let output = std::process::Command::new(bench_binary())
        .args(["fleet"])
        .arg(root.join("shards"))
        .args(["--serial", "--workers", "2", "--retries", "2", "--out-dir"])
        .arg(&root)
        .env("OCCAMY_FREEZE_PERF", "1")
        .env("OCCAMY_SHARD_KILL_AFTER", "1:1")
        .env("OCCAMY_FLEET_BACKOFF_MS", "10")
        .output()
        .expect("fleet run spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "fleet must recover from the kill\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("shard 1 attempt 1 failed") && stderr.contains("retrying in"),
        "the killed worker must be observed and retried:\n{stderr}"
    );
    assert!(
        stdout.contains("shard 1 done (attempt 2)"),
        "the retried attempt must complete:\n{stdout}"
    );

    // The worker log proves the retry resumed instead of starting over.
    let log = std::fs::read_to_string(root.join("shards/fig12.shard-1.log")).unwrap();
    assert!(
        log.contains("resuming shard 1 of 'fig12': 1 of 2 cells journaled, 1 to run"),
        "attempt 2 must resume from the journal:\n{log}"
    );
    // And the journal holds exactly header + 2 cells — the journaled
    // cell was not recomputed.
    let journal = std::fs::read_to_string(shard::journal_path(&plans[1])).unwrap();
    assert_eq!(journal.lines().count(), 3, "journal:\n{journal}");

    assert_matches_direct(&root, "fleet_kill");

    // The status mirror records the recovery for `occamy-bench watch`.
    let status = std::fs::read_to_string(root.join("shards/fleet.status.json")).unwrap();
    assert!(
        status.contains("\"kind\":\"fleet\"") && status.contains("\"retries\":1"),
        "{status}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Degraded mode: with retries exhausted the fleet must finish the
/// healthy shard, name the dead shard's unfinished cells by grid
/// label, and exit nonzero — no merge, no panic.
#[test]
fn fleet_degrades_gracefully_when_retries_are_exhausted() {
    let root = scratch("fleet_degraded");
    freeze();
    let source = ShardSource::from_name("fig12").unwrap();
    shard::plan(&source, Scale::Smoke, 2, &root.join("shards")).unwrap();

    let output = std::process::Command::new(bench_binary())
        .args(["fleet"])
        .arg(root.join("shards"))
        .args(["--serial", "--workers", "2", "--retries", "0", "--out-dir"])
        .arg(&root)
        .env("OCCAMY_FREEZE_PERF", "1")
        .env("OCCAMY_SHARD_KILL_AFTER", "0:1")
        .env("OCCAMY_FLEET_BACKOFF_MS", "10")
        .output()
        .expect("fleet run spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "a permanently failed shard must fail the fleet\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("FAILED permanently"),
        "the dead shard must be reported:\n{stderr}"
    );
    assert!(
        stderr.contains("unfinished cells") && stderr.contains("shard 0 (1 attempts): 2 ["),
        "the cells still owed must be named by index and grid label:\n{stderr}"
    );
    // The healthy shard still finished — its partial is on disk for a
    // later resume.
    assert!(
        stdout.contains("shard 1 done"),
        "other shards must finish despite the failure:\n{stdout}"
    );
    assert!(
        !root.join("BENCH_fig12.json").exists(),
        "no partial merge in degraded mode"
    );
    let _ = std::fs::remove_dir_all(&root);
}
