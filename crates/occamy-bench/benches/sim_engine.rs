//! Criterion macro-benchmarks: simulator event throughput and workload
//! generation.

use criterion::{criterion_group, criterion_main, Criterion};
use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{CbrDesc, CcAlgo, FlowDesc, SimConfig, MS, SEC, US};
use occamy_traffic::{web_search, BackgroundWorkload, QueryWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// One full incast-over-background simulation on the 8-host testbed.
fn incast_world(kind: BmKind) -> u64 {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![10_000_000_000; 8],
        prop_ps: US,
        buffer_bytes: 410_000,
        classes: 1,
        bm: BmSpec::uniform(kind, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    for s in 0..7 {
        w.add_flow(FlowDesc {
            src: s,
            dst: 7,
            bytes: 500_000,
            start_ps: 0,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: Some(0),
            is_query: true,
        });
    }
    w.run_to_completion(SEC);
    w.metrics.delivered_pkts
}

/// The Tofino-style CBR testbed step loop (the fig11/fig12 substrate):
/// two constant-bit-rate senders through one shared-buffer switch for
/// 2 ms of simulated time. Returns events executed, so throughput is
/// `events / iteration time`.
fn cbr_step_loop(kind: BmKind) -> u64 {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![
            100_000_000_000,
            100_000_000_000,
            10_000_000_000,
            10_000_000_000,
        ],
        prop_ps: US,
        buffer_bytes: 1_200_000,
        classes: 1,
        bm: BmSpec::uniform(kind, 2.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    for (host, dst, rate) in [(0usize, 2usize, 20_000_000_000u64), (1, 3, 10_000_000_000)] {
        w.add_cbr(CbrDesc {
            host,
            dst,
            rate_bps: rate,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 2 * MS,
            budget_bytes: None,
        });
    }
    w.run_to_completion(3 * MS);
    w.metrics.events_processed
}

fn bench_cbr_step_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("cbr_step_loop");
    group.sample_size(10);
    for kind in [BmKind::Dt, BmKind::Occamy] {
        group.bench_function(format!("2ms_{kind:?}"), |b| {
            b.iter(|| black_box(cbr_step_loop(kind)));
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for kind in [BmKind::Dt, BmKind::Occamy] {
        group.bench_function(format!("incast_3.5MB_{kind:?}"), |b| {
            b.iter(|| black_box(incast_world(kind)));
        });
    }
    group.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.bench_function("web_search_1s_8hosts", |b| {
        let wl = BackgroundWorkload::new(8, 10_000_000_000, 0.5, web_search());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(wl.generate(1_000_000_000_000, &mut rng).len())
        });
    });
    group.bench_function("queries_1s_32hosts", |b| {
        let qw = QueryWorkload::new(32, 16, 400_000, 200.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(qw.generate(1_000_000_000_000, &mut rng).len())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(8));
    targets = bench_cbr_step_loop, bench_simulation, bench_workloads
}
criterion_main!(benches);
