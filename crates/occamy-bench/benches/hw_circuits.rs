//! Criterion micro-benchmarks: the cell-level traffic manager and the
//! head-drop circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use occamy_core::{BmKind, QueueConfig};
use occamy_hw::{HeadDropSelector, MaxFinder, TrafficManager};
use std::hint::black_box;

fn bench_selector(c: &mut Criterion) {
    // Selector refresh (comparator row) + grant, vs queue count.
    let mut group = c.benchmark_group("head_drop_selector");
    for n in [64usize, 256, 1024] {
        let mut sel = HeadDropSelector::new(n);
        let qlens: Vec<u64> = (0..n as u64).map(|i| (i * 977) % 50_000).collect();
        group.bench_function(BenchmarkId::new("refresh_select", n), |b| {
            b.iter(|| {
                sel.refresh_shared(&qlens, 25_000);
                black_box(sel.select())
            });
        });
    }
    group.finish();
}

fn bench_maxfinder(c: &mut Criterion) {
    // The comparator tree Pushout needs, vs a plain linear scan.
    let mut group = c.benchmark_group("maxfinder");
    for n in [64usize, 1024] {
        let vals: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .collect();
        let mf = MaxFinder::new(n, 20);
        group.bench_function(BenchmarkId::new("tree", n), |b| {
            b.iter(|| black_box(mf.find(&vals)));
        });
        group.bench_function(BenchmarkId::new("linear_scan", n), |b| {
            b.iter(|| black_box(vals.iter().enumerate().max_by_key(|&(_, &v)| v)));
        });
    }
    group.finish();
}

fn bench_tm_operations(c: &mut Criterion) {
    // Full enqueue → dequeue and enqueue → head-drop cycles through the
    // three-memory structure.
    let mut group = c.benchmark_group("traffic_manager");
    group.bench_function("enqueue_dequeue_1500B", |b| {
        let cfg = QueueConfig::uniform(8, 100_000_000_000, 8.0);
        let mut tm = TrafficManager::new(65_536, 8, BmKind::Occamy.build(cfg));
        let mut id = 0u64;
        b.iter(|| {
            tm.enqueue(0, id, 1_500, id);
            id += 1;
            black_box(tm.dequeue(0, id))
        });
    });
    group.bench_function("enqueue_headdrop_1500B", |b| {
        let cfg = QueueConfig::uniform(8, 100_000_000_000, 8.0);
        let mut tm = TrafficManager::new(65_536, 8, BmKind::Occamy.build(cfg));
        let mut id = 0u64;
        b.iter(|| {
            tm.enqueue(0, id, 1_500, id);
            id += 1;
            black_box(tm.head_drop(0, id))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_selector, bench_maxfinder, bench_tm_operations
}
criterion_main!(benches);
