//! Criterion microbenches for the parallel executor's synchronization
//! path: the per-quantum barrier round-trip the coordinator pays to
//! open and close a conservative window, and the end-to-end cost of a
//! domain-decomposed run against the identical serial run — which on a
//! single core is a direct measurement of the split + window + walk
//! (cross-domain merge) overhead, since no real concurrency can hide
//! it.

use criterion::{criterion_group, criterion_main, Criterion};
use occamy_core::BmKind;
use occamy_sim::topology::{fat_tree, BmSpec, FatTreeCfg, SchedKind};
use occamy_sim::{CcAlgo, FlowDesc, SimConfig, World, MS, US};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

/// One conservative window costs the coordinator two barrier waits
/// (start the workers on the window, then wait for the window to
/// drain) plus the serial walk. This measures just the barrier
/// round-trips: `rounds` quanta across `workers` worker threads.
fn barrier_rounds(workers: usize, rounds: u64) -> u64 {
    let start = Barrier::new(workers + 1);
    let end = Barrier::new(workers + 1);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                start.wait();
                if done.load(Ordering::SeqCst) {
                    return;
                }
                end.wait();
            });
        }
        for _ in 0..rounds {
            start.wait();
            end.wait();
        }
        done.store(true, Ordering::SeqCst);
        start.wait();
    });
    rounds
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_sync_quantum");
    for workers in [2usize, 4] {
        group.bench_function(format!("barrier_roundtrip_{workers}w_x1k"), |b| {
            b.iter(|| black_box(barrier_rounds(workers, 1_000)));
        });
    }
    group.finish();
}

/// A k=4 fat-tree (16 hosts, 4 pods → 4 event domains) running a
/// shifted permutation plus a small incast — enough cross-pod traffic
/// that every window carries cross-domain arrivals through the merge
/// walk.
fn build_world(threads: usize) -> World {
    let mut sim = SimConfig::large_scale();
    sim.threads = threads;
    let mut w = fat_tree(FatTreeCfg {
        k: 4,
        host_rate_bps: 25_000_000_000,
        fabric_rate_bps: 25_000_000_000,
        link_prop_ps: 10 * US,
        buffer_per_8ports_bytes: 500_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Occamy, 8.0),
        sched: SchedKind::Fifo,
        sim,
    });
    let n = w.hosts.len();
    for src in 0..n {
        w.add_flow(FlowDesc {
            src,
            dst: (src + 5) % n,
            bytes: 400_000,
            start_ps: (src as u64) * US,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    w
}

fn run_world(threads: usize) -> u64 {
    let mut w = build_world(threads);
    w.run_to_completion(200 * MS);
    assert!(w.all_flows_done());
    w.metrics.events_processed
}

/// Serial vs domain-decomposed execution of the identical workload.
/// The `threads4` minus `serial` gap divided by `par_windows` is the
/// full per-quantum sync cost (split amortized away, barrier wakeups,
/// exec-log bookkeeping, and the cross-domain merge walk).
fn bench_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_sync_run");
    group.sample_size(10);
    group.bench_function("fat_tree_k4_permutation/serial", |b| {
        b.iter(|| black_box(run_world(1)));
    });
    group.bench_function("fat_tree_k4_permutation/threads4", |b| {
        b.iter(|| black_box(run_world(4)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_barrier, bench_run
}
criterion_main!(benches);
