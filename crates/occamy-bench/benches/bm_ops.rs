//! Criterion micro-benchmarks: the buffer-management hot path.
//!
//! Admission runs per packet on the switch's critical path, so its cost
//! matters as much as its policy. Victim selection runs once per
//! expulsion. These benches compare all schemes on both operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use occamy_core::{BmKind, BufferManager, BufferState, QueueConfig};
use std::hint::black_box;

/// A 64-queue partition with a mixed occupancy pattern.
fn state() -> BufferState {
    let mut s = BufferState::new(4_000_000, 64);
    for q in 0..64 {
        let len = (q as u64 * 7_919) % 60_000;
        if len > 0 {
            s.enqueue(q, len).unwrap();
        }
    }
    s
}

fn bench_admit(c: &mut Criterion) {
    let mut group = c.benchmark_group("admit");
    let state = state();
    for kind in [
        BmKind::Dt,
        BmKind::Occamy,
        BmKind::Abm,
        BmKind::Pushout,
        BmKind::Static,
        BmKind::CompleteSharing,
    ] {
        let bm = kind.build(QueueConfig::uniform(64, 100_000_000_000, 2.0));
        group.bench_with_input(BenchmarkId::from_parameter(bm.name()), &bm, |b, bm| {
            let mut q = 0usize;
            b.iter(|| {
                q = (q + 1) % 64;
                black_box(bm.admit(q, 1_500, &state))
            });
        });
    }
    group.finish();
}

/// A partition with `n` queues and a mixed occupancy pattern, with the
/// scheme's bookkeeping hooks driven as a substrate would.
fn state_n(n: usize, bm: &mut occamy_core::AnyBm) -> BufferState {
    let mut s = BufferState::new(n as u64 * 62_500, n);
    for q in 0..n {
        let len = (q as u64 * 7_919) % 60_000;
        if len > 0 {
            s.enqueue(q, len).unwrap();
            bm.on_enqueue(q, len, 0, &s);
        }
    }
    s
}

fn bench_select_victim(c: &mut Criterion) {
    // Victim selection runs once per expulsion grant — per packet under
    // congestion. The incremental over-allocation tracker makes it
    // O(words)/O(1) instead of a full threshold rescan; 64 vs 512 queues
    // shows the scaling.
    let mut group = c.benchmark_group("select_victim");
    for n in [64usize, 512] {
        for kind in [BmKind::Occamy, BmKind::OccamyLongest, BmKind::Pushout] {
            // A low α guarantees over-allocated queues exist.
            let mut bm = kind.build(QueueConfig::uniform(n, 100_000_000_000, 0.25));
            let state = state_n(n, &mut bm);
            group.bench_function(BenchmarkId::new(bm.name(), n), |b| {
                b.iter(|| black_box(bm.select_victim(&state)));
            });
        }
    }
    group.finish();
}

fn bench_expel_cycle(c: &mut Criterion) {
    // The steady-state reactive loop: enqueue (hook), grant a victim,
    // head-drop one packet (hook) — the per-packet work of an Occamy
    // partition under sustained congestion, including the incremental
    // tracker updates.
    let mut group = c.benchmark_group("expel_cycle");
    for n in [64usize, 512] {
        for kind in [BmKind::Occamy, BmKind::OccamyLongest] {
            let mut bm = kind.build(QueueConfig::uniform(n, 100_000_000_000, 0.25));
            let mut state = state_n(n, &mut bm);
            group.bench_function(BenchmarkId::new(bm.name(), n), |b| {
                let mut q = 0usize;
                b.iter(|| {
                    q = (q + 1) % n;
                    if state.enqueue(q, 1_500).is_ok() {
                        bm.on_enqueue(q, 1_500, 0, &state);
                    }
                    if let Some(v) = bm.select_victim(&state) {
                        let take = state.queue_len(v).min(1_500);
                        state.dequeue(v, take).unwrap();
                        bm.on_dequeue(v, take, 0, &state);
                    }
                    black_box(state.total())
                });
            });
        }
    }
    group.finish();
}

fn bench_threshold_scaling(c: &mut Criterion) {
    // Admission cost versus queue count: ABM's congested-queue count is
    // O(N); the others are O(1).
    let mut group = c.benchmark_group("threshold_vs_queues");
    for n in [8usize, 64, 512] {
        let mut s = BufferState::new(64_000_000, n);
        for q in 0..n {
            s.enqueue(q, 20_000).unwrap();
        }
        for kind in [BmKind::Dt, BmKind::Abm] {
            let bm = kind.build(QueueConfig::uniform(n, 100_000_000_000, 2.0));
            group.bench_function(BenchmarkId::new(bm.name(), n), |b| {
                b.iter(|| black_box(bm.threshold(0, &s)));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_admit, bench_select_victim, bench_expel_cycle, bench_threshold_scaling
}
criterion_main!(benches);
