//! Criterion microbenches for the transport hot path: the per-ACK
//! sender machine, the receiver's out-of-order interval merge, and
//! timer-wheel arm/fire/re-arm — the three pieces the hot/cold
//! flow-state split and the wheel are meant to keep fast.

use criterion::{criterion_group, criterion_main, Criterion};
use occamy_sim::{
    CcAlgo, Event, EventQueue, FlowRx, FlowState, SimConfig, TransportConsts, MS, US,
};
use std::hint::black_box;

/// A lossless 2 MB ACK-clocked exchange: every byte travels through
/// `next_segment` → `on_data` → `on_ack`, so the measured time is the
/// per-packet sender/receiver state-machine cost.
fn ack_clock_2mb(tc: &TransportConsts) -> u64 {
    let mut f = FlowState::new(0, 0, 1, 2_000_000, 0, 0, CcAlgo::Dctcp, tc);
    f.hot.set_started(true);
    let mut now = 0u64;
    let mut pkts = Vec::with_capacity(1_024);
    loop {
        pkts.clear();
        while f.can_send() {
            pkts.push(f.next_segment(now, tc));
        }
        now += 100 * US;
        for p in &pkts {
            let ack = f.on_data(p.seq, p.len as u64);
            if f.on_ack(ack, false, p.ts, now, tc) {
                return now;
            }
        }
    }
}

fn bench_on_ack(c: &mut Criterion) {
    let tc = TransportConsts::new(&SimConfig::default());
    let mut group = c.benchmark_group("transport_hot");
    group.bench_function("on_ack_lossless_2mb", |b| {
        b.iter(|| black_box(ack_clock_2mb(&tc)));
    });
    group.finish();
}

/// Pathological reordering at the receiver: segments arrive strictly
/// backwards (every arrival extends the interval list at the front),
/// then the hole fills and the whole list is absorbed — the pattern
/// that was quadratic with a `Vec` interval list.
fn reorder_merge(n: u64) -> u64 {
    let mut rx = FlowRx::default();
    for seq in (1..n).rev() {
        black_box(rx.on_data(seq * 1_000, 1_000));
    }
    rx.on_data(0, 1_000)
}

/// Interleaved arrival: odd segments stitch the even-segment intervals
/// pairwise (maximal interval count, then n/2 merges).
fn interleave_merge(n: u64) -> u64 {
    let mut rx = FlowRx::default();
    for seq in (2..n).step_by(2) {
        black_box(rx.on_data(seq * 1_000, 1_000));
    }
    for seq in (3..n).step_by(2) {
        black_box(rx.on_data(seq * 1_000, 1_000));
    }
    rx.on_data(1_000, 1_000)
}

fn bench_on_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_on_data");
    group.bench_function("reverse_2k_segments", |b| {
        b.iter(|| black_box(reorder_merge(2_000)));
    });
    group.bench_function("interleave_2k_segments", |b| {
        b.iter(|| black_box(interleave_merge(2_000)));
    });
    group.finish();
}

/// Timer arm/fire through the event queue: one pending timer per flow,
/// RTO-scale deadlines, popped in deadline order — the wheel path that
/// used to be heap sift traffic.
fn arm_fire(flows: u64) -> u64 {
    let mut q = EventQueue::new();
    for f in 0..flows {
        // Deadlines spread over 5–45 ms like a PTO/RTO population.
        let at = 5 * MS + (f * 7 % 40) * MS;
        q.push_timer(at, Event::Rto { flow: f as u32 });
    }
    let mut fired = 0;
    while q.pop().is_some() {
        fired += 1;
    }
    fired
}

/// The soft-deadline protocol: a timer fires early, re-arms at its
/// pushed-forward deadline, fires again — the arm/fire/cancel
/// (reschedule) cycle every ACKed flow drives.
fn rearm_cycle(rounds: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut fired = 0;
    q.push_timer(5 * MS, Event::Rto { flow: 0 });
    for _ in 0..rounds {
        let Some((t, _)) = q.pop() else { break };
        let now = t;
        fired += 1;
        // Deadline moved forward by ACK activity: resleep (the
        // cancel-equivalent of the soft-timer protocol).
        q.push_timer(now + 5 * MS, Event::Rto { flow: 0 });
    }
    fired
}

fn bench_timers(c: &mut Criterion) {
    let mut group = c.benchmark_group("timer_wheel");
    group.bench_function("arm_fire_10k_flows", |b| {
        b.iter(|| black_box(arm_fire(10_000)));
    });
    group.bench_function("rearm_cycle_10k", |b| {
        b.iter(|| black_box(rearm_cycle(10_000)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_on_ack, bench_on_data, bench_timers
}
criterion_main!(benches);
