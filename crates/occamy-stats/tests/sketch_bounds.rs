//! Property tests pinning the Greenwald–Khanna sketch's rank-error bound
//! against exact percentiles computed from the full sorted stream.

use occamy_stats::QuantileSketch;
use proptest::prelude::*;

/// Exact rank band `[lo, hi]` (1-based, inclusive) that `value` occupies
/// in `sorted` — a band rather than a point because of duplicates.
fn rank_band(sorted: &[f64], value: f64) -> (f64, f64) {
    let lo = sorted.partition_point(|&x| x < value);
    let hi = sorted.partition_point(|&x| x <= value);
    ((lo + 1) as f64, hi as f64)
}

proptest! {
    /// For any stream and any quantile, the value the sketch returns must
    /// sit within eps*n (+2 insertion slack) ranks of the target rank.
    #[test]
    fn gk_rank_error_is_bounded(
        values in prop::collection::vec(0u32..10_000, 1..600),
        qs in prop::collection::vec(0.0f64..1.001, 1..8),
    ) {
        let eps = 0.05;
        let mut sk = QuantileSketch::new(eps);
        for &v in &values {
            sk.observe(v as f64);
        }
        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len() as f64;
        let bound = eps * n + 2.0;
        for &q in &qs {
            let got = sk.quantile(q).unwrap();
            let target = (q * n).ceil().max(1.0);
            let (lo, hi) = rank_band(&sorted, got);
            // Distance from the target rank to the nearest rank the
            // returned value actually occupies.
            let err = if target < lo {
                lo - target
            } else if target > hi {
                target - hi
            } else {
                0.0
            };
            prop_assert!(
                err <= bound,
                "q={} target rank {} but value {} spans ranks [{}, {}] (err {} > bound {})",
                q, target, got, lo, hi, err, bound
            );
        }
        // The memory footprint must stay well under the stream length for
        // non-trivial streams.
        prop_assert!(sk.size() <= values.len());
    }

    /// Extremes are exact: q=0 is the stream minimum, q=1 the maximum.
    #[test]
    fn gk_extremes_are_exact(
        values in prop::collection::vec(-5_000i32..5_000, 1..400),
    ) {
        let mut sk = QuantileSketch::new(0.02);
        for &v in &values {
            sk.observe(v as f64);
        }
        let min = values.iter().copied().min().unwrap() as f64;
        let max = values.iter().copied().max().unwrap() as f64;
        prop_assert_eq!(sk.quantile(0.0), Some(min));
        prop_assert_eq!(sk.quantile(1.0), Some(max));
    }
}
