//! Empirical cumulative distribution functions (paper Fig. 7 style).

/// An empirical CDF over scalar samples.
///
/// Used to reproduce Fig. 7 (CDF of buffer / memory-bandwidth utilization
/// at packet-drop instants): collect one sample per drop, then query
/// `fraction_below` or export evenly spaced points for plotting.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Fraction of samples `<= x`, in `[0, 1]`; `None` when empty.
    pub fn fraction_below(&mut self, x: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = self.samples.partition_point(|&s| s <= x);
        Some(idx as f64 / self.samples.len() as f64)
    }

    /// Value at quantile `q ∈ [0, 1]`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Exports `(value, cumulative_fraction)` points at each distinct
    /// sample, suitable for plotting a step CDF.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        let mut out = Vec::new();
        for (i, &v) in self.samples.iter().enumerate() {
            let is_last_of_value = i + 1 == n || self.samples[i + 1] > v;
            if is_last_of_value {
                out.push((v, (i + 1) as f64 / n as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.fraction_below(1.0), None);
        assert_eq!(c.quantile(0.5), None);
        assert!(c.points().is_empty());
    }

    #[test]
    fn fraction_below_is_monotone() {
        let mut c = Cdf::new();
        for v in [0.1, 0.5, 0.5, 0.9] {
            c.add(v);
        }
        assert_eq!(c.fraction_below(0.0), Some(0.0));
        assert_eq!(c.fraction_below(0.1), Some(0.25));
        assert_eq!(c.fraction_below(0.5), Some(0.75));
        assert_eq!(c.fraction_below(1.0), Some(1.0));
    }

    #[test]
    fn quantiles_match_sorted_ranks() {
        let mut c = Cdf::new();
        for v in 1..=10 {
            c.add(v as f64);
        }
        assert_eq!(c.quantile(0.5), Some(5.0));
        assert_eq!(c.quantile(0.99), Some(10.0));
        assert_eq!(c.quantile(0.1), Some(1.0));
        assert_eq!(c.quantile(1.0), Some(10.0));
    }

    #[test]
    fn points_deduplicate_values() {
        let mut c = Cdf::new();
        for v in [2.0, 1.0, 2.0, 3.0] {
            c.add(v);
        }
        let pts = c.points();
        assert_eq!(pts, vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_range_checked() {
        let mut c = Cdf::new();
        c.add(1.0);
        let _ = c.quantile(1.5);
    }
}
