//! Flow and query completion records (FCT / QCT / slowdowns).

use crate::Summary;

/// Traffic class of a flow, used to slice the paper's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// A response flow belonging to an incast query (QCT numerator).
    Query,
    /// A background flow (web-search / all-to-all / all-reduce).
    Background,
}

/// Completion record of one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowRecord {
    /// Flow identity.
    pub id: u64,
    /// Flow size in payload bytes.
    pub bytes: u64,
    /// Start time (ps).
    pub start_ps: u64,
    /// Completion time (ps); `None` if unfinished at simulation end.
    pub end_ps: Option<u64>,
    /// Class for metric slicing.
    pub class: FlowClass,
    /// Query this flow belongs to, if any.
    pub query: Option<u64>,
}

impl FlowRecord {
    /// Flow completion time in ps, if finished.
    pub fn fct_ps(&self) -> Option<u64> {
        self.end_ps.map(|e| e.saturating_sub(self.start_ps))
    }
}

/// QCT record for one incast query.
#[derive(Debug, Clone, Copy)]
pub struct QctRecord {
    /// Query identity.
    pub query: u64,
    /// Total response bytes across all flows of the query.
    pub bytes: u64,
    /// Query issue time (ps).
    pub start_ps: u64,
    /// Time the *last* response flow finished (ps); `None` if any flow is
    /// unfinished.
    pub end_ps: Option<u64>,
}

impl QctRecord {
    /// Query completion time in ps, if all flows finished.
    pub fn qct_ps(&self) -> Option<u64> {
        self.end_ps.map(|e| e.saturating_sub(self.start_ps))
    }
}

/// A set of flow records with the paper's standard aggregations.
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    records: Vec<FlowRecord>,
}

impl FlowSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Creates a set from records.
    pub fn from_records(records: Vec<FlowRecord>) -> Self {
        FlowSet { records }
    }

    /// Adds one record.
    pub fn push(&mut self, r: FlowRecord) {
        self.records.push(r);
    }

    /// All records.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Number of flows that never finished.
    pub fn unfinished(&self) -> usize {
        self.records.iter().filter(|r| r.end_ps.is_none()).count()
    }

    /// FCTs in milliseconds for finished flows matching `filter`.
    pub fn fct_ms<F: Fn(&FlowRecord) -> bool>(&self, filter: F) -> Summary {
        let mut s = Summary::new();
        for r in self.records.iter().filter(|r| filter(r)) {
            if let Some(fct) = r.fct_ps() {
                s.add(fct as f64 / 1e9);
            }
        }
        s
    }

    /// FCT slowdowns (actual / ideal) for finished flows matching
    /// `filter`; `ideal_ps(bytes)` gives the no-contention FCT.
    pub fn slowdown<F, I>(&self, filter: F, ideal_ps: I) -> Summary
    where
        F: Fn(&FlowRecord) -> bool,
        I: Fn(u64) -> u64,
    {
        let mut s = Summary::new();
        for r in self.records.iter().filter(|r| filter(r)) {
            if let Some(fct) = r.fct_ps() {
                let ideal = ideal_ps(r.bytes).max(1);
                s.add(fct as f64 / ideal as f64);
            }
        }
        s
    }

    /// Groups query-class flows into per-query QCT records.
    ///
    /// A query completes when its last flow completes; if any flow is
    /// unfinished the query is unfinished. Flows without a query id are
    /// ignored.
    pub fn qcts(&self) -> Vec<QctRecord> {
        let mut map: std::collections::BTreeMap<u64, QctRecord> = std::collections::BTreeMap::new();
        for r in &self.records {
            let Some(q) = r.query else { continue };
            let e = map.entry(q).or_insert(QctRecord {
                query: q,
                bytes: 0,
                start_ps: u64::MAX,
                end_ps: Some(0),
            });
            e.bytes += r.bytes;
            e.start_ps = e.start_ps.min(r.start_ps);
            e.end_ps = match (e.end_ps, r.end_ps) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
        }
        map.into_values().collect()
    }

    /// QCTs in milliseconds for finished queries.
    pub fn qct_ms(&self) -> Summary {
        let mut s = Summary::new();
        for q in self.qcts() {
            if let Some(qct) = q.qct_ps() {
                s.add(qct as f64 / 1e9);
            }
        }
        s
    }

    /// QCT slowdowns for finished queries, with `ideal_ps(total_bytes)`.
    pub fn qct_slowdown<I: Fn(u64) -> u64>(&self, ideal_ps: I) -> Summary {
        let mut s = Summary::new();
        for q in self.qcts() {
            if let Some(qct) = q.qct_ps() {
                s.add(qct as f64 / ideal_ps(q.bytes).max(1) as f64);
            }
        }
        s
    }
}

/// The paper's "small flow" cutoff for tail-FCT slices (<100 KB).
pub const SMALL_FLOW_BYTES: u64 = 100_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        bytes: u64,
        start: u64,
        end: Option<u64>,
        class: FlowClass,
        q: Option<u64>,
    ) -> FlowRecord {
        FlowRecord {
            id,
            bytes,
            start_ps: start,
            end_ps: end,
            class,
            query: q,
        }
    }

    #[test]
    fn fct_basics() {
        let r = rec(1, 1000, 10, Some(110), FlowClass::Background, None);
        assert_eq!(r.fct_ps(), Some(100));
        let r2 = rec(2, 1000, 10, None, FlowClass::Background, None);
        assert_eq!(r2.fct_ps(), None);
    }

    #[test]
    fn fct_summary_filters_and_converts() {
        let mut fs = FlowSet::new();
        fs.push(rec(
            1,
            50_000,
            0,
            Some(2_000_000_000),
            FlowClass::Background,
            None,
        )); // 2 ms
        fs.push(rec(
            2,
            200_000,
            0,
            Some(4_000_000_000),
            FlowClass::Background,
            None,
        )); // 4 ms
        fs.push(rec(
            3,
            100,
            0,
            Some(1_000_000_000),
            FlowClass::Query,
            Some(1),
        ));
        let all_bg = fs.fct_ms(|r| r.class == FlowClass::Background);
        assert_eq!(all_bg.len(), 2);
        assert_eq!(all_bg.mean(), Some(3.0));
        let small = fs.fct_ms(|r| r.class == FlowClass::Background && r.bytes < SMALL_FLOW_BYTES);
        assert_eq!(small.len(), 1);
        assert_eq!(small.mean(), Some(2.0));
    }

    #[test]
    fn slowdown_uses_ideal() {
        let mut fs = FlowSet::new();
        fs.push(rec(1, 1_000, 0, Some(300), FlowClass::Background, None));
        let s = fs.slowdown(|_| true, |_bytes| 100);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn qct_takes_last_flow() {
        let mut fs = FlowSet::new();
        fs.push(rec(1, 100, 50, Some(150), FlowClass::Query, Some(7)));
        fs.push(rec(2, 100, 50, Some(450), FlowClass::Query, Some(7)));
        fs.push(rec(3, 100, 60, Some(160), FlowClass::Query, Some(8)));
        let qcts = fs.qcts();
        assert_eq!(qcts.len(), 2);
        assert_eq!(qcts[0].query, 7);
        assert_eq!(qcts[0].bytes, 200);
        assert_eq!(qcts[0].qct_ps(), Some(400));
        assert_eq!(qcts[1].qct_ps(), Some(100));
    }

    #[test]
    fn unfinished_flow_poisons_query() {
        let mut fs = FlowSet::new();
        fs.push(rec(1, 100, 0, Some(100), FlowClass::Query, Some(1)));
        fs.push(rec(2, 100, 0, None, FlowClass::Query, Some(1)));
        let qcts = fs.qcts();
        assert_eq!(qcts[0].qct_ps(), None);
        assert_eq!(fs.unfinished(), 1);
        assert!(fs.qct_ms().is_empty());
    }

    #[test]
    fn qct_slowdown_aggregates_bytes() {
        let mut fs = FlowSet::new();
        fs.push(rec(1, 500, 0, Some(1_000), FlowClass::Query, Some(1)));
        fs.push(rec(2, 500, 0, Some(2_000), FlowClass::Query, Some(1)));
        // ideal(1000 bytes) = 1000 ps ⇒ slowdown 2.
        let s = fs.qct_slowdown(|bytes| bytes);
        assert_eq!(s.mean(), Some(2.0));
    }
}
