//! Streaming sketches: O(1)-memory quantile estimation and windowed rates.
//!
//! Long-horizon runs (hours of simulated time, millions of flows) cannot
//! afford the per-record vectors used by [`crate::Summary`]/[`crate::Cdf`]:
//! those grow linearly with run length. This module provides fixed-size
//! replacements used by the live-telemetry path:
//!
//! * [`QuantileSketch`] — a Greenwald–Khanna ε-approximate quantile
//!   summary. After `n` observations, `quantile(q)` returns a value whose
//!   rank in the exact sorted stream is within `ε·n` of `q·n` (plus a
//!   couple of positions of insertion slack), while storing
//!   `O((1/ε)·log(ε·n))` tuples regardless of `n`.
//! * [`EwmaRate`] — an exponentially-weighted moving rate over an explicit
//!   time axis, for "events per second right now" style gauges.

/// One tuple of the Greenwald–Khanna summary: a stored value `v` covering
/// `g` observations, with `delta` bounding the uncertainty of its rank.
#[derive(Debug, Clone, Copy)]
struct Entry {
    v: f64,
    g: u64,
    delta: u64,
}

/// ε-approximate streaming quantile estimator (Greenwald–Khanna 2001).
///
/// Memory is bounded by the compression invariant, not by the number of
/// observations: adjacent tuples are merged whenever their combined rank
/// uncertainty stays below `2·ε·n`. Queries answer any quantile with rank
/// error at most `ε·n + 2` (the `+2` is insertion slack, asserted by the
/// proptest in `tests/sketch_bounds.rs`).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    eps: f64,
    n: u64,
    entries: Vec<Entry>,
    since_compress: u64,
}

impl QuantileSketch {
    /// Create a sketch with rank-error bound `eps` (clamped to
    /// `[1e-4, 0.25]`). `eps = 0.01` keeps ~hundreds of tuples.
    pub fn new(eps: f64) -> Self {
        QuantileSketch {
            eps: eps.clamp(1e-4, 0.25),
            n: 0,
            entries: Vec::new(),
            since_compress: 0,
        }
    }

    /// The configured rank-error bound ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of observations absorbed so far.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True when no observations have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored tuples (the memory footprint).
    pub fn size(&self) -> usize {
        self.entries.len()
    }

    /// Absorb one observation. Non-finite values are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let band = (2.0 * self.eps * self.n as f64).floor() as u64;
        let idx = self.entries.partition_point(|e| e.v < v);
        let delta = if idx == 0 || idx == self.entries.len() {
            0
        } else {
            band.saturating_sub(1)
        };
        self.entries.insert(idx, Entry { v, g: 1, delta });
        self.n += 1;
        self.since_compress += 1;
        if self.since_compress as f64 >= 1.0 / (2.0 * self.eps) {
            self.compress();
            self.since_compress = 0;
        }
    }

    /// Merge adjacent tuples whose combined uncertainty fits the band.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let band = (2.0 * self.eps * self.n as f64).floor() as u64;
        let mut i = self.entries.len() - 2;
        // Never merge away the extreme tuples: min and max stay exact.
        while i >= 1 {
            let merged = self.entries[i].g + self.entries[i + 1].g + self.entries[i + 1].delta;
            if merged <= band {
                self.entries[i + 1].g += self.entries[i].g;
                self.entries.remove(i);
            }
            i -= 1;
        }
    }

    /// The ε-approximate `q`-quantile (`q` clamped to `[0, 1]`), or `None`
    /// while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extreme tuples are never merged away, so min/max are exact.
        if q == 0.0 {
            return self.entries.first().map(|e| e.v);
        }
        if q == 1.0 {
            return self.entries.last().map(|e| e.v);
        }
        let target = (q * self.n as f64).ceil().max(1.0);
        let slack = (self.eps * self.n as f64).max(1.0);
        let mut rmin = 0u64;
        let mut prev = self.entries[0].v;
        for e in &self.entries {
            rmin += e.g;
            let rmax = (rmin + e.delta) as f64;
            if rmax > target + slack {
                return Some(prev);
            }
            prev = e.v;
        }
        Some(prev)
    }
}

/// Exponentially-weighted moving rate over an explicit time axis.
///
/// Feed it `(now, count-since-last-update)` pairs; it maintains a rate in
/// `count / time-unit` smoothed over roughly `window` time units. The time
/// axis is caller-defined (seconds of wall clock, seconds of sim time, …),
/// so the struct itself never reads a clock — callers stay in charge of
/// determinism.
#[derive(Debug, Clone)]
pub struct EwmaRate {
    window: f64,
    last_t: Option<f64>,
    rate: f64,
}

impl EwmaRate {
    /// Create a rate estimator smoothing over `window` time units
    /// (clamped to be positive).
    pub fn new(window: f64) -> Self {
        EwmaRate {
            window: if window > 0.0 { window } else { 1.0 },
            last_t: None,
            rate: 0.0,
        }
    }

    /// Record that `count` events occurred between the previous update and
    /// time `t`; returns the new smoothed rate. Out-of-order or zero-dt
    /// updates fold into the next interval instead of dividing by zero.
    pub fn update(&mut self, t: f64, count: f64) -> f64 {
        match self.last_t {
            None => {
                self.last_t = Some(t);
                // No interval yet — nothing to rate against.
                self.rate
            }
            Some(prev) if t > prev => {
                let dt = t - prev;
                let inst = count / dt;
                let alpha = 1.0 - (-dt / self.window).exp();
                self.rate += alpha * (inst - self.rate);
                self.last_t = Some(t);
                self.rate
            }
            Some(_) => self.rate,
        }
    }

    /// The current smoothed rate (0 until two updates have arrived).
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_tracks_exact_quantiles_on_a_shuffled_ramp() {
        // Deterministic pseudo-shuffle of 0..5000 via a coprime stride.
        let n = 5000u64;
        let mut sk = QuantileSketch::new(0.01);
        for i in 0..n {
            sk.observe(((i * 2654435761) % n) as f64);
        }
        assert_eq!(sk.len(), n);
        for &(q, want) in &[(0.5, 2500.0), (0.9, 4500.0), (0.99, 4950.0)] {
            let got = sk.quantile(q).unwrap();
            let err = (got - want).abs();
            assert!(
                err <= 0.01 * n as f64 + 2.0,
                "q={q}: got {got}, want ~{want} (err {err})"
            );
        }
        assert_eq!(sk.quantile(0.0), Some(0.0));
        assert_eq!(sk.quantile(1.0), Some((n - 1) as f64));
    }

    #[test]
    fn sketch_memory_stays_sublinear() {
        let mut sk = QuantileSketch::new(0.01);
        for i in 0..200_000u64 {
            sk.observe((i % 977) as f64);
        }
        // Exact storage would hold 200k points; GK holds O((1/eps)·log(eps·n)).
        assert!(
            sk.size() < 2_000,
            "sketch grew to {} tuples for 200k observations",
            sk.size()
        );
    }

    #[test]
    fn sketch_handles_empty_and_singleton() {
        let mut sk = QuantileSketch::new(0.05);
        assert!(sk.is_empty());
        assert_eq!(sk.quantile(0.5), None);
        sk.observe(42.0);
        assert_eq!(sk.quantile(0.0), Some(42.0));
        assert_eq!(sk.quantile(1.0), Some(42.0));
        sk.observe(f64::NAN); // ignored
        assert_eq!(sk.len(), 1);
    }

    #[test]
    fn ewma_converges_to_a_constant_rate() {
        let mut r = EwmaRate::new(2.0);
        // 100 events per 0.1s step = 1000 events/s.
        for step in 0..200 {
            r.update(step as f64 * 0.1, 100.0);
        }
        assert!(
            (r.rate() - 1000.0).abs() < 5.0,
            "rate {} != ~1000",
            r.rate()
        );
    }

    #[test]
    fn ewma_ignores_non_advancing_time() {
        let mut r = EwmaRate::new(1.0);
        r.update(1.0, 10.0);
        r.update(2.0, 10.0);
        let before = r.rate();
        r.update(2.0, 50.0); // dt = 0: folded, not a division by zero
        r.update(1.5, 50.0); // out of order: ignored
        assert_eq!(r.rate(), before);
    }
}
