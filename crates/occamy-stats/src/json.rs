//! Minimal JSON document model for machine-readable experiment reports.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! are unavailable; this hand-rolled value type covers both directions
//! the workspace needs — *emitting* reports and *reading them back* (the
//! shard plan/run/merge pipeline round-trips cell specs and partial
//! results through files) — with correct string escaping and clean
//! integer formatting. Construction is explicit (`Json::obj`,
//! `Json::arr`, `From` impls) rather than derive-based, and
//! [`Json::parse`] is exact: a document emitted by this module parses
//! back to a value that re-renders byte-identically.

use std::fmt;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// An unsigned integer, serialized exactly (f64 would corrupt
    /// values ≥ 2^53 — e.g. the 64-bit cell seeds in bench reports).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Writes the document to `path` (with a trailing newline), creating
    /// parent directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, format!("{self}\n"))
    }

    /// Parses a JSON document.
    ///
    /// Numbers without sign, fraction or exponent that fit a `u64`
    /// become [`Json::UInt`] (exact — seeds exceed 2^53); everything
    /// else numeric becomes [`Json::Num`]. Errors carry a line:column
    /// position and a short description of what was expected.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after the JSON document"));
        }
        Ok(v)
    }

    /// Member of an object by key (`None` for other variants / missing).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (`Num` or `UInt`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The numeric payload as `u64`: a `UInt`, or a `Num` that is a
    /// non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 && *v >= 0.0 && *v < 1.8446744073709552e19 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs in document order, when this is an
    /// object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

// -------------------------------------------------------------------
// Parser
// -------------------------------------------------------------------

/// Nesting bound: the parser recurses per container level, so without a
/// cap a pathological `[[[[…` input (a corrupted shard file, say) would
/// overflow the stack — an uncatchable abort instead of an error. Real
/// report documents nest 4–5 levels deep.
const MAX_DEPTH: usize = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        format!("{what} at line {line} column {col}")
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[', "expected '['")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{', "expected '{'")?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let before = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > before
        };
        if !digits(self) {
            return Err(self.err("expected digits in number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err("malformed number literal"))?;
        if !v.is_finite() {
            return Err(self.err("number out of f64 range"));
        }
        Ok(Json::Num(v))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            // Integer-valued numbers print without a fraction so counters
            // and byte sizes read naturally.
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => write!(f, "{}", *n as i64),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
        assert_eq!(Json::from(Option::<f64>::None).render(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::from(2u64), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[2,null]}"#);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::from(410_000u64).render(), "410000");
        assert_eq!(Json::from(0.25).render(), "0.25");
    }

    #[test]
    fn u64_is_exact_beyond_f64_precision() {
        // Cell seeds are raw 64-bit values; f64 would round them.
        let seed = 17_293_822_569_102_704_642u64;
        assert_eq!(Json::from(seed).render(), "17293822569102704642");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    fn parse_round_trips_emitted_documents() {
        let doc = Json::obj([
            ("scenario", Json::from("fig12")),
            ("seed", Json::from(17_293_822_569_102_704_642u64)),
            ("loss", Json::from(0.25)),
            ("neg", Json::from(-3.0)),
            ("big", Json::from(1e300)),
            ("empty", Json::arr([])),
            ("flags", Json::arr([Json::from(true), Json::Null])),
            ("label", Json::from("α=2 \"quoted\"\nline")),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.render(), text, "parse→render must be the identity");
        assert_eq!(
            back.get("seed").unwrap(),
            &Json::UInt(17_293_822_569_102_704_642)
        );
        assert_eq!(back.get("loss").and_then(Json::as_f64), Some(0.25));
        assert_eq!(back.get("neg").and_then(Json::as_f64), Some(-3.0));
        assert_eq!(
            back.get("label").and_then(Json::as_str),
            Some("α=2 \"quoted\"\nline")
        );
    }

    #[test]
    fn parse_accepts_standard_json() {
        let v =
            Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"x\\u0041\\ud83d\\ude00\" ] , \"b\" : { } } ")
                .unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0], Json::UInt(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("xA😀"));
        assert_eq!(v.get("b").and_then(Json::entries), Some(&[][..]));
    }

    #[test]
    fn integer_kinds_are_preserved() {
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        // One past u64::MAX falls back to f64.
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
        assert_eq!(Json::parse("-7").unwrap(), Json::Num(-7.0));
        assert_eq!(Json::parse("-7").unwrap().render(), "-7");
    }

    #[test]
    fn parse_errors_name_position_and_expectation() {
        for (text, needle) in [
            ("", "unexpected end of input"),
            ("{\"a\":1,}", "expected"),
            ("[1 2]", "expected ',' or ']'"),
            ("\"abc", "unterminated string"),
            ("{\"a\":01x}", "expected ',' or '}'"),
            ("nul", "expected 'null'"),
            ("1e999", "out of f64 range"),
            ("{\"a\":1}\n{\"b\":2}", "trailing content"),
        ] {
            let e = Json::parse(text).unwrap_err();
            assert!(e.contains(needle), "{text:?}: {e}");
            assert!(e.contains("line"), "{text:?}: error lacks position: {e}");
        }
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(200_000);
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.contains("nesting deeper than"), "{e}");
        // …while legitimate nesting parses fine.
        let ok = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_reject_other_variants() {
        assert_eq!(Json::Null.as_f64(), None);
        assert_eq!(Json::from("x").as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::from(2u64).get("k"), None);
        assert_eq!(Json::Null.as_arr(), None);
    }

    #[test]
    fn write_creates_parents() {
        let dir = std::env::temp_dir().join("occamy_json_test");
        let path = dir.join("deep").join("report.json");
        Json::obj([("ok", Json::from(true))])
            .write_to(&path)
            .unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "{\"ok\":true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
