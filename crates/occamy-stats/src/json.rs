//! Minimal JSON document model for machine-readable experiment reports.
//!
//! The build environment has no crates.io access, so `serde`/`serde_json`
//! are unavailable; this hand-rolled value type covers the one direction
//! the workspace needs — *emitting* reports — with correct string
//! escaping and clean integer formatting. Construction is explicit
//! (`Json::obj`, `Json::arr`, `From` impls) rather than derive-based.

use std::fmt;
use std::path::Path;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values serialize as `null`.
    Num(f64),
    /// An unsigned integer, serialized exactly (f64 would corrupt
    /// values ≥ 2^53 — e.g. the 64-bit cell seeds in bench reports).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        self.to_string()
    }

    /// Writes the document to `path` (with a trailing newline), creating
    /// parent directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, format!("{self}\n"))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(v) => write!(f, "{v}"),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            // Integer-valued numbers print without a fraction so counters
            // and byte sizes read naturally.
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9e15 => write!(f, "{}", *n as i64),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(3u64).render(), "3");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::from("hi").render(), "\"hi\"");
        assert_eq!(Json::from(Option::<f64>::None).render(), "null");
    }

    #[test]
    fn strings_escape() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::from(2u64), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[2,null]}"#);
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::from(410_000u64).render(), "410000");
        assert_eq!(Json::from(0.25).render(), "0.25");
    }

    #[test]
    fn u64_is_exact_beyond_f64_precision() {
        // Cell seeds are raw 64-bit values; f64 would round them.
        let seed = 17_293_822_569_102_704_642u64;
        assert_eq!(Json::from(seed).render(), "17293822569102704642");
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    fn write_creates_parents() {
        let dir = std::env::temp_dir().join("occamy_json_test");
        let path = dir.join("deep").join("report.json");
        Json::obj([("ok", Json::from(true))])
            .write_to(&path)
            .unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "{\"ok\":true}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
