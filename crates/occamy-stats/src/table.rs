//! Plain-text tables and CSV export for experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table with a title and named columns.
///
/// Every experiment binary prints one table per paper panel so the output
/// reads like the figure's data, and optionally writes the same rows to a
/// CSV under `results/`.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "cell/column mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Serializes the table (title, columns, rows of strings) as JSON.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj([
            ("title", crate::Json::from(self.title.as_str())),
            (
                "columns",
                crate::Json::arr(self.columns.iter().map(|c| crate::Json::from(c.as_str()))),
            ),
            (
                "rows",
                crate::Json::arr(self.rows.iter().map(|row| {
                    crate::Json::arr(row.iter().map(|c| crate::Json::from(c.as_str())))
                })),
            ),
        ])
    }

    /// Writes the table as CSV to `path`, creating parent directories.
    pub fn to_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut body = String::new();
        let _ = writeln!(body, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(body, "{}", row.join(","));
        }
        write_csv(path, &body)
    }
}

/// Writes `contents` to `path`, creating parent directories as needed.
pub fn write_csv(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["scheme", "qct_ms"]);
        t.row(vec!["Occamy".into(), "1.5".into()]);
        t.row(vec!["DT".into(), "12.25".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("scheme"));
        assert!(s.contains("Occamy"));
        // Right alignment: the shorter value is padded.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cell/column mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_captures_all_cells() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "x\"y".into()]);
        assert_eq!(
            t.to_json().render(),
            r#"{"title":"T","columns":["a","b"],"rows":[["1","x\"y"]]}"#
        );
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("occamy_stats_test");
        let path = dir.join("sub").join("t.csv");
        t.to_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
