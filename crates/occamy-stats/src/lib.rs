//! Metrics and reporting for the Occamy experiments.
//!
//! The paper evaluates buffer management through flow-level metrics:
//! Flow Completion Time (FCT), Query Completion Time (QCT — the completion
//! of *all* flows belonging to one incast query), their slowdowns versus
//! an idealized no-contention baseline, tail percentiles, and CDFs of
//! buffer / memory-bandwidth utilization sampled on packet drops (Fig. 7).
//! This crate provides those building blocks plus plain-text table and CSV
//! output used by every experiment binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod json;
mod records;
mod sketch;
mod summary;
mod table;

pub use cdf::Cdf;
pub use json::Json;
pub use records::{FlowClass, FlowRecord, FlowSet, QctRecord, SMALL_FLOW_BYTES};
pub use sketch::{EwmaRate, QuantileSketch};
pub use summary::Summary;
pub use table::{write_csv, Table};
