//! Scalar sample summaries: mean, percentiles, extrema.

/// A collection of scalar samples supporting means and percentiles.
///
/// Percentiles use the nearest-rank method on a sorted copy; the sort is
/// deferred and cached so repeated queries are cheap.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Creates a summary from existing samples.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        Summary {
            samples,
            sorted: false,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Nearest-rank percentile `p ∈ [0, 100]`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.samples[rank.clamp(1, n) - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 99th percentile — the paper's tail metric.
    pub fn p99(&mut self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// Borrow the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Serializes the summary's headline statistics (count, mean, median,
    /// p99, min, max) as a JSON object. Takes `&mut self` so the
    /// percentile sort is done in place and cached, like
    /// [`Summary::percentile`] — no copy of the samples is made.
    pub fn to_json(&mut self) -> crate::Json {
        crate::Json::obj([
            ("count", crate::Json::from(self.len())),
            ("mean", crate::Json::from(self.mean())),
            ("p50", crate::Json::from(self.median())),
            ("p99", crate::Json::from(self.p99())),
            ("min", crate::Json::from(self.min())),
            ("max", crate::Json::from(self.max())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_yields_none() {
        let mut s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn mean_and_extrema() {
        let s = Summary::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Summary::from_samples((1..=100).map(f64::from).collect());
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(1.0), Some(1.0));
        assert_eq!(s.percentile(0.0), Some(1.0)); // clamped to first
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = Summary::from_samples(vec![7.0]);
        assert_eq!(s.percentile(1.0), Some(7.0));
        assert_eq!(s.median(), Some(7.0));
        assert_eq!(s.p99(), Some(7.0));
    }

    #[test]
    fn add_invalidates_sorted_cache() {
        let mut s = Summary::from_samples(vec![5.0, 1.0]);
        assert_eq!(s.median(), Some(1.0));
        s.add(0.5);
        assert_eq!(s.percentile(33.0), Some(0.5));
    }

    #[test]
    fn json_has_headline_stats() {
        let mut s = Summary::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        let j = s.to_json().render();
        assert!(j.contains("\"count\":4"), "{j}");
        assert!(j.contains("\"mean\":2.5"), "{j}");
        assert!(j.contains("\"max\":4"), "{j}");
        let empty = Summary::new().to_json().render();
        assert!(empty.contains("\"mean\":null"), "{empty}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        let mut s = Summary::from_samples(vec![1.0]);
        let _ = s.percentile(101.0);
    }
}
