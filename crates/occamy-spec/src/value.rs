//! The untyped document tree both readers (TOML and JSON) produce and
//! the typed model consumes.

use crate::error::{Result, SpecError};

/// One parsed configuration value. Tables preserve key order (the spec
/// compiler turns `[grid]` keys into grid axes in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An integer (wide enough for `u64` seeds in `BENCH_*.json`).
    Int(i128),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A key-ordered table.
    Table(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }

    /// Looks up `key` in a table value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Table(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The table entries.
    pub fn entries(&self) -> Result<&[(String, Value)]> {
        match self {
            Value::Table(kv) => Ok(kv),
            other => Err(SpecError::new(format!(
                "expected a table, found {}",
                other.type_name()
            ))),
        }
    }

    /// The string content.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(SpecError::new(format!(
                "expected a string, found {}",
                other.type_name()
            ))),
        }
    }

    /// The integer content.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => i64::try_from(*v)
                .map_err(|_| SpecError::new(format!("integer {v} out of i64 range"))),
            other => Err(SpecError::new(format!(
                "expected an integer, found {}",
                other.type_name()
            ))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v)
                .map_err(|_| SpecError::new(format!("expected a non-negative integer, found {v}"))),
            other => Err(SpecError::new(format!(
                "expected an integer, found {}",
                other.type_name()
            ))),
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(SpecError::new(format!(
                "expected a number, found {}",
                other.type_name()
            ))),
        }
    }

    /// The boolean content.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(SpecError::new(format!(
                "expected a boolean, found {}",
                other.type_name()
            ))),
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Result<&[Value]> {
        match self {
            Value::Array(v) => Ok(v),
            other => Err(SpecError::new(format!(
                "expected an array, found {}",
                other.type_name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_errors() {
        let t = Value::Table(vec![
            ("a".to_string(), Value::Int(3)),
            ("b".to_string(), Value::Str("x".to_string())),
        ]);
        assert_eq!(t.get("a").unwrap().as_int().unwrap(), 3);
        assert_eq!(t.get("a").unwrap().as_f64().unwrap(), 3.0);
        assert_eq!(t.get("b").unwrap().as_str().unwrap(), "x");
        assert!(t.get("missing").is_none());
        let e = t.get("b").unwrap().as_int().unwrap_err();
        assert!(e.message().contains("expected an integer, found string"));
        assert!(Value::Int(-1).as_u64().is_err());
    }
}
