//! A minimal TOML reader covering the subset scenario specs use:
//! `[table]` / `[[array-of-tables]]` headers (dotted paths allowed),
//! bare / quoted / dotted keys, basic and literal strings, integers
//! (decimal, hex, octal, binary, `_` separators), floats, booleans,
//! single- and multi-line arrays, and inline tables. Dates and
//! multi-line strings are rejected with a clear error. Key order is
//! preserved.

use crate::error::{Result, SpecError};
use crate::value::Value;

/// Parses a TOML document into a [`Value::Table`] root.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        s: input.as_bytes(),
        i: 0,
    };
    let mut root = Value::Table(Vec::new());
    // The table path new `key = value` lines land in; updated by
    // `[header]` / `[[header]]` lines.
    let mut current: Vec<String> = Vec::new();
    loop {
        p.skip_trivia();
        if p.at_end() {
            break;
        }
        if p.peek() == Some(b'[') {
            p.bump();
            let array = p.peek() == Some(b'[');
            if array {
                p.bump();
            }
            let path = p.parse_dotted_key()?;
            p.expect(b']')?;
            if array {
                p.expect(b']')?;
            }
            p.expect_line_end()?;
            if array {
                push_array_table(&mut root, &path).map_err(|e| p.at_line(e))?;
            } else {
                // Creating the table now (even if it stays empty) both
                // validates the path and reserves key order.
                navigate(&mut root, &path, true).map_err(|e| p.at_line(e))?;
            }
            current = path;
        } else {
            let keys = p.parse_dotted_key()?;
            p.skip_ws();
            p.expect(b'=')?;
            p.skip_ws();
            let value = p.parse_value(0)?;
            p.expect_line_end()?;
            let mut path = current.clone();
            path.extend(keys[..keys.len() - 1].iter().cloned());
            let table = navigate(&mut root, &path, true).map_err(|e| p.at_line(e))?;
            let key = keys.last().expect("dotted key is never empty").clone();
            if table.iter().any(|(k, _)| *k == key) {
                return Err(p.at_line(SpecError::new(format!("duplicate key '{key}'"))));
            }
            table.push((key, value));
        }
    }
    Ok(root)
}

/// Walks `path` inside `root`, creating intermediate tables when
/// `create` is set; a path segment holding an array of tables descends
/// into its **last** element (TOML's `[[x]]` … `[x.y]` rule).
fn navigate<'v>(
    root: &'v mut Value,
    path: &[String],
    create: bool,
) -> std::result::Result<&'v mut Vec<(String, Value)>, SpecError> {
    let mut node = root;
    for seg in path {
        let table = match node {
            Value::Table(kv) => kv,
            _ => return Err(SpecError::new(format!("'{seg}' is not inside a table"))),
        };
        if !table.iter().any(|(k, _)| k == seg) {
            if !create {
                return Err(SpecError::new(format!("no such table '{seg}'")));
            }
            table.push((seg.clone(), Value::Table(Vec::new())));
        }
        let entry = table
            .iter_mut()
            .find(|(k, _)| k == seg)
            .map(|(_, v)| v)
            .expect("just ensured present");
        node = match entry {
            Value::Array(items) => items
                .last_mut()
                .ok_or_else(|| SpecError::new(format!("array of tables '{seg}' is empty")))?,
            other => other,
        };
    }
    match node {
        Value::Table(kv) => Ok(kv),
        other => Err(SpecError::new(format!(
            "expected a table, found {}",
            other.type_name()
        ))),
    }
}

/// Appends a fresh table to the array of tables at `path` (`[[path]]`).
fn push_array_table(root: &mut Value, path: &[String]) -> std::result::Result<(), SpecError> {
    let (last, parent) = path.split_last().expect("header path is never empty");
    let table = navigate(root, parent, true)?;
    match table.iter_mut().find(|(k, _)| k == last) {
        None => table.push((last.clone(), Value::Array(vec![Value::Table(Vec::new())]))),
        Some((_, Value::Array(items))) => items.push(Value::Table(Vec::new())),
        Some((_, other)) => {
            return Err(SpecError::new(format!(
                "'{last}' is a {}, not an array of tables",
                other.type_name()
            )))
        }
    }
    Ok(())
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.i >= self.s.len()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        self.i += usize::from(c.is_some());
        c
    }

    fn line(&self) -> usize {
        1 + self.s[..self.i.min(self.s.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
    }

    fn at_line(&self, e: SpecError) -> SpecError {
        SpecError::new(format!("line {}: {}", self.line(), e.message()))
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(self.at_line(SpecError::new(msg)))
    }

    /// Skips spaces and tabs.
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.i += 1;
        }
    }

    /// Skips whitespace, newlines and `#` comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => self.i += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.i += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a header or key-value, only a comment may precede the
    /// newline.
    fn expect_line_end(&mut self) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.i += 1;
            }
        }
        match self.peek() {
            None | Some(b'\n') => Ok(()),
            Some(b'\r') => Ok(()),
            Some(c) => self.err(format!("unexpected '{}' after value", c as char)),
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected '{}', found {}",
                c as char,
                self.peek()
                    .map_or("end of input".to_string(), |b| format!("'{}'", b as char))
            ))
        }
    }

    /// `key`, `key.sub`, `"quoted".sub` …
    fn parse_dotted_key(&mut self) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        loop {
            self.skip_ws();
            keys.push(self.parse_key()?);
            self.skip_ws();
            if self.peek() == Some(b'.') {
                self.i += 1;
            } else {
                return Ok(keys);
            }
        }
    }

    fn parse_key(&mut self) -> Result<String> {
        match self.peek() {
            Some(b'"') => self.parse_basic_string(),
            Some(b'\'') => self.parse_literal_string(),
            _ => {
                let start = self.i;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_' || c == b'-')
                {
                    self.i += 1;
                }
                if self.i == start {
                    return self.err("expected a key");
                }
                Ok(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
            }
        }
    }

    fn parse_basic_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        if self.s[self.i..].starts_with(b"\"\"") {
            return self.err("multi-line strings are not supported in specs");
        }
        let mut out = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return self.err("unterminated string"),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().and_then(|c| (c as char).to_digit(16));
                            match d {
                                Some(d) => code = code * 16 + d,
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        match char::from_u32(code) {
                            Some(ch) => {
                                let mut buf = [0u8; 4];
                                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                            }
                            None => return self.err("bad \\u escape"),
                        }
                    }
                    Some(c) => return self.err(format!("unsupported escape '\\{}'", c as char)),
                    None => return self.err("unterminated string"),
                },
                Some(c) => out.push(c),
            }
        }
        String::from_utf8(out).map_err(|_| self.at_line(SpecError::new("invalid UTF-8 in string")))
    }

    fn parse_literal_string(&mut self) -> Result<String> {
        self.expect(b'\'')?;
        let start = self.i;
        loop {
            match self.bump() {
                None | Some(b'\n') => return self.err("unterminated string"),
                Some(b'\'') => break,
                Some(_) => {}
            }
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.i - 1]).into_owned())
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 32 {
            return self.err("value nesting too deep");
        }
        match self.peek() {
            None => self.err("expected a value"),
            Some(b'"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some(b'\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(Value::Array(items));
                    }
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.i += 1;
                        }
                        Some(b']') => {}
                        _ => return self.err("expected ',' or ']' in array"),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut kv: Vec<(String, Value)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Table(kv));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_key()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let v = self.parse_value(depth + 1)?;
                    if kv.iter().any(|(k, _)| *k == key) {
                        return self.err(format!("duplicate key '{key}'"));
                    }
                    kv.push((key, v));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => {}
                        Some(b'}') => return Ok(Value::Table(kv)),
                        _ => return self.err("expected ',' or '}' in inline table"),
                    }
                }
            }
            Some(_) => self.parse_scalar(),
        }
    }

    /// Booleans and numbers (the scalar word up to a delimiter).
    fn parse_scalar(&mut self) -> Result<Value> {
        let start = self.i;
        while matches!(self.peek(), Some(c)
            if !matches!(c, b',' | b']' | b'}' | b'#' | b'\n' | b'\r' | b' ' | b'\t'))
        {
            self.i += 1;
        }
        let word = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        match word.as_str() {
            "" => self.err("expected a value"),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            _ => self.parse_number(&word),
        }
    }

    fn parse_number(&self, word: &str) -> Result<Value> {
        // A '-' that is neither the leading sign nor an exponent sign
        // (as in `-1.5e-3`) marks a date, which specs don't support.
        let chars: Vec<char> = word.chars().collect();
        let interior_dash = chars
            .iter()
            .enumerate()
            .any(|(i, &c)| c == '-' && i > 0 && !matches!(chars[i - 1], 'e' | 'E'));
        if word.contains(':') || interior_dash {
            return self.err(format!(
                "'{word}' looks like a date — dates are not supported"
            ));
        }
        let clean: String = word.chars().filter(|&c| c != '_').collect();
        let (sign, digits) = match clean.strip_prefix('-') {
            Some(rest) => (-1i128, rest),
            None => (1, clean.strip_prefix('+').unwrap_or(&clean)),
        };
        let radix = [("0x", 16), ("0o", 8), ("0b", 2)]
            .iter()
            .find_map(|(p, r)| digits.strip_prefix(p).map(|d| (d, *r)));
        if let Some((digits, radix)) = radix {
            return i128::from_str_radix(digits, radix)
                .map(|v| Value::Int(sign * v))
                .map_err(|_| self.at_line(SpecError::new(format!("bad integer '{word}'"))));
        }
        if let Ok(v) = clean.parse::<i128>() {
            return Ok(Value::Int(v));
        }
        clean
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.at_line(SpecError::new(format!("bad number '{word}'"))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_subset() {
        let doc = parse(
            r##"
# top comment
name = "demo"          # trailing comment
count = 1_000
neg = -3
hex = 0x10
ratio = 2.5
sci = 1e3
on = true
path = 'C:\raw'
multi = [1, 2,
         3]            # multi-line array
inline = { a = 1, b = "x" }

[topology]
kind = "fat_tree"
k = 4

[schemes.alpha]
Occamy = 8.0

[[emit]]
title = "first"

[[emit]]
title = "second"
"##,
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str().unwrap(), "demo");
        assert_eq!(doc.get("count").unwrap().as_int().unwrap(), 1000);
        assert_eq!(doc.get("neg").unwrap().as_int().unwrap(), -3);
        assert_eq!(doc.get("hex").unwrap().as_int().unwrap(), 16);
        assert_eq!(doc.get("ratio").unwrap().as_f64().unwrap(), 2.5);
        assert_eq!(doc.get("sci").unwrap().as_f64().unwrap(), 1000.0);
        assert!(doc.get("on").unwrap().as_bool().unwrap());
        assert_eq!(doc.get("path").unwrap().as_str().unwrap(), "C:\\raw");
        assert_eq!(doc.get("multi").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            doc.get("inline")
                .unwrap()
                .get("b")
                .unwrap()
                .as_str()
                .unwrap(),
            "x"
        );
        assert_eq!(
            doc.get("topology")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str()
                .unwrap(),
            "fat_tree"
        );
        assert_eq!(
            doc.get("schemes")
                .unwrap()
                .get("alpha")
                .unwrap()
                .get("Occamy")
                .unwrap()
                .as_f64()
                .unwrap(),
            8.0
        );
        let emits = doc.get("emit").unwrap().as_array().unwrap();
        assert_eq!(emits.len(), 2);
        assert_eq!(emits[1].get("title").unwrap().as_str().unwrap(), "second");
    }

    #[test]
    fn negative_exponent_floats_are_not_dates() {
        let doc = parse("a = -1.5e-3\nb = 2E-2\nc = -4e-1\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64().unwrap(), -1.5e-3);
        assert_eq!(doc.get("b").unwrap().as_f64().unwrap(), 2e-2);
        assert_eq!(doc.get("c").unwrap().as_f64().unwrap(), -0.4);
        // Real dates still get the dedicated error.
        let e = parse("d = 2024-01-01\n").unwrap_err();
        assert!(e.message().contains("dates are not supported"), "{e}");
    }

    #[test]
    fn key_order_is_preserved() {
        let doc = parse("[grid]\nzeta = [1]\nalpha = [2]\nmid = [3]\n").unwrap();
        let keys: Vec<&str> = doc
            .get("grid")
            .unwrap()
            .entries()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["zeta", "alpha", "mid"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = \n").unwrap_err();
        assert!(e.message().starts_with("line 2:"), "{e}");
        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert!(e.message().contains("duplicate key 'a'"), "{e}");
        let e = parse("d = 2024-01-01\n").unwrap_err();
        assert!(e.message().contains("dates are not supported"), "{e}");
        let e = parse("s = \"\"\"x\"\"\"\n").unwrap_err();
        assert!(e.message().contains("multi-line"), "{e}");
    }

    #[test]
    fn junk_after_value_rejected() {
        assert!(parse("a = 1 2\n").is_err());
        assert!(parse("[t] extra\n").is_err());
    }
}
