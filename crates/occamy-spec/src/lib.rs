//! Declarative scenario descriptions for the Occamy experiment harness.
//!
//! This crate is the *front half* of the spec pipeline: it reads a
//! TOML (or JSON) scenario description into a validated [`SpecDoc`] —
//! `[topology]` (leaf-spine / fat-tree / 3-tier with an
//! oversubscription knob), `[traffic]` (web-search, incast queries,
//! all-to-all, all-reduce, permutation), `[schemes]`, `[grid]` sweep
//! axes and `[[emit]]` tables — and can re-emit it as canonical TOML.
//! The *back half* lives in `occamy-bench::spec_scenario`, which
//! compiles a `SpecDoc` into the existing `Grid`/`CellSpec` machinery
//! so spec-driven sweeps run on the same parallel runner, with the
//! same deterministic per-cell seeds and `BENCH_<name>.json` +
//! `results/*.csv` outputs, as the hand-coded paper figures.
//!
//! The crate is dependency-free by design (the build environment is
//! offline): it ships its own minimal [`toml`] and [`json`] readers
//! over a shared order-preserving [`Value`] tree.
//!
//! Validation is strict and typo-friendly: every identifier is checked
//! against the known sets and a misspelling fails with a named
//! suggestion — `unknown scheme 'Ocamy'; did you mean 'Occamy'?` —
//! never a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
pub mod error;
pub mod json;
pub mod model;
pub mod suggest;
pub mod toml;
mod value;

pub use error::{Result, SpecError};
pub use model::{
    default_alpha, AxisSpec, Background, FaultClause, Num, QuerySize, SchemesSpec, SimSpec,
    SpecDoc, SwitchArch, TableKind, TableSpec, TelemetrySpec, TopologyKind, TopologySection,
    TrafficSpec, XpSchedSpec, BACKGROUNDS, FAULT_KINDS, KNOBS, METRICS, SCHEMES, SWITCH_ARCHS,
    TOPOLOGIES, XP_SCHEDS,
};
pub use value::Value;

/// Parses a TOML spec into a validated [`SpecDoc`].
pub fn spec_from_toml(text: &str) -> Result<SpecDoc> {
    SpecDoc::from_value(&toml::parse(text)?)
}

/// Parses a JSON spec into a validated [`SpecDoc`].
pub fn spec_from_json(text: &str) -> Result<SpecDoc> {
    SpecDoc::from_value(&json::parse(text)?)
}

/// Parses a spec, choosing the reader from the file name's extension
/// (`.toml` or `.json`).
pub fn spec_from_file_text(path: &str, text: &str) -> Result<SpecDoc> {
    if path.ends_with(".json") {
        spec_from_json(text)
    } else if path.ends_with(".toml") {
        spec_from_toml(text)
    } else {
        Err(SpecError::new(format!(
            "can't tell the format of '{path}': expected a .toml or .json extension"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_and_json_agree() {
        let t = spec_from_toml(
            "name = \"x\"\n[topology]\nkind = \"fat_tree\"\nk = 4\n[grid]\nbg_load = [0.5, 0.9]\n",
        )
        .unwrap();
        let j = spec_from_json(
            r#"{"name": "x", "topology": {"kind": "fat_tree", "k": 4},
                "grid": {"bg_load": [0.5, 0.9]}}"#,
        )
        .unwrap();
        assert_eq!(t, j);
    }

    #[test]
    fn extension_dispatch() {
        assert!(
            spec_from_file_text("a.toml", "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n")
                .is_ok()
        );
        assert!(spec_from_file_text(
            "a.json",
            r#"{"name": "x", "topology": {"kind": "fat_tree"}}"#
        )
        .is_ok());
        let e = spec_from_file_text("a.yaml", "").unwrap_err();
        assert!(e.message().contains(".toml or .json"), "{e}");
    }
}
