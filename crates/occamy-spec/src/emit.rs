//! Canonical TOML re-emission: `parse → compile → re-emit → parse`
//! round-trips to an identical [`SpecDoc`], which is what the spec
//! round-trip tests pin down.

use crate::model::{
    FaultClause, Num, QuerySize, SpecDoc, SwitchArch, TableKind, TopologyKind, XpSchedSpec,
};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn num(n: Num) -> String {
    match n {
        Num::Int(v) => v.to_string(),
        // `{:?}` prints the shortest representation that parses back to
        // the same f64 and always keeps a '.' or exponent.
        Num::Float(v) => format!("{v:?}"),
    }
}

fn nums(ns: &[Num]) -> String {
    let items: Vec<String> = ns.iter().map(|&n| num(n)).collect();
    format!("[{}]", items.join(", "))
}

impl SpecDoc {
    /// Renders the spec as canonical TOML. Every effective value is
    /// written explicitly (defaults included), so the output is a
    /// complete record of what a run meant — and re-parsing it yields a
    /// `SpecDoc` equal to `self`.
    pub fn to_toml(&self) -> String {
        let mut o = String::new();
        let w = &mut o;
        let _ = writeln!(w, "name = {}", esc(&self.name));
        if !self.description.is_empty() {
            let _ = writeln!(w, "description = {}", esc(&self.description));
        }
        if self.seed_key != self.name {
            let _ = writeln!(w, "seed_key = {}", esc(&self.seed_key));
        }

        let t = &self.topology;
        let _ = writeln!(w, "\n[topology]");
        let _ = writeln!(w, "kind = {}", esc(t.kind.name()));
        match &t.kind {
            TopologyKind::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => {
                let _ = writeln!(w, "spines = {spines}");
                let _ = writeln!(w, "leaves = {leaves}");
                let _ = writeln!(w, "hosts_per_leaf = {hosts_per_leaf}");
            }
            TopologyKind::FatTree { k } => {
                let _ = writeln!(w, "k = {k}");
            }
            TopologyKind::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
            } => {
                let _ = writeln!(w, "pods = {pods}");
                let _ = writeln!(w, "access_per_pod = {access_per_pod}");
                let _ = writeln!(w, "aggs_per_pod = {aggs_per_pod}");
                let _ = writeln!(w, "cores = {cores}");
                let _ = writeln!(w, "hosts_per_access = {hosts_per_access}");
            }
        }
        let _ = writeln!(w, "host_rate_gbps = {:?}", t.host_rate_gbps);
        let _ = writeln!(w, "fabric_rate_gbps = {:?}", t.fabric_rate_gbps);
        let _ = writeln!(w, "link_prop_us = {:?}", t.link_prop_us);
        let _ = writeln!(w, "buffer_per_8ports_kb = {}", t.buffer_per_8ports_kb);
        let _ = writeln!(w, "oversubscription = {:?}", t.oversubscription);
        // Architecture keys appear only when non-default, so canonical
        // output for pre-existing shared-memory specs is unchanged.
        if t.switch_arch != SwitchArch::SharedMemory {
            let _ = writeln!(w, "switch_arch = {}", esc(t.switch_arch.name()));
        }
        if t.xp_sched != XpSchedSpec::RoundRobin {
            let _ = writeln!(w, "xp_sched = {}", esc(t.xp_sched.name()));
        }

        let tr = &self.traffic;
        let _ = writeln!(w, "\n[traffic]");
        let _ = writeln!(w, "background = {}", esc(tr.background.name()));
        // Every knob is written even when the background kind ignores it
        // (the model keeps explicit values regardless), so re-parsing
        // the canonical form is the identity.
        let _ = writeln!(w, "bg_load = {:?}", tr.bg_load);
        let _ = writeln!(w, "bg_flow_kb = {}", tr.bg_flow_kb);
        let _ = writeln!(w, "perm_shift = {}", tr.perm_shift);
        match tr.query {
            QuerySize::Bytes(b) => {
                let _ = writeln!(w, "query_bytes = {b}");
            }
            QuerySize::PctBuffer(p) => {
                let _ = writeln!(w, "query_pct_buffer = {p}");
            }
        }
        let _ = writeln!(w, "query_fanout = {}", tr.query_fanout);
        let _ = writeln!(w, "qps_per_host = {:?}", tr.qps_per_host);
        let _ = writeln!(w, "duration_ms = {}", tr.duration_ms);
        let _ = writeln!(w, "drain_ms = {}", tr.drain_ms);

        let _ = writeln!(w, "\n[schemes]");
        let uses: Vec<String> = self.schemes.schemes.iter().map(|s| esc(s)).collect();
        let _ = writeln!(w, "use = [{}]", uses.join(", "));
        if !self.schemes.alpha.is_empty() {
            let _ = writeln!(w, "\n[schemes.alpha]");
            for (s, a) in &self.schemes.alpha {
                let _ = writeln!(w, "{s} = {a:?}");
            }
        }

        let s = &self.sim;
        let _ = writeln!(w, "\n[sim]");
        let _ = writeln!(w, "ecn_k_bytes = {}", s.ecn_k_bytes);
        let _ = writeln!(w, "min_rto_ms = {}", s.min_rto_ms);
        let _ = writeln!(w, "mss = {}", s.mss);
        let _ = writeln!(w, "expel_rate_factor = {:?}", s.expel_rate_factor);
        if s.threads != 1 {
            let _ = writeln!(w, "threads = {}", s.threads);
        }

        if self.telemetry.every_events != 0 {
            let _ = writeln!(w, "\n[telemetry]");
            let _ = writeln!(w, "every_events = {}", self.telemetry.every_events);
        }

        for f in &self.faults {
            let _ = writeln!(w, "\n[[faults]]");
            match f {
                FaultClause::LinkFlap {
                    switch,
                    port,
                    down,
                    up,
                } => {
                    let _ = writeln!(w, "kind = \"link_flap\"");
                    let _ = writeln!(w, "switch = {switch}");
                    let _ = writeln!(w, "port = {port}");
                    let _ = writeln!(w, "down = {down:?}");
                    let _ = writeln!(w, "up = {up:?}");
                }
                FaultClause::Drain { switch, start, end } => {
                    let _ = writeln!(w, "kind = \"drain\"");
                    let _ = writeln!(w, "switch = {switch}");
                    let _ = writeln!(w, "start = {start:?}");
                    let _ = writeln!(w, "end = {end:?}");
                }
                FaultClause::HostChurn { host, leave, join } => {
                    let _ = writeln!(w, "kind = \"host_churn\"");
                    let _ = writeln!(w, "host = {host}");
                    let _ = writeln!(w, "leave = {leave:?}");
                    let _ = writeln!(w, "join = {join:?}");
                }
            }
        }

        if !self.grid.is_empty() {
            let _ = writeln!(w, "\n[grid]");
            for a in &self.grid {
                if a.quick == a.full && a.smoke == a.full {
                    let _ = writeln!(w, "{} = {}", a.knob, nums(&a.full));
                } else {
                    let _ = writeln!(
                        w,
                        "{} = {{ full = {}, quick = {}, smoke = {} }}",
                        a.knob,
                        nums(&a.full),
                        nums(&a.quick),
                        nums(&a.smoke)
                    );
                }
            }
        }

        for t in &self.emit {
            let _ = writeln!(w, "\n[[emit]]");
            if t.kind == TableKind::Ranking {
                let _ = writeln!(w, "kind = \"ranking\"");
                let _ = writeln!(w, "title = {}", esc(&t.title));
            } else {
                let _ = writeln!(w, "title = {}", esc(&t.title));
                let _ = writeln!(w, "rows = {}", esc(&t.rows));
                let _ = writeln!(w, "cols = {}", esc(&t.cols));
                let _ = writeln!(w, "metric = {}", esc(&t.metric));
            }
            if let Some(csv) = &t.csv {
                let _ = writeln!(w, "csv = {}", esc(csv));
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use crate::model::SpecDoc;
    use crate::toml;

    #[test]
    fn reemitted_spec_reparses_identically() {
        let src = r#"
name = "demo"
description = "round trip"

[topology]
kind = "three_tier"
pods = 3
oversubscription = 2.0

[traffic]
background = "permutation"
bg_load = 0.4
bg_flow_kb = 64
query_bytes = 200000

[schemes]
use = ["Occamy", "DT"]

[schemes.alpha]
Occamy = 4.0

[telemetry]
every_events = 25000

[[faults]]
kind = "link_flap"
switch = 0
port = 0
down = 0.2
up = 0.5

[[faults]]
kind = "host_churn"
host = 0
leave = 0.3
join = 0.6

[grid]
oversubscription = { full = [1.0, 2.0, 4.0], smoke = [2.0] }
duration_ms = [5, 15]

[[emit]]
title = "avg qct"
rows = "oversubscription"
metric = "qct_slowdown_avg"
csv = "demo.csv"
"#;
        let doc = SpecDoc::from_value(&toml::parse(src).unwrap()).unwrap();
        let emitted = doc.to_toml();
        let doc2 = SpecDoc::from_value(&toml::parse(&emitted).unwrap())
            .unwrap_or_else(|e| panic!("re-emitted spec failed to parse: {e}\n{emitted}"));
        assert_eq!(doc, doc2, "round trip changed the document:\n{emitted}");
        // Canonical form is a fixed point.
        assert_eq!(doc2.to_toml(), emitted);
    }

    #[test]
    fn crosspoint_arch_survives_round_trip() {
        let src = r#"
name = "xp"
[topology]
kind = "fat_tree"
k = 4
switch_arch = "crosspoint"
xp_sched = "longest"
[schemes]
use = ["BShare", "DAMQ", "Crosspoint"]
"#;
        let doc = SpecDoc::from_value(&toml::parse(src).unwrap()).unwrap();
        let emitted = doc.to_toml();
        assert!(emitted.contains("switch_arch = \"crosspoint\""));
        assert!(emitted.contains("xp_sched = \"longest\""));
        let doc2 = SpecDoc::from_value(&toml::parse(&emitted).unwrap()).unwrap();
        assert_eq!(doc, doc2);
        assert_eq!(doc2.to_toml(), emitted);
    }

    #[test]
    fn default_arch_keys_are_not_emitted() {
        // Explicitly writing the defaults canonicalizes to silence, so
        // pre-existing shared-memory specs re-emit byte-identically.
        let src = "name = \"x\"\n[topology]\nkind = \"fat_tree\"\nswitch_arch = \"shared_memory\"\nxp_sched = \"round_robin\"\n";
        let doc = SpecDoc::from_value(&toml::parse(src).unwrap()).unwrap();
        let emitted = doc.to_toml();
        assert!(!emitted.contains("switch_arch"));
        assert!(!emitted.contains("xp_sched"));
    }

    #[test]
    fn escaping_survives_round_trip() {
        let src = "name = \"x\"\ndescription = \"quote \\\" and \\\\ back\"\n[topology]\nkind = \"fat_tree\"\n";
        let doc = SpecDoc::from_value(&toml::parse(src).unwrap()).unwrap();
        let doc2 = SpecDoc::from_value(&toml::parse(&doc.to_toml()).unwrap()).unwrap();
        assert_eq!(doc, doc2);
    }
}
