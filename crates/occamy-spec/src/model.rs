//! The typed scenario-spec model and its validation.
//!
//! A spec document describes one experiment declaratively:
//!
//! ```toml
//! name = "fat_tree_incast"
//! description = "incast on a k=4 fat-tree across oversubscription"
//!
//! [topology]
//! kind = "fat_tree"
//! k = 4
//!
//! [traffic]
//! background = "web_search"
//! bg_load = 0.1
//! query_pct_buffer = 80
//!
//! [schemes]
//! use = ["Occamy", "ABM", "DT", "Pushout"]
//!
//! [grid]
//! oversubscription = [1.0, 2.0, 4.0]
//!
//! [[emit]]
//! title = "avg QCT slowdown vs oversubscription"
//! rows = "oversubscription"
//! metric = "qct_slowdown_avg"
//! ```
//!
//! Every identifier — topology kind, traffic kind, scheme, grid knob,
//! emit metric — is validated against the known sets, and a typo fails
//! with a named suggestion (`unknown topology kind 'fat_treee'; did you
//! mean 'fat_tree'?`), never a panic.

use crate::error::{Result, SpecError};
use crate::value::Value;

/// The buffer-management schemes a spec may select, with the `α` the
/// paper evaluates each at (see `[schemes.alpha]` to override).
pub const SCHEMES: &[&str] = &[
    "Occamy",
    "OccamyLongest",
    "ABM",
    "DT",
    "Pushout",
    "Static",
    "CompleteSharing",
    "BShare",
    "DAMQ",
    "Crosspoint",
];

/// The paper's evaluated `α` for `scheme` (§6.2): Occamy 8, ABM 2,
/// everything else 1. BShare gets 8 so its DT safety cap stays out of
/// the way of its delay-based threshold; DAMQ and the crosspoint
/// architecture ignore `α` entirely.
pub fn default_alpha(scheme: &str) -> f64 {
    match scheme {
        "Occamy" | "OccamyLongest" | "BShare" => 8.0,
        "ABM" => 2.0,
        _ => 1.0,
    }
}

/// Switch buffer architectures (`[topology] switch_arch = …`).
pub const SWITCH_ARCHS: &[&str] = &["shared_memory", "crosspoint"];

/// Crosspoint schedulers (`[topology] xp_sched = …`), used when
/// `switch_arch = "crosspoint"` (or the pseudo-scheme `"Crosspoint"`
/// appears in `[schemes].use`).
pub const XP_SCHEDS: &[&str] = &["round_robin", "longest"];

/// Switch buffer architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwitchArch {
    /// Output-queued shared-memory switch (the paper's model).
    #[default]
    SharedMemory,
    /// Crosspoint-queued switch: dedicated per-(input, output) FIFOs.
    Crosspoint,
}

impl SwitchArch {
    /// The spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            SwitchArch::SharedMemory => "shared_memory",
            SwitchArch::Crosspoint => "crosspoint",
        }
    }
}

/// Which crosspoint an output port serves next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XpSchedSpec {
    /// Rotate fairly over non-empty inputs.
    #[default]
    RoundRobin,
    /// Serve the fullest crosspoint first (lowest input wins ties).
    Longest,
}

impl XpSchedSpec {
    /// The spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            XpSchedSpec::RoundRobin => "round_robin",
            XpSchedSpec::Longest => "longest",
        }
    }
}

/// Topology kinds the compiler can build.
pub const TOPOLOGIES: &[&str] = &["leaf_spine", "fat_tree", "three_tier"];

/// Background-traffic kinds (`[traffic] background = …`).
pub const BACKGROUNDS: &[&str] = &[
    "none",
    "web_search",
    "all_to_all",
    "allreduce",
    "permutation",
];

/// Knobs a `[grid]` axis may sweep.
pub const KNOBS: &[&str] = &[
    "bg_load",
    "bg_flow_kb",
    "perm_shift",
    "query_pct_buffer",
    "query_bytes",
    "query_fanout",
    "qps_per_host",
    "oversubscription",
    "duration_ms",
    "alpha",
    "bshare_delay_us",
    "damq_reserve_frac",
];

/// Headline metrics an `[[emit]]` table may select — the scalar names
/// `RunResult::into_cell` produces in `occamy-bench`.
pub const METRICS: &[&str] = &[
    "queries",
    "qct_avg_ms",
    "qct_p99_ms",
    "qct_slowdown_avg",
    "qct_slowdown_p99",
    "bg_fct_avg_ms",
    "bg_slowdown_avg",
    "bg_slowdown_p99",
    "small_bg_fct_p99_ms",
    "small_bg_slowdown_p99",
    "losses",
    "unfinished",
    "events",
    "retransmissions",
    "rto_fires",
    "faults_fired",
    "fault_drops",
    "flows_killed",
    "flows_recovered",
    "recovery_ms_avg",
    "recovery_ms_p99",
];

/// Fault kinds a `[[faults]]` clause may declare.
pub const FAULT_KINDS: &[&str] = &["link_flap", "drain", "host_churn"];

/// One numeric axis value (integers and floats are kept distinct so
/// grids render `20`, not `20.0`, exactly like the hand-coded figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    /// An unsigned integer value.
    Int(u64),
    /// A float value.
    Float(f64),
}

impl Num {
    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Int(v) => v as f64,
            Num::Float(v) => v,
        }
    }
}

/// The fabric shape of `[topology] kind`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyKind {
    /// Two-tier leaf-spine.
    LeafSpine {
        /// Spine switch count.
        spines: usize,
        /// Leaf switch count.
        leaves: usize,
        /// Hosts per leaf.
        hosts_per_leaf: usize,
    },
    /// k-ary three-layer fat-tree.
    FatTree {
        /// Pod arity (even, ≥ 2).
        k: usize,
    },
    /// Classic access/aggregation/core fabric.
    ThreeTier {
        /// Pod count.
        pods: usize,
        /// Access switches per pod.
        access_per_pod: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// Core switch count.
        cores: usize,
        /// Hosts per access switch.
        hosts_per_access: usize,
    },
}

impl TopologyKind {
    /// The spec spelling of the kind.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::LeafSpine { .. } => "leaf_spine",
            TopologyKind::FatTree { .. } => "fat_tree",
            TopologyKind::ThreeTier { .. } => "three_tier",
        }
    }

    /// Total host count of the built fabric (the `occamy-sim` builders'
    /// numbering).
    pub fn n_hosts(&self) -> usize {
        match *self {
            TopologyKind::LeafSpine {
                leaves,
                hosts_per_leaf,
                ..
            } => leaves * hosts_per_leaf,
            TopologyKind::FatTree { k } => k * k * k / 4,
            TopologyKind::ThreeTier {
                pods,
                access_per_pod,
                hosts_per_access,
                ..
            } => pods * access_per_pod * hosts_per_access,
        }
    }

    /// Total switch count of the built fabric.
    pub fn n_switches(&self) -> usize {
        match *self {
            TopologyKind::LeafSpine { spines, leaves, .. } => leaves + spines,
            TopologyKind::FatTree { k } => k * k + (k / 2) * (k / 2),
            TopologyKind::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                ..
            } => pods * (access_per_pod + aggs_per_pod) + cores,
        }
    }

    /// Egress-port count of switch `s`, following the builders' switch
    /// numbering (leaf/edge/access switches first, then spines /
    /// aggregations, then cores). Used to validate `[[faults]]` port
    /// indices at load time, so a loadable spec never panics mid-run.
    ///
    /// # Panics
    ///
    /// Panics if `s` is outside the fabric (callers check
    /// [`TopologyKind::n_switches`] first).
    pub fn n_ports(&self, s: usize) -> usize {
        assert!(s < self.n_switches(), "switch {s} outside the fabric");
        match *self {
            TopologyKind::LeafSpine {
                spines,
                leaves,
                hosts_per_leaf,
            } => {
                if s < leaves {
                    hosts_per_leaf + spines
                } else {
                    leaves
                }
            }
            // Edge, aggregation and core switches of a k-ary fat-tree
            // all have k ports.
            TopologyKind::FatTree { k } => k,
            TopologyKind::ThreeTier {
                pods,
                access_per_pod,
                aggs_per_pod,
                cores,
                hosts_per_access,
            } => {
                if s < pods * access_per_pod {
                    hosts_per_access + aggs_per_pod
                } else if s < pods * (access_per_pod + aggs_per_pod) {
                    access_per_pod + cores
                } else {
                    pods * aggs_per_pod
                }
            }
        }
    }
}

/// The `[topology]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySection {
    /// Fabric shape and dimensions.
    pub kind: TopologyKind,
    /// Host access-link rate in Gbps.
    pub host_rate_gbps: f64,
    /// Switch-to-switch link rate in Gbps (before oversubscription).
    pub fabric_rate_gbps: f64,
    /// One-way per-link propagation in µs.
    pub link_prop_us: f64,
    /// Shared buffer per 8 ports, in KB.
    pub buffer_per_8ports_kb: u64,
    /// Access-layer oversubscription ratio (≥ 1; sweepable).
    pub oversubscription: f64,
    /// Switch buffer architecture (default shared-memory).
    pub switch_arch: SwitchArch,
    /// Crosspoint scheduler, for the crosspoint architecture.
    pub xp_sched: XpSchedSpec,
}

/// Background-traffic kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Background {
    /// No background traffic.
    None,
    /// Poisson web-search flows (DCTCP distribution).
    WebSearch,
    /// Paced all-to-all rounds.
    AllToAll,
    /// Paced double-binary-tree all-reduce rounds.
    Allreduce,
    /// Paced permutation rounds.
    Permutation,
}

impl Background {
    /// The spec spelling.
    pub fn name(self) -> &'static str {
        match self {
            Background::None => "none",
            Background::WebSearch => "web_search",
            Background::AllToAll => "all_to_all",
            Background::Allreduce => "allreduce",
            Background::Permutation => "permutation",
        }
    }
}

/// How the incast query size is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySize {
    /// Absolute bytes per query.
    Bytes(u64),
    /// Percent of the 8-port buffer allotment (`buffer_per_8ports_kb`),
    /// the axis the hand-coded figures use. Note this is the *allotment*,
    /// not a materialized partition: a switch with fewer than 8 ports
    /// holds a proportionally smaller partition than this reference.
    PctBuffer(u64),
}

/// The `[traffic]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Background pattern.
    pub background: Background,
    /// Background offered load fraction.
    pub bg_load: f64,
    /// Per-flow size of the deterministic patterns, in KB.
    pub bg_flow_kb: u64,
    /// Destination shift of the permutation pattern.
    pub perm_shift: u64,
    /// Incast query size.
    pub query: QuerySize,
    /// Incast fan-out per query.
    pub query_fanout: u64,
    /// Queries per second per client host (0 disables queries).
    pub qps_per_host: f64,
    /// Workload injection window, ms.
    pub duration_ms: u64,
    /// Drain window, ms.
    pub drain_ms: u64,
}

/// The `[schemes]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemesSpec {
    /// Schemes to sweep (the implicit last grid axis).
    pub schemes: Vec<String>,
    /// Per-scheme `α` overrides (defaults: [`default_alpha`]).
    pub alpha: Vec<(String, f64)>,
}

impl SchemesSpec {
    /// The `α` for `scheme`, applying overrides.
    pub fn alpha_for(&self, scheme: &str) -> f64 {
        self.alpha
            .iter()
            .find(|(s, _)| s == scheme)
            .map(|(_, a)| *a)
            .unwrap_or_else(|| default_alpha(scheme))
    }
}

/// The `[sim]` section (engine parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// ECN marking threshold, bytes.
    pub ecn_k_bytes: u64,
    /// Minimum RTO, ms.
    pub min_rto_ms: u64,
    /// Maximum segment size, bytes.
    pub mss: u64,
    /// Scale factor on the expulsion token rate (Occamy §5.3).
    pub expel_rate_factor: f64,
    /// Intra-run worker threads for domain-decomposed parallel
    /// simulation (default 1 = serial). Results are bit-identical for
    /// every value; the CLI's `--threads` can raise but never lower
    /// the effective count.
    pub threads: u64,
}

/// The `[telemetry]` section (live-observability cadence).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySpec {
    /// Snapshot cadence in executed events (0 = use the runner default
    /// when telemetry is enabled). Snapshots are event-count driven, so
    /// they are deterministic and never perturb simulation output.
    pub every_events: u64,
}

/// One `[grid]` axis: a knob swept over per-scale value lists
/// (`quick` / `smoke` default to `full`).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSpec {
    /// The knob (one of [`KNOBS`]).
    pub knob: String,
    /// Values at full scale.
    pub full: Vec<Num>,
    /// Values at quick scale.
    pub quick: Vec<Num>,
    /// Values at smoke scale.
    pub smoke: Vec<Num>,
}

/// The shape of an `[[emit]]` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableKind {
    /// A rows × cols matrix of one metric (the default).
    #[default]
    Matrix,
    /// The scheme-ranking headline table: one row per scheme, the
    /// headline-metric columns — the same table a grid-less spec emits
    /// by default, available explicitly so specs that sweep tuning
    /// knobs keep their ranking table (one per knob combination).
    Ranking,
}

/// One `[[emit]]` table: a rows × cols matrix of one metric, or
/// (`kind = "ranking"`) the per-scheme headline table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    /// Matrix or ranking.
    pub kind: TableKind,
    /// Table title.
    pub title: String,
    /// Row axis (a grid knob or `"scheme"`); empty for ranking tables.
    pub rows: String,
    /// Column axis (default `"scheme"`); empty for ranking tables.
    pub cols: String,
    /// The metric shown (one of [`METRICS`]); empty for ranking tables.
    pub metric: String,
    /// Optional CSV file name under `results/`.
    pub csv: Option<String>,
}

/// One `[[faults]]` clause: a deterministic fault whose times are
/// fractions of the workload window (`duration_ms`), so the same
/// schedule scales with `--quick`/`--smoke` duration clamps. Indices
/// follow the `occamy-sim` builder numbering and are validated against
/// the `[topology]` section at load time.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultClause {
    /// `kind = "link_flap"`: `switch`'s `port` goes down at `down` and
    /// back up at `up`.
    LinkFlap {
        /// Switch index.
        switch: u64,
        /// Port index on that switch.
        port: u64,
        /// Down time as a fraction of the workload window.
        down: f64,
        /// Restore time as a fraction of the workload window.
        up: f64,
    },
    /// `kind = "drain"`: the switch stops admitting in `[start, end)`.
    Drain {
        /// Switch index.
        switch: u64,
        /// Drain start as a fraction of the workload window.
        start: f64,
        /// Drain end as a fraction of the workload window.
        end: f64,
    },
    /// `kind = "host_churn"`: the host leaves at `leave`, rejoins at
    /// `join`.
    HostChurn {
        /// Host index.
        host: u64,
        /// Leave time as a fraction of the workload window.
        leave: f64,
        /// Rejoin time as a fraction of the workload window.
        join: f64,
    },
}

/// A fully validated scenario spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecDoc {
    /// Scenario name (`BENCH_<name>.json`, `results/<name>_perf.csv`).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Grid name the per-cell seeds derive from. Defaults to `name`;
    /// set it to a registry scenario's name to reproduce that
    /// scenario's exact cell seeds (and hence its tables).
    pub seed_key: String,
    /// Fabric shape and link parameters.
    pub topology: TopologySection,
    /// Workload.
    pub traffic: TrafficSpec,
    /// Scheme sweep.
    pub schemes: SchemesSpec,
    /// Engine parameters.
    pub sim: SimSpec,
    /// Live-telemetry cadence.
    pub telemetry: TelemetrySpec,
    /// Deterministic fault schedule (empty = pristine fabric).
    pub faults: Vec<FaultClause>,
    /// Extra sweep axes (the scheme axis is implicit and last).
    pub grid: Vec<AxisSpec>,
    /// Report tables (when empty the binder emits a default table per
    /// headline metric).
    pub emit: Vec<TableSpec>,
}

// -------------------------------------------------------------------
// Section readers
// -------------------------------------------------------------------

fn check_keys(ctx: &str, table: &Value, known: &[&str]) -> Result<()> {
    for (k, _) in table.entries()? {
        if !known.contains(&k.as_str()) {
            return Err(SpecError::unknown("key", k, known).in_context(ctx));
        }
    }
    Ok(())
}

fn get_f64(ctx: &str, t: &Value, key: &str, default: f64) -> Result<f64> {
    match t.get(key) {
        Some(v) => v.as_f64().map_err(|e| e.in_context(ctx)),
        None => Ok(default),
    }
}

fn get_u64(ctx: &str, t: &Value, key: &str, default: u64) -> Result<u64> {
    match t.get(key) {
        Some(v) => v.as_u64().map_err(|e| e.in_context(ctx)),
        None => Ok(default),
    }
}

fn get_usize(ctx: &str, t: &Value, key: &str, default: usize) -> Result<usize> {
    Ok(get_u64(ctx, t, key, default as u64)? as usize)
}

fn at_least(ctx: &str, key: &str, min: usize, v: usize) -> Result<usize> {
    if v >= min {
        Ok(v)
    } else {
        Err(SpecError::new(format!("'{key}' must be ≥ {min} (got {v})")).in_context(ctx))
    }
}

fn positive(ctx: &str, key: &str, v: f64) -> Result<f64> {
    if v > 0.0 && v.is_finite() {
        Ok(v)
    } else {
        Err(SpecError::new(format!("'{key}' must be positive (got {v})")).in_context(ctx))
    }
}

fn parse_topology(doc: &Value) -> Result<TopologySection> {
    let ctx = "[topology]";
    let t = doc
        .get("topology")
        .ok_or_else(|| SpecError::new("missing required [topology] section"))?;
    let kind_name = t
        .get("kind")
        .ok_or_else(|| SpecError::new("missing 'kind'").in_context(ctx))?
        .as_str()
        .map_err(|e| e.in_context(ctx))?;
    const COMMON: &[&str] = &[
        "kind",
        "host_rate_gbps",
        "fabric_rate_gbps",
        "link_prop_us",
        "buffer_per_8ports_kb",
        "oversubscription",
        "switch_arch",
        "xp_sched",
    ];
    let kind = match kind_name {
        "leaf_spine" => {
            check_keys(
                ctx,
                t,
                &[COMMON, &["spines", "leaves", "hosts_per_leaf"]].concat(),
            )?;
            // Minimums mirror the builder asserts in
            // `occamy_sim::topology` so a loadable spec never panics
            // mid-run.
            TopologyKind::LeafSpine {
                spines: at_least(ctx, "spines", 1, get_usize(ctx, t, "spines", 4)?)?,
                leaves: at_least(ctx, "leaves", 2, get_usize(ctx, t, "leaves", 4)?)?,
                hosts_per_leaf: at_least(
                    ctx,
                    "hosts_per_leaf",
                    1,
                    get_usize(ctx, t, "hosts_per_leaf", 8)?,
                )?,
            }
        }
        "fat_tree" => {
            check_keys(ctx, t, &[COMMON, &["k"]].concat())?;
            let k = get_usize(ctx, t, "k", 4)?;
            if k < 2 || k % 2 != 0 {
                return Err(SpecError::new(format!(
                    "fat-tree arity 'k' must be even, ≥ 2 (got {k})"
                ))
                .in_context(ctx));
            }
            TopologyKind::FatTree { k }
        }
        "three_tier" => {
            check_keys(
                ctx,
                t,
                &[
                    COMMON,
                    &[
                        "pods",
                        "access_per_pod",
                        "aggs_per_pod",
                        "cores",
                        "hosts_per_access",
                    ],
                ]
                .concat(),
            )?;
            TopologyKind::ThreeTier {
                pods: at_least(ctx, "pods", 2, get_usize(ctx, t, "pods", 2)?)?,
                access_per_pod: at_least(
                    ctx,
                    "access_per_pod",
                    1,
                    get_usize(ctx, t, "access_per_pod", 2)?,
                )?,
                aggs_per_pod: at_least(
                    ctx,
                    "aggs_per_pod",
                    1,
                    get_usize(ctx, t, "aggs_per_pod", 2)?,
                )?,
                cores: at_least(ctx, "cores", 1, get_usize(ctx, t, "cores", 2)?)?,
                hosts_per_access: at_least(
                    ctx,
                    "hosts_per_access",
                    1,
                    get_usize(ctx, t, "hosts_per_access", 4)?,
                )?,
            }
        }
        other => return Err(SpecError::unknown("topology kind", other, TOPOLOGIES)),
    };
    let host_rate_gbps = positive(
        ctx,
        "host_rate_gbps",
        get_f64(ctx, t, "host_rate_gbps", 25.0)?,
    )?;
    let fabric_rate_gbps = positive(
        ctx,
        "fabric_rate_gbps",
        get_f64(ctx, t, "fabric_rate_gbps", host_rate_gbps)?,
    )?;
    let oversubscription = get_f64(ctx, t, "oversubscription", 1.0)?;
    // `!(x >= 1.0)` rather than `x < 1.0` so NaN is rejected too.
    if !(oversubscription >= 1.0 && oversubscription.is_finite()) {
        return Err(SpecError::new(format!(
            "'oversubscription' must be a finite ratio ≥ 1 (got {oversubscription})"
        ))
        .in_context(ctx));
    }
    let switch_arch = match t.get("switch_arch") {
        None => SwitchArch::SharedMemory,
        Some(v) => match v.as_str().map_err(|e| e.in_context(ctx))? {
            "shared_memory" => SwitchArch::SharedMemory,
            "crosspoint" => SwitchArch::Crosspoint,
            other => {
                return Err(SpecError::unknown(
                    "switch architecture",
                    other,
                    SWITCH_ARCHS,
                ))
            }
        },
    };
    let xp_sched = match t.get("xp_sched") {
        None => XpSchedSpec::RoundRobin,
        Some(v) => match v.as_str().map_err(|e| e.in_context(ctx))? {
            "round_robin" => XpSchedSpec::RoundRobin,
            "longest" => XpSchedSpec::Longest,
            other => return Err(SpecError::unknown("crosspoint scheduler", other, XP_SCHEDS)),
        },
    };
    Ok(TopologySection {
        kind,
        host_rate_gbps,
        fabric_rate_gbps,
        link_prop_us: positive(ctx, "link_prop_us", get_f64(ctx, t, "link_prop_us", 10.0)?)?,
        buffer_per_8ports_kb: get_u64(ctx, t, "buffer_per_8ports_kb", 1_000)?.max(1),
        oversubscription,
        switch_arch,
        xp_sched,
    })
}

fn parse_traffic(doc: &Value) -> Result<TrafficSpec> {
    let ctx = "[traffic]";
    let empty = Value::Table(Vec::new());
    let t = doc.get("traffic").unwrap_or(&empty);
    check_keys(
        ctx,
        t,
        &[
            "background",
            "bg_load",
            "bg_flow_kb",
            "perm_shift",
            "query_bytes",
            "query_pct_buffer",
            "query_fanout",
            "qps_per_host",
            "duration_ms",
            "drain_ms",
        ],
    )?;
    let background = match t.get("background") {
        None => Background::WebSearch,
        Some(v) => match v.as_str().map_err(|e| e.in_context(ctx))? {
            "none" => Background::None,
            "web_search" => Background::WebSearch,
            "all_to_all" => Background::AllToAll,
            "allreduce" => Background::Allreduce,
            "permutation" => Background::Permutation,
            other => return Err(SpecError::unknown("traffic kind", other, BACKGROUNDS)),
        },
    };
    let query = match (t.get("query_bytes"), t.get("query_pct_buffer")) {
        (Some(_), Some(_)) => {
            return Err(
                SpecError::new("give either 'query_bytes' or 'query_pct_buffer', not both")
                    .in_context(ctx),
            )
        }
        (Some(v), None) => QuerySize::Bytes(v.as_u64().map_err(|e| e.in_context(ctx))?),
        (None, Some(v)) => QuerySize::PctBuffer(v.as_u64().map_err(|e| e.in_context(ctx))?),
        (None, None) => QuerySize::PctBuffer(40),
    };
    let bg_load = get_f64(ctx, t, "bg_load", 0.9)?;
    if background != Background::None {
        positive(ctx, "bg_load", bg_load)?;
    }
    let qps = get_f64(ctx, t, "qps_per_host", 400.0)?;
    if !(qps >= 0.0 && qps.is_finite()) {
        return Err(
            SpecError::new(format!("'qps_per_host' must be ≥ 0 (got {qps})")).in_context(ctx),
        );
    }
    Ok(TrafficSpec {
        background,
        bg_load,
        bg_flow_kb: get_u64(ctx, t, "bg_flow_kb", 100)?.max(1),
        perm_shift: get_u64(ctx, t, "perm_shift", 1)?,
        query,
        query_fanout: get_u64(ctx, t, "query_fanout", 16)?.max(1),
        qps_per_host: qps,
        duration_ms: get_u64(ctx, t, "duration_ms", 15)?.max(1),
        drain_ms: get_u64(ctx, t, "drain_ms", 100)?,
    })
}

fn parse_schemes(doc: &Value) -> Result<SchemesSpec> {
    let ctx = "[schemes]";
    let empty = Value::Table(Vec::new());
    let t = doc.get("schemes").unwrap_or(&empty);
    check_keys(ctx, t, &["use", "alpha"])?;
    let schemes: Vec<String> = match t.get("use") {
        None => vec!["Occamy", "ABM", "DT", "Pushout"]
            .into_iter()
            .map(String::from)
            .collect(),
        Some(v) => {
            let arr = v.as_array().map_err(|e| e.in_context(ctx))?;
            let mut out = Vec::new();
            for item in arr {
                let s = item.as_str().map_err(|e| e.in_context(ctx))?;
                if !SCHEMES.contains(&s) {
                    return Err(SpecError::unknown("scheme", s, SCHEMES));
                }
                if out.iter().any(|o| o == s) {
                    return Err(
                        SpecError::new(format!("scheme '{s}' listed twice")).in_context(ctx)
                    );
                }
                out.push(s.to_string());
            }
            if out.is_empty() {
                return Err(SpecError::new("'use' must list at least one scheme").in_context(ctx));
            }
            out
        }
    };
    let mut alpha = Vec::new();
    if let Some(a) = t.get("alpha") {
        for (k, v) in a.entries().map_err(|e| e.in_context("[schemes.alpha]"))? {
            if !SCHEMES.contains(&k.as_str()) {
                return Err(SpecError::unknown("scheme", k, SCHEMES));
            }
            let val = v.as_f64().map_err(|e| e.in_context("[schemes.alpha]"))?;
            positive("[schemes.alpha]", k, val)?;
            alpha.push((k.clone(), val));
        }
    }
    Ok(SchemesSpec { schemes, alpha })
}

fn parse_sim(doc: &Value) -> Result<SimSpec> {
    let ctx = "[sim]";
    let empty = Value::Table(Vec::new());
    let t = doc.get("sim").unwrap_or(&empty);
    check_keys(
        ctx,
        t,
        &[
            "ecn_k_bytes",
            "min_rto_ms",
            "mss",
            "expel_rate_factor",
            "threads",
        ],
    )?;
    let expel = get_f64(ctx, t, "expel_rate_factor", 1.0)?;
    if !(0.0..=1_000.0).contains(&expel) {
        return Err(
            SpecError::new(format!("'expel_rate_factor' must be ≥ 0 (got {expel})"))
                .in_context(ctx),
        );
    }
    Ok(SimSpec {
        ecn_k_bytes: get_u64(ctx, t, "ecn_k_bytes", 180_000)?.max(1),
        min_rto_ms: get_u64(ctx, t, "min_rto_ms", 5)?.max(1),
        mss: get_u64(ctx, t, "mss", 1_460)?.max(1),
        expel_rate_factor: expel,
        threads: get_u64(ctx, t, "threads", 1)?.max(1),
    })
}

fn parse_telemetry(doc: &Value) -> Result<TelemetrySpec> {
    let ctx = "[telemetry]";
    let empty = Value::Table(Vec::new());
    let t = doc.get("telemetry").unwrap_or(&empty);
    check_keys(ctx, t, &["every_events"])?;
    Ok(TelemetrySpec {
        every_events: get_u64(ctx, t, "every_events", 0)?,
    })
}

fn parse_nums(ctx: &str, v: &Value) -> Result<Vec<Num>> {
    let arr = v.as_array().map_err(|e| e.in_context(ctx))?;
    if arr.is_empty() {
        return Err(SpecError::new("axis has no values").in_context(ctx));
    }
    arr.iter()
        .map(|item| match item {
            Value::Int(_) => item.as_u64().map(Num::Int).map_err(|e| e.in_context(ctx)),
            Value::Float(f) => Ok(Num::Float(*f)),
            other => Err(SpecError::new(format!(
                "axis values must be numbers, found {}",
                other.type_name()
            ))
            .in_context(ctx)),
        })
        .collect()
}

fn parse_grid(doc: &Value) -> Result<Vec<AxisSpec>> {
    let Some(g) = doc.get("grid") else {
        return Ok(Vec::new());
    };
    let mut axes = Vec::new();
    for (knob, v) in g.entries().map_err(|e| e.in_context("[grid]"))? {
        if knob == "scheme" {
            return Err(SpecError::new(
                "'scheme' is the implicit last axis — select schemes with [schemes] use = […]",
            )
            .in_context("[grid]"));
        }
        if !KNOBS.contains(&knob.as_str()) {
            return Err(SpecError::unknown("grid knob", knob, KNOBS).in_context("[grid]"));
        }
        let ctx = format!("[grid] {knob}");
        let (full, quick, smoke) = match v {
            Value::Table(_) => {
                check_keys(&ctx, v, &["full", "quick", "smoke"])?;
                let full = parse_nums(
                    &ctx,
                    v.get("full").ok_or_else(|| {
                        SpecError::new("per-scale axis needs 'full'").in_context(&ctx)
                    })?,
                )?;
                let quick = match v.get("quick") {
                    Some(q) => parse_nums(&ctx, q)?,
                    None => full.clone(),
                };
                let smoke = match v.get("smoke") {
                    Some(s) => parse_nums(&ctx, s)?,
                    None => full.clone(),
                };
                (full, quick, smoke)
            }
            _ => {
                let full = parse_nums(&ctx, v)?;
                (full.clone(), full.clone(), full)
            }
        };
        axes.push(AxisSpec {
            knob: knob.clone(),
            full,
            quick,
            smoke,
        });
    }
    Ok(axes)
}

/// A fraction of the workload window: finite, in `0..=1`.
fn fraction(ctx: &str, key: &str, v: f64) -> Result<f64> {
    if (0.0..=1.0).contains(&v) {
        Ok(v)
    } else {
        Err(SpecError::new(format!(
            "'{key}' must be a fraction of the workload window in 0..=1 (got {v})"
        ))
        .in_context(ctx))
    }
}

/// A required key of a fault clause (faults have no sensible defaults).
fn require<'v>(ctx: &str, t: &'v Value, key: &str) -> Result<&'v Value> {
    t.get(key)
        .ok_or_else(|| SpecError::new(format!("missing '{key}'")).in_context(ctx))
}

fn parse_faults(doc: &Value, topo: &TopologySection) -> Result<Vec<FaultClause>> {
    let Some(f) = doc.get("faults") else {
        return Ok(Vec::new());
    };
    let arr = f
        .as_array()
        .map_err(|_| SpecError::new("faults must be an array of tables ([[faults]])"))?;
    let check_switch = |ctx: &str, s: u64| -> Result<u64> {
        let n = topo.kind.n_switches();
        if (s as usize) < n {
            Ok(s)
        } else {
            Err(SpecError::new(format!(
                "'switch' {s} outside the {} fabric ({n} switches)",
                topo.kind.name()
            ))
            .in_context(ctx))
        }
    };
    let mut out = Vec::new();
    for (i, t) in arr.iter().enumerate() {
        let ctx = &format!("[[faults]] #{}", i + 1);
        let kind = require(ctx, t, "kind")?
            .as_str()
            .map_err(|e| e.in_context(ctx))?;
        let clause = match kind {
            "link_flap" => {
                check_keys(ctx, t, &["kind", "switch", "port", "down", "up"])?;
                let switch = check_switch(ctx, require(ctx, t, "switch")?.as_u64()?)?;
                let port = require(ctx, t, "port")?.as_u64()?;
                let n_ports = topo.kind.n_ports(switch as usize);
                if port as usize >= n_ports {
                    return Err(SpecError::new(format!(
                        "'port' {port} outside switch {switch} ({n_ports} ports)"
                    ))
                    .in_context(ctx));
                }
                let down = fraction(ctx, "down", require(ctx, t, "down")?.as_f64()?)?;
                let up = fraction(ctx, "up", require(ctx, t, "up")?.as_f64()?)?;
                if down >= up {
                    return Err(SpecError::new(format!(
                        "the link must go down before it comes up (down = {down}, up = {up})"
                    ))
                    .in_context(ctx));
                }
                FaultClause::LinkFlap {
                    switch,
                    port,
                    down,
                    up,
                }
            }
            "drain" => {
                check_keys(ctx, t, &["kind", "switch", "start", "end"])?;
                let switch = check_switch(ctx, require(ctx, t, "switch")?.as_u64()?)?;
                let start = fraction(ctx, "start", require(ctx, t, "start")?.as_f64()?)?;
                let end = fraction(ctx, "end", require(ctx, t, "end")?.as_f64()?)?;
                if start >= end {
                    return Err(SpecError::new(format!(
                        "the drain must start before it ends (start = {start}, end = {end})"
                    ))
                    .in_context(ctx));
                }
                FaultClause::Drain { switch, start, end }
            }
            "host_churn" => {
                check_keys(ctx, t, &["kind", "host", "leave", "join"])?;
                let host = require(ctx, t, "host")?.as_u64()?;
                let n = topo.kind.n_hosts();
                if host as usize >= n {
                    return Err(SpecError::new(format!(
                        "'host' {host} outside the {} fabric ({n} hosts)",
                        topo.kind.name()
                    ))
                    .in_context(ctx));
                }
                let leave = fraction(ctx, "leave", require(ctx, t, "leave")?.as_f64()?)?;
                let join = fraction(ctx, "join", require(ctx, t, "join")?.as_f64()?)?;
                if leave >= join {
                    return Err(SpecError::new(format!(
                        "the host must leave before it rejoins (leave = {leave}, join = {join})"
                    ))
                    .in_context(ctx));
                }
                FaultClause::HostChurn { host, leave, join }
            }
            other => return Err(SpecError::unknown("fault kind", other, FAULT_KINDS)),
        };
        out.push(clause);
    }
    Ok(out)
}

fn parse_emit(doc: &Value, grid: &[AxisSpec]) -> Result<Vec<TableSpec>> {
    let Some(e) = doc.get("emit") else {
        return Ok(Vec::new());
    };
    let ctx = "[[emit]]";
    let arr = e
        .as_array()
        .map_err(|_| SpecError::new("emit must be an array of tables ([[emit]])"))?;
    let mut axes: Vec<&str> = grid.iter().map(|a| a.knob.as_str()).collect();
    axes.push("scheme");
    let mut tables = Vec::new();
    for t in arr {
        check_keys(ctx, t, &["kind", "title", "rows", "cols", "metric", "csv"])?;
        let title = t
            .get("title")
            .ok_or_else(|| SpecError::new("missing 'title'").in_context(ctx))?
            .as_str()
            .map_err(|e| e.in_context(ctx))?
            .to_string();
        let kind = match t.get("kind") {
            None => TableKind::Matrix,
            Some(v) => match v.as_str().map_err(|e| e.in_context(ctx))? {
                "matrix" => TableKind::Matrix,
                "ranking" => TableKind::Ranking,
                other => {
                    return Err(
                        SpecError::unknown("emit kind", other, &["matrix", "ranking"])
                            .in_context(ctx),
                    )
                }
            },
        };
        if kind == TableKind::Ranking {
            for k in ["rows", "cols", "metric"] {
                if t.get(k).is_some() {
                    return Err(SpecError::new(format!(
                        "ranking tables fix rows = scheme and the headline-metric \
                         columns; '{k}' is not configurable"
                    ))
                    .in_context(ctx));
                }
            }
            let csv = match t.get("csv") {
                Some(v) => Some(v.as_str().map_err(|e| e.in_context(ctx))?.to_string()),
                None => None,
            };
            tables.push(TableSpec {
                kind,
                title,
                rows: String::new(),
                cols: String::new(),
                metric: String::new(),
                csv,
            });
            continue;
        }
        let rows = match t.get("rows") {
            Some(v) => v.as_str().map_err(|e| e.in_context(ctx))?.to_string(),
            None => axes[0].to_string(),
        };
        let cols = match t.get("cols") {
            Some(v) => v.as_str().map_err(|e| e.in_context(ctx))?.to_string(),
            None => "scheme".to_string(),
        };
        for (what, v) in [("rows", &rows), ("cols", &cols)] {
            if !axes.contains(&v.as_str()) {
                return Err(
                    SpecError::unknown(&format!("emit {what} axis"), v, &axes).in_context(ctx)
                );
            }
        }
        if rows == cols {
            return Err(SpecError::new(format!("rows and cols are both '{rows}'")).in_context(ctx));
        }
        let metric = t
            .get("metric")
            .ok_or_else(|| SpecError::new("missing 'metric'").in_context(ctx))?
            .as_str()
            .map_err(|e| e.in_context(ctx))?;
        if !METRICS.contains(&metric) {
            return Err(SpecError::unknown("metric", metric, METRICS).in_context(ctx));
        }
        let csv = match t.get("csv") {
            Some(v) => Some(v.as_str().map_err(|e| e.in_context(ctx))?.to_string()),
            None => None,
        };
        tables.push(TableSpec {
            kind,
            title,
            rows,
            cols,
            metric: metric.to_string(),
            csv,
        });
    }
    Ok(tables)
}

impl SpecDoc {
    /// Builds and validates a spec from a parsed document tree.
    pub fn from_value(doc: &Value) -> Result<SpecDoc> {
        check_keys(
            "spec",
            doc,
            &[
                "name",
                "description",
                "seed_key",
                "topology",
                "traffic",
                "schemes",
                "sim",
                "telemetry",
                "faults",
                "grid",
                "emit",
            ],
        )?;
        let name = doc
            .get("name")
            .ok_or_else(|| SpecError::new("missing required 'name'"))?
            .as_str()?
            .to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(SpecError::new(format!(
                "'name' must be non-empty [A-Za-z0-9_-] (got '{name}'); it names BENCH_<name>.json"
            )));
        }
        let description = match doc.get("description") {
            Some(v) => v.as_str()?.to_string(),
            None => String::new(),
        };
        let seed_key = match doc.get("seed_key") {
            Some(v) => v.as_str()?.to_string(),
            None => name.clone(),
        };
        let grid = parse_grid(doc)?;
        let traffic = parse_traffic(doc)?;
        let schemes = parse_schemes(doc)?;
        check_grid_applies(&grid, &traffic, &schemes)?;
        let topology = parse_topology(doc)?;
        let faults = parse_faults(doc, &topology)?;
        Ok(SpecDoc {
            name,
            description,
            seed_key,
            topology,
            traffic,
            schemes,
            sim: parse_sim(doc)?,
            telemetry: parse_telemetry(doc)?,
            faults,
            emit: parse_emit(doc, &grid)?,
            grid,
        })
    }
}

/// A grid axis over a knob the chosen background ignores would sweep
/// identical cells and mislabel the table — reject it at load time.
fn check_grid_applies(
    grid: &[AxisSpec],
    traffic: &TrafficSpec,
    schemes: &SchemesSpec,
) -> Result<()> {
    let has = |s: &str| schemes.schemes.iter().any(|x| x == s);
    for axis in grid {
        let (ok, needs) = match axis.knob.as_str() {
            "bshare_delay_us" => (has("BShare"), "scheme BShare in the sweep"),
            "damq_reserve_frac" => (has("DAMQ"), "scheme DAMQ in the sweep"),
            "bg_load" => (
                traffic.background != Background::None,
                "a background pattern",
            ),
            "bg_flow_kb" => (
                matches!(
                    traffic.background,
                    Background::AllToAll | Background::Allreduce | Background::Permutation
                ),
                "background all_to_all, allreduce or permutation",
            ),
            "perm_shift" => (
                traffic.background == Background::Permutation,
                "background permutation",
            ),
            _ => (true, ""),
        };
        if !ok {
            return Err(SpecError::new(format!(
                "axis '{}' has no effect with background '{}' — it needs {needs}",
                axis.knob,
                traffic.background.name()
            ))
            .in_context("[grid]"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    fn minimal() -> &'static str {
        "name = \"demo\"\n[topology]\nkind = \"leaf_spine\"\n"
    }

    #[test]
    fn minimal_spec_fills_paper_defaults() {
        let doc = SpecDoc::from_value(&toml::parse(minimal()).unwrap()).unwrap();
        assert_eq!(doc.name, "demo");
        assert_eq!(doc.seed_key, "demo");
        assert_eq!(
            doc.topology.kind,
            TopologyKind::LeafSpine {
                spines: 4,
                leaves: 4,
                hosts_per_leaf: 8
            }
        );
        assert_eq!(doc.topology.host_rate_gbps, 25.0);
        assert_eq!(doc.traffic.background, Background::WebSearch);
        assert_eq!(doc.traffic.bg_load, 0.9);
        assert_eq!(doc.traffic.query, QuerySize::PctBuffer(40));
        assert_eq!(doc.traffic.duration_ms, 15);
        assert_eq!(doc.schemes.schemes, ["Occamy", "ABM", "DT", "Pushout"]);
        assert_eq!(doc.schemes.alpha_for("Occamy"), 8.0);
        assert_eq!(doc.schemes.alpha_for("ABM"), 2.0);
        assert_eq!(doc.sim.ecn_k_bytes, 180_000);
        assert!(doc.grid.is_empty());
        assert!(doc.emit.is_empty());
    }

    #[test]
    fn typo_in_topology_kind_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse("name = \"x\"\n[topology]\nkind = \"fat_treee\"\n").unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'fat_tree'?"), "{e}");
    }

    #[test]
    fn typo_in_switch_arch_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\nswitch_arch = \"crosspont\"\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'crosspoint'?"), "{e}");
    }

    #[test]
    fn typo_in_xp_sched_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\nxp_sched = \"round_robbin\"\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'round_robin'?"), "{e}");
    }

    #[test]
    fn new_schemes_parse_and_typos_suggest() {
        let ok = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[schemes]\nuse = [\"BShare\", \"DAMQ\", \"Crosspoint\"]\n",
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(ok.schemes.schemes, vec!["BShare", "DAMQ", "Crosspoint"]);
        assert_eq!(super::default_alpha("BShare"), 8.0);
        assert_eq!(super::default_alpha("DAMQ"), 1.0);
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[schemes]\nuse = [\"BSharre\"]\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'BShare'?"), "{e}");
    }

    #[test]
    fn typo_in_scheme_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[schemes]\nuse = [\"Ocamy\"]\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'Occamy'?"), "{e}");
    }

    #[test]
    fn typo_in_grid_knob_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[grid]\nbg_laod = [0.5]\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'bg_load'?"), "{e}");
    }

    #[test]
    fn unknown_traffic_kind_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[traffic]\nbackground = \"allredcue\"\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'allreduce'?"), "{e}");
    }

    #[test]
    fn per_scale_axes_and_emit_validate() {
        let doc = SpecDoc::from_value(
            &toml::parse(
                r#"
name = "x"
[topology]
kind = "three_tier"
oversubscription = 2.0
[grid]
query_pct_buffer = { full = [20, 60, 100], smoke = [40] }
[[emit]]
title = "t"
rows = "query_pct_buffer"
metric = "qct_slowdown_avg"
"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(doc.grid.len(), 1);
        assert_eq!(doc.grid[0].full.len(), 3);
        assert_eq!(doc.grid[0].quick.len(), 3, "quick defaults to full");
        assert_eq!(doc.grid[0].smoke, [Num::Int(40)]);
        assert_eq!(doc.emit[0].cols, "scheme");
    }

    #[test]
    fn emit_metric_validated_with_suggestion() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[[emit]]\ntitle = \"t\"\nrows = \"scheme\"\ncols = \"scheme\"\nmetric = \"qct_slowdown_avg\"\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("rows and cols"), "{e}");
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[grid]\nbg_load = [0.5]\n[[emit]]\ntitle = \"t\"\nmetric = \"qct_slowdwn_avg\"\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(
            e.message().contains("did you mean 'qct_slowdown_avg'?"),
            "{e}"
        );
    }

    #[test]
    fn grid_scheme_axis_redirected() {
        let e = SpecDoc::from_value(
            &toml::parse("name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[grid]\nscheme = [1]\n")
                .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("[schemes]"), "{e}");
    }

    #[test]
    fn degenerate_dimensions_fail_at_parse_not_run() {
        // These mirror the builder asserts in occamy-sim: a spec that
        // loads must never panic inside the runner.
        for (toml, needle) in [
            (
                "name = \"x\"\n[topology]\nkind = \"three_tier\"\npods = 1\n",
                "'pods' must be ≥ 2",
            ),
            (
                "name = \"x\"\n[topology]\nkind = \"leaf_spine\"\nspines = 0\n",
                "'spines' must be ≥ 1",
            ),
            (
                "name = \"x\"\n[topology]\nkind = \"leaf_spine\"\nleaves = 1\n",
                "'leaves' must be ≥ 2",
            ),
            (
                "name = \"x\"\n[topology]\nkind = \"three_tier\"\ncores = 0\n",
                "'cores' must be ≥ 1",
            ),
        ] {
            let e = SpecDoc::from_value(&crate::toml::parse(toml).unwrap()).unwrap_err();
            assert!(e.message().contains(needle), "{toml}: {e}");
        }
    }

    #[test]
    fn nan_and_infinite_ratios_rejected() {
        for v in ["nan", "inf", "0.5"] {
            let e = SpecDoc::from_value(
                &crate::toml::parse(&format!(
                    "name = \"x\"\n[topology]\nkind = \"fat_tree\"\noversubscription = {v}\n"
                ))
                .unwrap(),
            )
            .unwrap_err();
            assert!(e.message().contains("oversubscription"), "{v}: {e}");
        }
    }

    #[test]
    fn inapplicable_grid_knobs_rejected() {
        // bg_flow_kb means nothing under the (default) web_search
        // background: sweeping it would produce identical cells.
        let e = SpecDoc::from_value(
            &crate::toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[grid]\nbg_flow_kb = [64, 256]\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("has no effect"), "{e}");
        let e = SpecDoc::from_value(
            &crate::toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[traffic]\nbackground = \"none\"\n[grid]\nbg_load = [0.1, 0.9]\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("has no effect"), "{e}");
        // …but they are accepted when the background uses them.
        assert!(SpecDoc::from_value(
            &crate::toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[traffic]\nbackground = \"permutation\"\n[grid]\nperm_shift = [1, 3]\n",
            )
            .unwrap(),
        )
        .is_ok());
    }

    #[test]
    fn odd_fat_tree_rejected() {
        let e = SpecDoc::from_value(
            &toml::parse("name = \"x\"\n[topology]\nkind = \"fat_tree\"\nk = 5\n").unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("even"), "{e}");
    }

    #[test]
    fn faults_parse_and_validate() {
        let doc = SpecDoc::from_value(
            &toml::parse(
                r#"
name = "x"
[topology]
kind = "fat_tree"
k = 4
[[faults]]
kind = "link_flap"
switch = 2
port = 3
down = 0.2
up = 0.5
[[faults]]
kind = "drain"
switch = 0
start = 0.3
end = 0.6
[[faults]]
kind = "host_churn"
host = 15
leave = 0.25
join = 0.75
"#,
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(doc.faults.len(), 3);
        assert_eq!(
            doc.faults[0],
            FaultClause::LinkFlap {
                switch: 2,
                port: 3,
                down: 0.2,
                up: 0.5
            }
        );
        assert_eq!(
            doc.faults[2],
            FaultClause::HostChurn {
                host: 15,
                leave: 0.25,
                join: 0.75
            }
        );
    }

    #[test]
    fn unknown_fault_kind_suggests() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[[faults]]\nkind = \"link_flip\"\nswitch = 0\nport = 0\ndown = 0.1\nup = 0.2\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("did you mean 'link_flap'?"), "{e}");
    }

    #[test]
    fn fault_bounds_checked_against_topology() {
        // k=4 fat-tree: 16 hosts, 20 switches, 4 ports each.
        for (extra, needle) in [
            (
                "[[faults]]\nkind = \"drain\"\nswitch = 20\nstart = 0.1\nend = 0.2\n",
                "outside the fat_tree fabric (20 switches)",
            ),
            (
                "[[faults]]\nkind = \"link_flap\"\nswitch = 2\nport = 4\ndown = 0.1\nup = 0.2\n",
                "outside switch 2 (4 ports)",
            ),
            (
                "[[faults]]\nkind = \"host_churn\"\nhost = 16\nleave = 0.1\njoin = 0.2\n",
                "outside the fat_tree fabric (16 hosts)",
            ),
            (
                "[[faults]]\nkind = \"host_churn\"\nhost = 0\nleave = 1.5\njoin = 2.0\n",
                "fraction of the workload window",
            ),
            (
                "[[faults]]\nkind = \"link_flap\"\nswitch = 0\nport = 0\ndown = 0.5\nup = 0.2\n",
                "down before it comes up",
            ),
            (
                "[[faults]]\nkind = \"drain\"\nswitch = 0\nend = 0.2\n",
                "missing 'start'",
            ),
        ] {
            let spec = format!("name = \"x\"\n[topology]\nkind = \"fat_tree\"\nk = 4\n{extra}");
            let e = SpecDoc::from_value(&toml::parse(&spec).unwrap()).unwrap_err();
            assert!(e.message().contains(needle), "{extra}: {e}");
        }
    }

    #[test]
    fn query_size_is_exclusive() {
        let e = SpecDoc::from_value(
            &toml::parse(
                "name = \"x\"\n[topology]\nkind = \"fat_tree\"\n[traffic]\nquery_bytes = 1\nquery_pct_buffer = 2\n",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(e.message().contains("not both"), "{e}");
    }
}
