//! "Did you mean …?" suggestions for misspelled identifiers.

/// Damerau-Levenshtein distance (optimal string alignment variant):
/// insertions, deletions, substitutions and adjacent transpositions all
/// cost 1 — `fat_treee` is 1 from `fat_tree`, `shceme` is 1 from
/// `scheme`.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows (the transposition case looks two rows back).
    let mut prev2 = vec![0usize; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                cur[j] = cur[j].min(prev2[j - 2] + 1);
            }
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The closest option to `got`, if any is close enough to plausibly be
/// a typo (distance ≤ 2, or ≤ a third of the word for long names).
/// Comparison is case-insensitive so `occamy` still suggests `Occamy`.
pub fn suggest<'a>(got: &str, options: &[&'a str]) -> Option<&'a str> {
    let got_lc = got.to_lowercase();
    options
        .iter()
        .map(|&o| (edit_distance(&got_lc, &o.to_lowercase()), o))
        .min_by_key(|&(d, _)| d)
        .filter(|&(d, _)| d <= 2.max(got.chars().count() / 3))
        .map(|(_, o)| o)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("fat_treee", "fat_tree"), 1);
        assert_eq!(edit_distance("shceme", "scheme"), 1, "transposition");
    }

    #[test]
    fn suggests_typos_not_noise() {
        assert_eq!(suggest("Ocamy", &["Occamy", "DT"]), Some("Occamy"));
        assert_eq!(suggest("occamy", &["Occamy", "DT"]), Some("Occamy"));
        assert_eq!(suggest("qqqqqq", &["Occamy", "DT"]), None);
    }
}
