//! Spec-layer errors: every failure names what was wrong and, for
//! misspelled identifiers, suggests the closest known alternative.

use crate::suggest::suggest;
use std::fmt;

/// An error raised while parsing or validating a scenario spec.
///
/// The message is always self-contained — it names the offending key or
/// value (and its section), so a typo in a 200-line spec is a one-line
/// fix, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    msg: String,
}

impl SpecError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        SpecError { msg: msg.into() }
    }

    /// An "unknown identifier" error with a did-you-mean suggestion:
    /// `what` names the identifier class (e.g. `"scheme"`), `got` is the
    /// offending spelling and `options` the known set.
    pub fn unknown(what: &str, got: &str, options: &[&str]) -> Self {
        let mut msg = format!("unknown {what} '{got}'");
        if let Some(s) = suggest(got, options) {
            msg.push_str(&format!("; did you mean '{s}'?"));
        }
        msg.push_str(&format!(" (known: {})", options.join(", ")));
        SpecError { msg }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Prefixes the message with a context path (e.g. `[traffic]`).
    pub fn in_context(self, ctx: &str) -> Self {
        SpecError {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Shorthand result type for the crate.
pub type Result<T> = std::result::Result<T, SpecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_suggests_closest() {
        let e = SpecError::unknown("scheme", "Ocamy", &["Occamy", "DT", "ABM"]);
        assert!(e.message().contains("did you mean 'Occamy'?"), "{e}");
        assert!(e.message().contains("known: Occamy, DT, ABM"), "{e}");
    }

    #[test]
    fn unknown_without_close_match_still_lists() {
        let e = SpecError::unknown("key", "zzzzzz", &["alpha", "beta"]);
        assert!(!e.message().contains("did you mean"), "{e}");
        assert!(e.message().contains("known: alpha, beta"), "{e}");
    }

    #[test]
    fn context_prefixes() {
        let e = SpecError::new("boom").in_context("[traffic]");
        assert_eq!(e.message(), "[traffic]: boom");
    }
}
