//! A minimal JSON reader producing the same [`Value`] tree as the TOML
//! reader, so `.json` specs (and the machine-readable `BENCH_*.json`
//! outputs, for golden-metric comparison) share one typed model.

use crate::error::{Result, SpecError};
use crate::value::Value;

/// Parses a JSON document. Objects preserve key order; numbers without
/// a fraction or exponent become integers; `null` is rejected (specs
/// omit absent keys instead).
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        s: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if !p.at_end() {
        return p.err("trailing characters after document");
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.i >= self.s.len()
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn line(&self) -> usize {
        1 + self.s[..self.i.min(self.s.len())]
            .iter()
            .filter(|&&c| c == b'\n')
            .count()
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(SpecError::new(format!(
            "line {}: {}",
            self.line(),
            msg.into()
        )))
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n')
        ) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.s[self.i..].starts_with(w.as_bytes()) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 64 {
            return self.err("nesting too deep");
        }
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'{') => {
                self.i += 1;
                let mut kv: Vec<(String, Value)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Table(kv));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.parse_value(depth + 1)?;
                    if kv.iter().any(|(k, _)| *k == key) {
                        return self.err(format!("duplicate key '{key}'"));
                    }
                    kv.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Table(kv));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_word("null") => {
                self.err("null is not supported — omit the key instead")
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out)
                        .map_err(|_| SpecError::new("invalid UTF-8 in string"));
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                self.i += 1;
                                match self.peek().and_then(|c| (c as char).to_digit(16)) {
                                    Some(d) => code = code * 16 + d,
                                    None => return self.err("bad \\u escape"),
                                }
                            }
                            match char::from_u32(code) {
                                Some(ch) => {
                                    let mut buf = [0u8; 4];
                                    out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unsupported escape"),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.i;
        while matches!(self.peek(), Some(c)
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        let word = std::str::from_utf8(&self.s[start..self.i]).unwrap_or("");
        if word.is_empty() {
            return self.err("expected a value");
        }
        let is_float = word.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(v) = word.parse::<i128>() {
                return Ok(Value::Int(v));
            }
        }
        word.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| SpecError::new(format!("bad number '{word}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_objects_arrays_scalars() {
        let v = parse(
            r#"{"name": "demo", "n": 3, "x": 2.5, "big": 1e3,
                "ok": true, "list": [1, "two", {"k": -1}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "demo");
        assert_eq!(v.get("n").unwrap().as_int().unwrap(), 3);
        assert_eq!(v.get("x").unwrap().as_f64().unwrap(), 2.5);
        assert_eq!(v.get("big").unwrap().as_f64().unwrap(), 1000.0);
        assert!(matches!(v.get("big").unwrap(), Value::Float(_)));
        let list = v.get("list").unwrap().as_array().unwrap();
        assert_eq!(list[2].get("k").unwrap().as_int().unwrap(), -1);
    }

    #[test]
    fn rejects_null_trailing_and_bad_syntax() {
        assert!(parse(r#"{"a": null}"#)
            .unwrap_err()
            .message()
            .contains("null"));
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#"{"a": 1,, }"#).is_err());
    }

    #[test]
    fn error_has_line_number() {
        let e = parse("{\n\"a\": nope\n}").unwrap_err();
        assert!(e.message().starts_with("line 2:"), "{e}");
    }
}
