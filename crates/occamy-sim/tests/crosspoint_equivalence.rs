//! The crosspoint-queued switch model's determinism contract: repeat
//! runs are byte-identical, serial and `--threads N` executions agree
//! exactly, both crosspoint schedulers work end-to-end, and fault
//! injection composes with the architecture.

use occamy_core::BmKind;
use occamy_sim::topology::{fat_tree, BmSpec, FatTreeCfg, SchedKind};
use occamy_sim::{
    CbrDesc, CcAlgo, Drain, FaultSchedule, FlowDesc, HostChurn, LinkFlap, SimConfig, World,
    XpSched, MS, US,
};

/// A k=4 fat-tree with every switch converted to crosspoint queueing,
/// under the mixed load the shared-memory equivalence suite uses: a
/// permutation, an 8:1 incast (the small per-crosspoint buffers make it
/// drop), and two cross-pod CBR sources.
fn build(threads: usize, sched: XpSched) -> World {
    let sim = SimConfig {
        threads,
        ..SimConfig::default()
    };
    let mut w = fat_tree(FatTreeCfg {
        k: 4,
        host_rate_bps: 10_000_000_000,
        fabric_rate_bps: 10_000_000_000,
        link_prop_ps: 1_000_000, // 1 µs
        buffer_per_8ports_bytes: 150_000,
        classes: 2,
        bm: BmSpec::per_class(BmKind::CompleteSharing, vec![1.0, 1.0]),
        sched: SchedKind::Fifo,
        sim,
    });
    w.enable_crosspoint(sched);
    let n = 16;
    for src in 0..n {
        w.add_flow(FlowDesc {
            src,
            dst: (src + 5) % n,
            bytes: 400_000,
            start_ps: (src as u64) * 3 * US,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    for src in 8..16 {
        w.add_flow(FlowDesc {
            src,
            dst: 0,
            bytes: 60_000,
            start_ps: 50 * US,
            prio: 1,
            cc: CcAlgo::Dctcp,
            query: Some(1),
            is_query: true,
        });
    }
    for (host, dst) in [(3, 12), (14, 2)] {
        w.add_cbr(CbrDesc {
            host,
            dst,
            rate_bps: 2_000_000_000,
            pkt_len: 1_000,
            prio: 1,
            start_ps: 10 * US,
            stop_ps: 2 * MS,
            budget_bytes: None,
        });
    }
    w
}

/// Every piece of observable end state, formatted for exact equality.
fn snapshot(w: &World) -> String {
    let m = &w.metrics;
    let mut s = format!(
        "now={} events={} delivered={}p/{}b drops={:?} faults={}/{}\nbuf={:?}\nmembw={:?}\ncbr={:?}\n",
        w.now,
        m.events_processed,
        m.delivered_pkts,
        m.delivered_bytes,
        m.drops,
        m.faults_fired,
        m.fault_drops,
        m.drop_buffer_util,
        m.drop_membw_util,
        m.cbr,
    );
    for r in w.flow_records().records() {
        s.push_str(&format!(
            "flow {} start={} end={:?} bytes={}\n",
            r.id, r.start_ps, r.end_ps, r.bytes
        ));
    }
    s
}

#[test]
fn crosspoint_runs_repeat_byte_identically() {
    for sched in [XpSched::RoundRobin, XpSched::Longest] {
        let mut a = build(1, sched);
        let mut b = build(1, sched);
        // The tiny per-crosspoint buffers make the incast lossy enough
        // that a straggler can need an RTO-driven retry, so give the
        // run a generous horizon.
        a.run_to_completion(500 * MS);
        b.run_to_completion(500 * MS);
        assert!(a.all_flows_done(), "{sched:?}: flows must complete");
        assert!(
            a.metrics.delivered_pkts > 0,
            "{sched:?}: traffic must actually flow through the crosspoints"
        );
        assert_eq!(snapshot(&a), snapshot(&b), "{sched:?} repeat run diverged");
    }
}

#[test]
fn crosspoint_parallel_matches_serial_exactly() {
    let mut serial = build(1, XpSched::RoundRobin);
    serial.run_to_completion(500 * MS);
    let want = snapshot(&serial);
    assert!(serial.par_stats.is_none(), "threads=1 must stay serial");

    for threads in [2, 4] {
        let mut par = build(threads, XpSched::RoundRobin);
        par.run_to_completion(500 * MS);
        let stats = par
            .par_stats
            .as_ref()
            .expect("parallel path must engage on a multi-domain fat-tree");
        assert!(stats.windows > 0);
        assert_eq!(
            snapshot(&par),
            want,
            "threads={threads} diverged from serial"
        );
    }
}

#[test]
fn crosspoint_schedulers_diverge_under_contention() {
    // Round-robin and longest-first serve contended output columns in
    // different orders; under the incast they must produce observably
    // different (yet individually deterministic) executions. This guards
    // against the scheduler knob silently not being wired through.
    let mut rr = build(1, XpSched::RoundRobin);
    let mut lg = build(1, XpSched::Longest);
    rr.run_to_completion(500 * MS);
    lg.run_to_completion(500 * MS);
    assert_ne!(
        snapshot(&rr),
        snapshot(&lg),
        "schedulers produced identical executions — knob not wired?"
    );
}

#[test]
fn crosspoint_composes_with_fault_injection() {
    let schedule = FaultSchedule {
        link_flaps: vec![LinkFlap {
            switch: 0,
            port: 2, // k=4 edge: ports 0-1 hosts, 2-3 aggs
            down: 0.1,
            up: 0.45,
        }],
        drains: vec![Drain {
            switch: 8, // an aggregation switch (edges are 0-7)
            start: 0.2,
            end: 0.5,
        }],
        host_churns: vec![HostChurn {
            host: 6,
            leave: 0.15,
            join: 0.4,
        }],
    };
    let faulted = |threads: usize| {
        let mut w = build(threads, XpSched::RoundRobin);
        schedule.apply(&mut w, 2 * MS);
        w
    };
    let mut serial = faulted(1);
    serial.run_to_completion(500 * MS);
    assert!(
        serial.metrics.faults_fired > 0,
        "the schedule must actually fire"
    );
    assert!(serial.all_flows_done(), "fabric must heal and deliver");
    let want = snapshot(&serial);

    let mut rerun = faulted(1);
    rerun.run_to_completion(500 * MS);
    assert_eq!(snapshot(&rerun), want, "faulted repeat run diverged");

    let mut par = faulted(2);
    par.run_to_completion(500 * MS);
    assert_eq!(snapshot(&par), want, "faulted threads=2 diverged");
}
