//! Property-based invariants of the fabric builders: every topology the
//! spec compiler can emit (leaf-spine, fat-tree, 3-tier) must be fully
//! connected, internally consistent and loop-free under ECMP routing,
//! for arbitrary configuration shapes.

use occamy_core::BmKind;
use occamy_sim::topology::{
    fat_tree, leaf_spine, three_tier, BmSpec, FatTreeCfg, LeafSpineCfg, SchedKind, ThreeTierCfg,
};
use occamy_sim::{NodeId, SimConfig, World, US};
use proptest::prelude::*;

fn bm() -> BmSpec {
    BmSpec::uniform(BmKind::Dt, 1.0)
}

/// Checks the structural invariants shared by every fabric:
///
/// 1. every host attaches to a valid switch;
/// 2. every switch's routing table covers every host with at least one
///    candidate egress port, and every candidate is a real port;
/// 3. every link endpoint names a real host or switch, and the
///    partition maps (`port_partition` / `port_local`) round-trip;
/// 4. for every (src, dst) host pair and several flow ids, hop-by-hop
///    forwarding terminates at `dst` without revisiting a switch.
fn check_fabric_invariants(w: &World) {
    let n_hosts = w.hosts.len();
    let n_switches = w.switches.len();
    for h in &w.hosts {
        assert!(h.link.to_switch < n_switches, "host uplink out of range");
    }
    for sw in &w.switches {
        assert_eq!(sw.routing.num_dsts(), n_hosts, "switch {} routing", sw.id);
        assert_eq!(sw.port_partition.len(), sw.ports.len());
        assert_eq!(sw.port_local.len(), sw.ports.len());
        for p in 0..sw.ports.len() {
            let pi = sw.port_partition[p];
            assert!(pi < sw.partitions.len(), "switch {} partition map", sw.id);
            assert_eq!(
                sw.partitions[pi].ports[sw.port_local[p]], p,
                "switch {} port {} partition round-trip",
                sw.id, p
            );
            match sw.ports[p].link.to {
                NodeId::Host(h) => assert!((h as usize) < n_hosts, "dangling host link"),
                NodeId::Switch(s) => assert!((s as usize) < n_switches, "dangling switch link"),
            }
            assert!(sw.ports[p].link.rate_bps > 0, "zero-rate link");
        }
        for dst in 0..n_hosts {
            let cands = sw.routing.candidates(dst);
            assert!(!cands.is_empty(), "switch {} has no route to {dst}", sw.id);
            for &c in cands {
                assert!((c as usize) < sw.ports.len(), "route to ghost port");
            }
        }
    }
    // Path termination: walk the fabric for every host pair. ECMP picks
    // per-flow paths, so probe a few flow ids per pair.
    for src in 0..n_hosts {
        for dst in 0..n_hosts {
            if src == dst {
                continue;
            }
            for flow in [0u64, 1, 0xDEAD_BEEF] {
                let mut at = w.hosts[src].link.to_switch;
                let mut visited = vec![false; n_switches];
                loop {
                    assert!(
                        !visited[at],
                        "routing loop at switch {at} for {src}->{dst} flow {flow}"
                    );
                    visited[at] = true;
                    let sw = &w.switches[at];
                    let port = sw.routing.port_for(dst, flow as u32);
                    match sw.ports[port].link.to {
                        NodeId::Host(h) => {
                            assert_eq!(h as usize, dst, "delivered to the wrong host");
                            break;
                        }
                        NodeId::Switch(s) => at = s as usize,
                    }
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn leaf_spine_invariants(
        spines in 1usize..5,
        leaves in 2usize..5,
        hosts_per_leaf in 1usize..5,
    ) {
        let w = leaf_spine(LeafSpineCfg {
            spines,
            leaves,
            hosts_per_leaf,
            host_rate_bps: 25_000_000_000,
            fabric_rate_bps: 25_000_000_000,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        });
        prop_assert_eq!(w.hosts.len(), leaves * hosts_per_leaf);
        prop_assert_eq!(w.switches.len(), leaves + spines);
        for leaf in &w.switches[..leaves] {
            prop_assert_eq!(leaf.ports.len(), hosts_per_leaf + spines);
        }
        for spine in &w.switches[leaves..] {
            prop_assert_eq!(spine.ports.len(), leaves);
        }
        check_fabric_invariants(&w);
    }

    #[test]
    fn fat_tree_invariants(half in 1usize..4) {
        let k = 2 * half; // arity must be even
        let cfg = FatTreeCfg {
            k,
            host_rate_bps: 25_000_000_000,
            fabric_rate_bps: 10_000_000_000,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        };
        let n_hosts = cfg.n_hosts();
        let n_switches = cfg.n_switches();
        let w = fat_tree(cfg);
        prop_assert_eq!(w.hosts.len(), n_hosts);
        prop_assert_eq!(w.switches.len(), n_switches);
        // Every edge and aggregation switch has exactly k ports, every
        // core exactly k (one per pod).
        for sw in &w.switches {
            prop_assert_eq!(sw.ports.len(), k, "switch {} port count", sw.id);
        }
        check_fabric_invariants(&w);
    }

    #[test]
    fn three_tier_invariants(
        pods in 2usize..4,
        access_per_pod in 1usize..3,
        aggs_per_pod in 1usize..3,
        cores in 1usize..4,
        hosts_per_access in 1usize..4,
        oversub in 1.0f64..8.0,
    ) {
        let cfg = ThreeTierCfg {
            pods,
            access_per_pod,
            aggs_per_pod,
            cores,
            hosts_per_access,
            host_rate_bps: 25_000_000_000,
            core_rate_bps: 25_000_000_000,
            oversubscription: oversub,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        };
        let n_hosts = cfg.n_hosts();
        let n_switches = cfg.n_switches();
        let uplink = cfg.uplink_rate_bps();
        prop_assert!(uplink >= 1);
        // The oversubscription knob shrinks uplinks monotonically.
        let mut non_blocking = cfg.clone();
        non_blocking.oversubscription = 1.0;
        prop_assert!(uplink <= non_blocking.uplink_rate_bps());
        let w = three_tier(cfg);
        prop_assert_eq!(w.hosts.len(), n_hosts);
        prop_assert_eq!(w.switches.len(), n_switches);
        for acc in &w.switches[..pods * access_per_pod] {
            prop_assert_eq!(acc.ports.len(), hosts_per_access + aggs_per_pod);
            prop_assert_eq!(acc.ports[hosts_per_access].link.rate_bps, uplink.max(1));
        }
        for agg in &w.switches[pods * access_per_pod..pods * (access_per_pod + aggs_per_pod)] {
            prop_assert_eq!(agg.ports.len(), access_per_pod + cores);
        }
        for core in &w.switches[pods * (access_per_pod + aggs_per_pod)..] {
            prop_assert_eq!(core.ports.len(), pods * aggs_per_pod);
        }
        check_fabric_invariants(&w);
    }
}
