//! Regression tests for Occamy's reactive expulsion machinery: token
//! gating, retry scheduling, and the §4.5 no-redundant-bandwidth
//! degeneration.

use occamy_core::BmKind;
use occamy_sim::topology::{
    leaf_spine, single_switch, BmSpec, LeafSpineCfg, SchedKind, SingleSwitchCfg,
};
use occamy_sim::{CbrDesc, CcAlgo, FlowDesc, SimConfig, MS, SEC, US};

const G10: u64 = 10_000_000_000;

fn entrench_and_burst(sim: SimConfig) -> occamy_sim::World {
    // Fast sender NICs, 10 G receivers: the burst outruns its drain so
    // queue dynamics actually exercise the threshold machinery.
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![100_000_000_000, 100_000_000_000, G10, G10],
        prop_ps: US,
        buffer_bytes: 200_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Occamy, 8.0),
        sched: SchedKind::Fifo,
        sim,
    });
    // Entrench a queue toward host 2 (20 G in, 10 G out).
    w.add_cbr(CbrDesc {
        host: 0,
        dst: 2,
        rate_bps: 20_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: 20 * MS,
        budget_bytes: None,
    });
    // Line-rate burst toward host 3 at t = 10 ms.
    w.add_cbr(CbrDesc {
        host: 1,
        dst: 3,
        rate_bps: 100_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 10 * MS,
        stop_ps: 20 * MS,
        budget_bytes: Some(150_000),
    });
    w.run_to_completion(25 * MS);
    w
}

#[test]
fn expulsion_fires_with_spare_bandwidth() {
    let w = entrench_and_burst(SimConfig::default());
    assert!(
        w.metrics.drops.head_drops > 0,
        "Occamy never expelled despite an entrenched queue"
    );
}

#[test]
fn zero_token_rate_degenerates_to_dt() {
    // §4.5: with no redundant memory bandwidth Occamy must behave like
    // DT — zero head drops, only tail drops.
    let w = entrench_and_burst(SimConfig {
        expel_rate_factor: 0.0,
        ..SimConfig::default()
    });
    assert_eq!(
        w.metrics.drops.head_drops, 0,
        "expulsion used bandwidth it does not have"
    );
    // The burst now suffers tail drops instead (DT-α8 behavior).
    assert!(w.metrics.drops.tail_drops() > 0);
}

#[test]
fn tiny_token_rate_still_makes_progress() {
    // Even 5% of forwarding capacity outpaces a 10 G queue drain enough
    // to reclaim the entrenched buffer eventually.
    let w = entrench_and_burst(SimConfig {
        expel_rate_factor: 0.05,
        ..SimConfig::default()
    });
    assert!(
        w.metrics.drops.head_drops > 0,
        "throttled expulsion should still fire via ExpelRetry"
    );
    let full = entrench_and_burst(SimConfig::default());
    assert!(
        w.metrics.drops.head_drops <= full.metrics.drops.head_drops,
        "throttled expulsion cannot out-drop the unthrottled one"
    );
}

#[test]
fn expulsion_does_not_hurt_throughput() {
    // The fixed-priority rule: with Occamy aggressively expelling, a
    // saturating flow must still achieve full line rate.
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 3],
        prop_ps: US,
        buffer_bytes: 100_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Occamy, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    w.add_flow(FlowDesc {
        src: 0,
        dst: 2,
        bytes: 12_500_000, // 10 ms at line rate
        start_ps: 0,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: None,
        is_query: false,
    });
    // A CBR aggressor keeps the other queue permanently over-allocated.
    w.add_cbr(CbrDesc {
        host: 1,
        dst: 2,
        rate_bps: 2_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: SEC,
        budget_bytes: None,
    });
    w.run_to_completion(SEC);
    assert!(w.all_flows_done());
    let fct = w.flows.cold[0].end_ps.unwrap();
    // Sharing 10 G with a 2 G aggressor leaves 8 G: 12.5 MB ≈ 12.9 ms.
    // Anything far beyond ~16 ms would mean expulsion stole capacity.
    assert!(
        fct < 18 * MS,
        "flow took {} ms — expulsion interfered with forwarding",
        fct / MS
    );
}

#[test]
fn ecmp_spreads_flows_across_spines() {
    // Many flows between two leaves must use all spine up-links.
    let mut w = leaf_spine(LeafSpineCfg::paper(
        BmSpec::uniform(BmKind::Dt, 1.0),
        SimConfig::large_scale(),
    ));
    for i in 0..64 {
        w.add_flow(FlowDesc {
            src: i % 16,        // leaf 0
            dst: 16 + (i % 16), // leaf 1
            bytes: 100_000,
            start_ps: 0,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    w.run_to_completion(10 * SEC);
    assert!(w.all_flows_done());
    // Every spine must have forwarded something: check read-side rates
    // via the spine switches' dequeue byte counters (approximated by the
    // per-port busy history — here we simply check queue stats existed).
    // Deterministic check: hash-spread of the 64 flow ids over 8 paths
    // touches at least 6 distinct spines.
    let mut used = std::collections::HashSet::new();
    for f in 0..64u32 {
        used.insert(w.switches[0].routing.port_for(16, f));
    }
    assert!(
        used.len() >= 6,
        "ECMP used only {} of 8 up-links",
        used.len()
    );
}
