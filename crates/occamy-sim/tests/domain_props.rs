//! Property-based invariants of the event-domain partition
//! (`topology::DomainMap`) that the parallel executor's correctness
//! rests on: total coverage (every component in exactly one domain),
//! sound lookahead (every cross-domain link's propagation delay is at
//! least `lookahead_ps`, and nonzero whenever two domains exist), and
//! the guarantee that `threads = 1` takes the serial path bit-for-bit.

use occamy_core::BmKind;
use occamy_sim::topology::{
    fat_tree, leaf_spine, three_tier, BmSpec, FatTreeCfg, LeafSpineCfg, SchedKind, ThreeTierCfg,
};
use occamy_sim::{CcAlgo, FlowDesc, NodeId, SimConfig, World, MS, US};
use proptest::prelude::*;

fn bm() -> BmSpec {
    BmSpec::uniform(BmKind::Occamy, 8.0)
}

/// The partition invariants every builder-exported `DomainMap` must
/// satisfy:
///
/// 1. exactly one domain per host and per switch (the map covers every
///    component, and every assignment is a valid domain id);
/// 2. every domain id below `n_domains()` is actually used;
/// 3. every link that crosses domains — host uplinks and switch-port
///    links — carries at least `lookahead_ps` of propagation delay, and
///    with more than one domain the lookahead is strictly positive
///    (zero lookahead would make conservative windows empty).
fn check_domain_invariants(w: &World) {
    let dm = w.domains.as_ref().expect("builder exports a DomainMap");
    let nd = dm.n_domains();
    assert_eq!(dm.host_domain.len(), w.hosts.len(), "host coverage");
    assert_eq!(dm.switch_domain.len(), w.switches.len(), "switch coverage");
    let mut used = vec![false; nd];
    for &d in dm.host_domain.iter().chain(&dm.switch_domain) {
        assert!((d as usize) < nd, "domain id {d} out of range");
        used[d as usize] = true;
    }
    assert!(used.iter().all(|&u| u), "unused domain id");

    if nd > 1 {
        assert!(dm.lookahead_ps > 0, "multi-domain map needs lookahead");
    }
    let node_dom = |n: NodeId| match n {
        NodeId::Host(h) => dm.host_domain[h as usize],
        NodeId::Switch(s) => dm.switch_domain[s as usize],
    };
    let mut cross_links = 0usize;
    for (h, host) in w.hosts.iter().enumerate() {
        if dm.host_domain[h] != dm.switch_domain[host.link.to_switch] {
            cross_links += 1;
            assert!(
                host.link.prop_ps >= dm.lookahead_ps,
                "host {h} uplink beats the lookahead"
            );
        }
    }
    for (s, sw) in w.switches.iter().enumerate() {
        for port in &sw.ports {
            if node_dom(port.link.to) != dm.switch_domain[s] {
                cross_links += 1;
                assert!(
                    port.link.prop_ps >= dm.lookahead_ps,
                    "switch {s} port link beats the lookahead"
                );
            }
        }
    }
    assert_eq!(
        cross_links > 0,
        nd > 1,
        "cross-domain links iff multiple domains"
    );
}

/// A small shifted-permutation workload, identical for every invocation
/// with the same host count.
fn inject_permutation(w: &mut World, n_hosts: usize) {
    for src in 0..n_hosts {
        w.add_flow(FlowDesc {
            src,
            dst: (src + 1) % n_hosts,
            bytes: 150_000,
            start_ps: (src as u64) * US,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
}

proptest! {
    #[test]
    fn leaf_spine_domains_are_sound(
        spines in 1usize..5,
        leaves in 2usize..5,
        hosts_per_leaf in 1usize..5,
    ) {
        let w = leaf_spine(LeafSpineCfg {
            spines,
            leaves,
            hosts_per_leaf,
            host_rate_bps: 25_000_000_000,
            fabric_rate_bps: 25_000_000_000,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        });
        check_domain_invariants(&w);
    }

    #[test]
    fn fat_tree_domains_are_sound(half in 1usize..4) {
        let w = fat_tree(FatTreeCfg {
            k: 2 * half,
            host_rate_bps: 25_000_000_000,
            fabric_rate_bps: 10_000_000_000,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        });
        check_domain_invariants(&w);
    }

    #[test]
    fn three_tier_domains_are_sound(
        pods in 2usize..4,
        access_per_pod in 1usize..3,
        aggs_per_pod in 1usize..3,
        cores in 1usize..4,
        hosts_per_access in 1usize..4,
    ) {
        let w = three_tier(ThreeTierCfg {
            pods,
            access_per_pod,
            aggs_per_pod,
            cores,
            hosts_per_access,
            host_rate_bps: 25_000_000_000,
            core_rate_bps: 25_000_000_000,
            oversubscription: 2.0,
            link_prop_ps: 10 * US,
            buffer_per_8ports_bytes: 1_000_000,
            classes: 1,
            bm: bm(),
            sched: SchedKind::Fifo,
            sim: SimConfig::large_scale(),
        });
        check_domain_invariants(&w);
    }

    /// `threads = 1` must take the serial path (never the parallel
    /// executor) and produce exactly what a domain-less world produces:
    /// the partition's existence alone cannot perturb a serial run.
    #[test]
    fn threads_one_is_the_serial_path(half in 1usize..3, seed_shift in 0usize..3) {
        let build = |threads: usize, strip_domains: bool| {
            let mut sim = SimConfig::large_scale();
            sim.threads = threads;
            let mut w = fat_tree(FatTreeCfg {
                k: 2 * half,
                host_rate_bps: 25_000_000_000,
                fabric_rate_bps: 25_000_000_000,
                link_prop_ps: 10 * US,
                buffer_per_8ports_bytes: 500_000,
                classes: 1,
                bm: bm(),
                sched: SchedKind::Fifo,
                sim,
            });
            if strip_domains {
                w.domains = None;
            }
            let n = w.hosts.len();
            inject_permutation(&mut w, n);
            // Perturb the workload a little per case so the property is
            // not about one fixed trajectory.
            for _ in 0..seed_shift {
                w.add_flow(FlowDesc {
                    src: 0,
                    dst: n - 1,
                    bytes: 9_000,
                    start_ps: 3 * US,
                    prio: 0,
                    cc: CcAlgo::Dctcp,
                    query: None,
                    is_query: false,
                });
            }
            w.run_to_completion(50 * MS);
            w
        };
        let with_domains = build(1, false);
        let without = build(1, true);
        prop_assert!(with_domains.par_stats.is_none(), "threads=1 engaged the parallel path");
        prop_assert_eq!(with_domains.now, without.now);
        prop_assert_eq!(
            with_domains.metrics.events_processed,
            without.metrics.events_processed
        );
        prop_assert_eq!(
            with_domains.metrics.delivered_bytes,
            without.metrics.delivered_bytes
        );
        prop_assert_eq!(
            &with_domains.metrics.drop_buffer_util,
            &without.metrics.drop_buffer_util
        );
        prop_assert!(with_domains.all_flows_done());
    }
}
