//! Timer-wheel ordering properties: the wheel-backed event queue must
//! fire in exactly the order a reference priority queue would — the
//! property that makes the wheel a drop-in replacement for the old
//! binary heap with bit-identical simulation results.

use occamy_sim::{Event, EventQueue, Ps};
use proptest::prelude::*;

proptest! {
    /// Mixed pushes across all three lanes at delays spanning nanoseconds
    /// to hundreds of seconds (level-0 slots through the overflow lane),
    /// interleaved with pops that advance the wheel cursor: every event
    /// must pop in exact `(time, insertion sequence)` order — the order
    /// the old heap produced.
    ///
    /// Script encoding: `op < 3` arms on lane `op` (0 = `push`,
    /// 1 = `push_timer`, 2 = `push_deferred`) at `now + delay` (the lane
    /// divisor varies the delay scale); `op ≥ 3` pops one event.
    #[test]
    fn fire_order_matches_reference_heap(
        script in prop::collection::vec((0u8..6, 0u64..400_000_000_000u64), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut model: Vec<(Ps, u64)> = Vec::new(); // (time, seq), unsorted
        let mut seq = 0u64;
        let mut now: Ps = 0;
        let mut fired: Vec<(Ps, u64)> = Vec::new();
        for (op, raw_delay) in script {
            if op < 3 {
                let delay = raw_delay / (1 + (op as u64) * 1_000);
                let at = now + delay;
                let ev = Event::HostTxFree { host: seq as u32 };
                match op {
                    0 => q.push(at, ev),
                    1 => q.push_timer(at, ev),
                    _ => q.push_deferred(at, ev),
                }
                model.push((at, seq));
                seq += 1;
            } else if let Some((t, Event::HostTxFree { host })) = q.pop() {
                prop_assert!(t >= now, "time went backwards");
                now = t;
                fired.push((t, host as u64));
            }
        }
        while let Some((t, Event::HostTxFree { host })) = q.pop() {
            fired.push((t, host as u64));
        }
        prop_assert!(q.is_empty());
        // The reference: a total (time, seq) sort — what any correct
        // priority queue with insertion-order tie-breaking produces.
        model.sort_unstable();
        prop_assert_eq!(fired, model);
    }

    /// `pop_at_most` never returns an event past the limit and never
    /// loses one before it.
    #[test]
    fn pop_at_most_respects_limit(
        delays in prop::collection::vec(0u64..10_000_000_000u64, 1..40),
        limit in 0u64..10_000_000_000u64,
    ) {
        let mut q = EventQueue::new();
        for (i, d) in delays.iter().enumerate() {
            q.push_timer(*d, Event::HostTxFree { host: i as u32 });
        }
        let mut popped = 0;
        while let Some((t, _)) = q.pop_at_most(limit) {
            prop_assert!(t <= limit);
            popped += 1;
        }
        let due = delays.iter().filter(|&&d| d <= limit).count();
        prop_assert_eq!(popped, due);
        prop_assert_eq!(q.len(), delays.len() - due);
    }
}
