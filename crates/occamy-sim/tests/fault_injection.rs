//! Fault injection end-to-end: scheduled link flaps, switch drains and
//! host churn must be deterministic (byte-identical across repeat runs
//! and across thread counts) and recoverable (every flow the faults
//! interrupt still delivers exactly its bytes once the fabric heals).

use occamy_core::BmKind;
use occamy_sim::topology::{fat_tree, BmSpec, FatTreeCfg, SchedKind};
use occamy_sim::{
    CbrDesc, CcAlgo, Drain, FaultSchedule, FlowDesc, HostChurn, LinkFlap, SimConfig, World, MS, US,
};
use proptest::prelude::*;

/// A k=4 fat-tree (16 hosts, 20 switches, 4 pods) under a permutation
/// plus an incast and one CBR source — the same mixed load the parallel
/// equivalence suite uses, so faults are exercised against every event
/// kind.
fn build(threads: usize) -> World {
    let sim = SimConfig {
        threads,
        ..SimConfig::default()
    };
    let mut w = fat_tree(FatTreeCfg {
        k: 4,
        host_rate_bps: 10_000_000_000,
        fabric_rate_bps: 10_000_000_000,
        link_prop_ps: 1_000_000, // 1 µs
        buffer_per_8ports_bytes: 150_000,
        classes: 2,
        bm: BmSpec::per_class(BmKind::Occamy, vec![8.0, 8.0]),
        sched: SchedKind::Fifo,
        sim,
    });
    let n = 16;
    for src in 0..n {
        w.add_flow(FlowDesc {
            src,
            dst: (src + 5) % n,
            bytes: 200_000,
            start_ps: (src as u64) * 3 * US,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    for src in 8..12 {
        w.add_flow(FlowDesc {
            src,
            dst: 0,
            bytes: 40_000,
            start_ps: 50 * US,
            prio: 1,
            cc: CcAlgo::Dctcp,
            query: Some(1),
            is_query: true,
        });
    }
    w.add_cbr(CbrDesc {
        host: 3,
        dst: 12,
        rate_bps: 1_000_000_000,
        pkt_len: 1_000,
        prio: 1,
        start_ps: 10 * US,
        stop_ps: MS,
        budget_bytes: None,
    });
    w
}

/// The schedule the determinism tests share: an edge up-link flap, an
/// aggregation drain and a host churn cycle, all inside the first 2 ms.
fn schedule() -> FaultSchedule {
    FaultSchedule {
        link_flaps: vec![LinkFlap {
            switch: 0,
            port: 2, // k=4 edge: ports 0-1 hosts, 2-3 aggs
            down: 0.1,
            up: 0.45,
        }],
        drains: vec![Drain {
            switch: 8, // an aggregation switch (edges are 0-7)
            start: 0.2,
            end: 0.5,
        }],
        host_churns: vec![HostChurn {
            host: 6,
            leave: 0.15,
            join: 0.4,
        }],
    }
}

/// Every piece of observable end state, formatted for exact equality —
/// the parallel-equivalence snapshot plus the resilience counters.
fn snapshot(w: &World) -> String {
    let m = &w.metrics;
    let mut s = format!(
        "now={} events={} delivered={}p/{}b drops={:?} faults={}/{}\nbuf={:?}\nmembw={:?}\ncbr={:?}\nresilience={:?}\n",
        w.now,
        m.events_processed,
        m.delivered_pkts,
        m.delivered_bytes,
        m.drops,
        m.faults_fired,
        m.fault_drops,
        m.drop_buffer_util,
        m.drop_membw_util,
        m.cbr,
        w.resilience(),
    );
    for r in w.flow_records().records() {
        s.push_str(&format!(
            "flow {} start={} end={:?} bytes={}\n",
            r.id, r.start_ps, r.end_ps, r.bytes
        ));
    }
    s
}

fn faulted(threads: usize) -> World {
    let mut w = build(threads);
    schedule().apply(&mut w, 2 * MS);
    w
}

#[test]
fn faulted_runs_repeat_byte_identically() {
    let mut a = faulted(1);
    let mut b = faulted(1);
    a.run_to_completion(500 * MS);
    b.run_to_completion(500 * MS);
    assert!(
        a.metrics.faults_fired > 0 && a.metrics.fault_drops > 0,
        "the schedule must actually bite (fired {}, dropped {})",
        a.metrics.faults_fired,
        a.metrics.fault_drops
    );
    assert_eq!(snapshot(&a), snapshot(&b), "repeat run diverged");
}

#[test]
fn faulted_parallel_matches_serial_exactly() {
    let mut serial = faulted(1);
    serial.run_to_completion(500 * MS);
    let want = snapshot(&serial);
    assert!(serial.par_stats.is_none(), "threads=1 must stay serial");

    for threads in [2, 4, 8] {
        let mut par = faulted(threads);
        par.run_to_completion(500 * MS);
        assert!(
            par.par_stats.is_some(),
            "parallel path must engage on a multi-domain fat-tree"
        );
        assert_eq!(
            snapshot(&par),
            want,
            "threads={threads} diverged from serial under faults"
        );
    }
}

#[test]
fn interrupted_flows_recover_with_exact_bytes() {
    let mut w = faulted(1);
    w.run_to_completion(500 * MS);
    assert_eq!(
        w.metrics.faults_fired,
        schedule().n_events() as u64,
        "every scheduled fault fires inside the workload window"
    );
    let r = w.resilience();
    assert_eq!(r.flows_killed, 0, "every churned host rejoined");
    assert!(
        r.flows_recovered > 0,
        "host churn must interrupt at least one started flow"
    );
    assert_eq!(
        r.flows_recovered as usize,
        r.recovery_times_ps.len(),
        "one recovery time per recovered flow"
    );
    assert!(w.all_flows_done(), "a fault stranded a flow forever");
    for (i, rx) in w.flows.rx.iter().enumerate() {
        assert_eq!(
            rx.rcv_next, w.flows.hot[i].bytes,
            "flow {i} did not deliver exactly its bytes"
        );
    }
}

#[test]
#[should_panic(expected = "fault references unknown switch")]
fn fault_on_unknown_switch_is_rejected() {
    let mut w = build(1);
    FaultSchedule {
        drains: vec![Drain {
            switch: 99,
            start: 0.1,
            end: 0.2,
        }],
        ..FaultSchedule::default()
    }
    .apply(&mut w, MS);
}

#[test]
#[should_panic(expected = "outside switch")]
fn fault_on_unknown_port_is_rejected() {
    let mut w = build(1);
    FaultSchedule {
        link_flaps: vec![LinkFlap {
            switch: 0,
            port: 7,
            down: 0.1,
            up: 0.2,
        }],
        ..FaultSchedule::default()
    }
    .apply(&mut w, MS);
}

proptest! {
    /// Random fault schedules — loss bursts from flaps and drains plus
    /// kill/resume cycles from churn — never break transport recovery:
    /// with enough healing time every flow completes and every receiver
    /// holds exactly the flow's bytes, and the run is repeatable.
    #[test]
    fn random_fault_schedules_always_recover(
        flaps in prop::collection::vec(
            (0u32..20, 2u16..4, 0.05f64..0.4, 0.45f64..0.9), 0..3),
        drains in prop::collection::vec(
            (8u32..20, 0.1f64..0.4, 0.45f64..0.8), 0..2),
        churns in prop::collection::vec(
            (0u32..16, 0.05f64..0.35, 0.4f64..0.85), 0..2),
    ) {
        let sched = FaultSchedule {
            link_flaps: flaps
                .iter()
                .map(|&(switch, port, down, up)| LinkFlap { switch, port, down, up })
                .collect(),
            drains: drains
                .iter()
                .map(|&(switch, start, end)| Drain { switch, start, end })
                .collect(),
            host_churns: churns
                .iter()
                .map(|&(host, leave, join)| HostChurn { host, leave, join })
                .collect(),
        };
        let run = || {
            let mut w = build(1);
            sched.apply(&mut w, 2 * MS);
            // Bulk loss without SACK heals at roughly one MSS per probe
            // timeout, so give stranded tails generous room.
            w.run_to_completion(2_000 * MS);
            w
        };
        let w = run();
        let r = w.resilience();
        prop_assert_eq!(r.faults_fired, sched.n_events() as u64);
        prop_assert_eq!(r.flows_killed, 0, "all churned hosts rejoin");
        prop_assert!(w.all_flows_done(), "a fault stranded a flow forever");
        for (i, rx) in w.flows.rx.iter().enumerate() {
            prop_assert_eq!(
                rx.rcv_next, w.flows.hot[i].bytes,
                "flow {} delivered {} of {} bytes",
                i, rx.rcv_next, w.flows.hot[i].bytes
            );
        }
        prop_assert_eq!(snapshot(&run()), snapshot(&w), "repeat run diverged");
    }
}
