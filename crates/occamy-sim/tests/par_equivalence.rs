//! The parallel executor's contract: bit-identical observable state
//! for every thread count, including mid-run stops and resumes.

use occamy_core::BmKind;
use occamy_sim::topology::{fat_tree, BmSpec, FatTreeCfg, SchedKind};
use occamy_sim::{CbrDesc, CcAlgo, FlowDesc, SimConfig, World, MS, US};

/// A k=4 fat-tree (16 hosts, 4 pods) under mixed load: a permutation,
/// a 8:1 incast into host 0 (small buffer → drops, exercising the
/// exact-order drop-sample splicing), and two cross-pod CBR sources.
fn build(threads: usize) -> World {
    let sim = SimConfig {
        threads,
        ..SimConfig::default()
    };
    let mut w = fat_tree(FatTreeCfg {
        k: 4,
        host_rate_bps: 10_000_000_000,
        fabric_rate_bps: 10_000_000_000,
        link_prop_ps: 1_000_000, // 1 µs
        buffer_per_8ports_bytes: 150_000,
        classes: 2,
        bm: BmSpec::per_class(BmKind::Occamy, vec![8.0, 8.0]),
        sched: SchedKind::Fifo,
        sim,
    });
    let n = 16;
    for src in 0..n {
        w.add_flow(FlowDesc {
            src,
            dst: (src + 5) % n,
            bytes: 400_000,
            start_ps: (src as u64) * 3 * US,
            prio: 0,
            cc: CcAlgo::Dctcp,
            query: None,
            is_query: false,
        });
    }
    for src in 8..16 {
        w.add_flow(FlowDesc {
            src,
            dst: 0,
            bytes: 60_000,
            start_ps: 50 * US,
            prio: 1,
            cc: CcAlgo::Dctcp,
            query: Some(1),
            is_query: true,
        });
    }
    for (host, dst) in [(3, 12), (14, 2)] {
        w.add_cbr(CbrDesc {
            host,
            dst,
            rate_bps: 2_000_000_000,
            pkt_len: 1_000,
            prio: 1,
            start_ps: 10 * US,
            stop_ps: 2 * MS,
            budget_bytes: None,
        });
    }
    w
}

/// Every piece of observable end state, formatted for exact equality.
fn snapshot(w: &World) -> String {
    let m = &w.metrics;
    let mut s = format!(
        "now={} events={} delivered={}p/{}b drops={:?}\nbuf={:?}\nmembw={:?}\ncbr={:?}\n",
        w.now,
        m.events_processed,
        m.delivered_pkts,
        m.delivered_bytes,
        m.drops,
        m.drop_buffer_util,
        m.drop_membw_util,
        m.cbr,
    );
    for r in w.flow_records().records() {
        s.push_str(&format!(
            "flow {} start={} end={:?} bytes={}\n",
            r.id, r.start_ps, r.end_ps, r.bytes
        ));
    }
    s
}

#[test]
fn parallel_matches_serial_exactly() {
    let mut serial = build(1);
    serial.run_to_completion(20 * MS);
    let want = snapshot(&serial);
    assert!(serial.par_stats.is_none(), "threads=1 must stay serial");

    for threads in [2, 4, 8] {
        let mut par = build(threads);
        par.run_to_completion(20 * MS);
        let stats = par
            .par_stats
            .as_ref()
            .expect("parallel path must engage on a multi-domain fat-tree");
        assert!(stats.windows > 0);
        assert_eq!(
            stats.domain_events.iter().sum::<u64>(),
            par.metrics.events_processed,
            "every executed event is attributed to exactly one domain"
        );
        assert_eq!(
            snapshot(&par),
            want,
            "threads={threads} diverged from serial"
        );
    }
}

#[test]
fn parallel_survives_stop_and_resume() {
    // Stopping mid-run exercises the merge-back (events re-armed under
    // their original keys, sequence counter restored) and the re-split
    // on the next call.
    let mut serial = build(1);
    let mut par = build(4);
    for t in [40 * US, 120 * US, 500 * US, 20 * MS] {
        serial.run_until(t);
        par.run_until(t);
        assert_eq!(
            snapshot(&par),
            snapshot(&serial),
            "diverged after run_until({t})"
        );
    }
    assert!(serial.all_flows_done() && par.all_flows_done());
}
