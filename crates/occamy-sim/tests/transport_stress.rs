//! Transport-stress regression pins: a high-BDP, lossy, reordering-heavy
//! workload whose per-flow completion times were snapshotted from the
//! pre-refactor (array-of-structs `FlowState`, heap-resident RTO timers)
//! transport implementation. The hot/cold flow-state split and the RTO
//! timer wheel must reproduce every `FlowRecord` **bit for bit** — any
//! drift here means the refactor changed simulation behavior, not just
//! its speed.

use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{CcAlgo, FlowDesc, SimConfig, World, MS, SEC, US};

/// A deliberately hostile world: four senders share one 10 G port pair
/// through a buffer far below the path BDP (500 µs one-way propagation
/// ⇒ ~2 ms RTT ⇒ 2.5 MB BDP vs an 80 KB buffer), so slow-start
/// overshoot forces tail drops, go-back-N retransmissions and long
/// out-of-order runs at the receiver — every transport code path at
/// once, across all three congestion-control algorithms.
fn stress_world() -> World {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![10_000_000_000; 5],
        prop_ps: 500 * US,
        buffer_bytes: 80_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 1.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 10 * MS,
            ..SimConfig::default()
        },
    });
    for (src, bytes, cc, start_us) in [
        (0usize, 2_000_000u64, CcAlgo::Dctcp, 0u64),
        (1, 1_500_000, CcAlgo::Cubic, 100),
        (2, 1_000_000, CcAlgo::Reno, 200),
        (3, 600_000, CcAlgo::Dctcp, 300),
    ] {
        w.add_flow(FlowDesc {
            src,
            dst: 4,
            bytes,
            start_ps: start_us * US,
            prio: 0,
            cc,
            query: None,
            is_query: false,
        });
    }
    w
}

#[test]
fn lossy_high_bdp_flows_match_pre_refactor_snapshot() {
    let mut w = stress_world();
    w.run_to_completion(20 * SEC);

    let records = w.flow_records();
    let end_ps: Vec<Option<u64>> = records.records().iter().map(|r| r.end_ps).collect();

    // Snapshot taken from the pre-refactor transport implementation
    // (commit ab12b48) by running this exact world.
    let expected_end_ps: [Option<u64>; 4] = [
        Some(SNAP_END_0),
        Some(SNAP_END_1),
        Some(SNAP_END_2),
        Some(SNAP_END_3),
    ];
    assert_eq!(end_ps, expected_end_ps, "flow completion times drifted");
    assert_eq!(
        (
            w.metrics.delivered_pkts,
            w.metrics.delivered_bytes,
            w.metrics.drops.total_losses(),
            w.metrics.events_processed,
        ),
        (SNAP_PKTS, SNAP_BYTES, SNAP_LOSSES, SNAP_EVENTS),
        "delivery / loss / event counters drifted"
    );
}

#[test]
fn stress_world_is_deterministic() {
    let run = || {
        let mut w = stress_world();
        w.run_to_completion(20 * SEC);
        (
            w.flow_records()
                .records()
                .iter()
                .map(|r| r.end_ps)
                .collect::<Vec<_>>(),
            w.metrics.events_processed,
        )
    };
    assert_eq!(run(), run());
}

// Snapshot constants (picoseconds / counts) — see the module doc.
const SNAP_END_0: u64 = 344_444_048_000;
const SNAP_END_1: u64 = 18_493_072_000;
const SNAP_END_2: u64 = 174_629_488_000;
const SNAP_END_3: u64 = 168_688_128_000;
const SNAP_PKTS: u64 = 3_498;
const SNAP_BYTES: u64 = 5_105_840;
const SNAP_LOSSES: u64 = 316;
const SNAP_EVENTS: u64 = 28_813;

// When capturing a fresh snapshot (intentional behavior change), run
// with `--nocapture` on the reference commit:
#[test]
#[ignore = "snapshot capture helper, run manually with --nocapture"]
fn print_snapshot() {
    let mut w = stress_world();
    w.run_to_completion(20 * SEC);
    for (i, r) in w.flow_records().records().iter().enumerate() {
        println!("flow {i}: end_ps = {:?}", r.end_ps);
    }
    println!(
        "pkts={} bytes={} losses={} events={}",
        w.metrics.delivered_pkts,
        w.metrics.delivered_bytes,
        w.metrics.drops.total_losses(),
        w.metrics.events_processed
    );
}
