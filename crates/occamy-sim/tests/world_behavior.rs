//! World-level behavior tests: buffer partitions, samplers, CBR
//! semantics, and cross-partition isolation.

use occamy_core::BmKind;
use occamy_sim::topology::{
    leaf_spine, single_switch, BmSpec, LeafSpineCfg, SchedKind, SingleSwitchCfg,
};
use occamy_sim::{tx_time_ps, CbrDesc, CcAlgo, FlowDesc, SimConfig, MS, NS, SEC, US};

const G10: u64 = 10_000_000_000;

#[test]
fn cbr_budget_is_exact() {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 2],
        prop_ps: US,
        buffer_bytes: 1_000_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    let id = w.add_cbr(CbrDesc {
        host: 0,
        dst: 1,
        rate_bps: G10,
        pkt_len: 1_000,
        prio: 0,
        start_ps: 0,
        stop_ps: SEC,
        budget_bytes: Some(10_500), // 10 full packets + one 500 B tail
    });
    w.run_to_completion(SEC);
    let c = w.metrics.cbr[id];
    assert_eq!(c.sent_bytes, 10_500);
    assert_eq!(c.sent_pkts, 11);
    assert_eq!(c.rcvd_bytes, 10_500, "lossless path must deliver all");
    assert_eq!(c.loss_rate(), 0.0);
}

#[test]
fn cbr_paces_at_configured_rate() {
    // A 5 Gbps source on a 10 Gbps link must take ~2× the line-rate time.
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 2],
        prop_ps: NS,
        buffer_bytes: 1_000_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    let bytes = 5_000_000u64;
    let id = w.add_cbr(CbrDesc {
        host: 0,
        dst: 1,
        rate_bps: 5_000_000_000,
        pkt_len: 1_460,
        prio: 0,
        start_ps: 0,
        stop_ps: SEC,
        budget_bytes: Some(bytes),
    });
    w.run_to_completion(SEC);
    assert_eq!(w.metrics.cbr[id].rcvd_bytes, bytes);
    // Delivery takes at least the paced duration: wire bytes at 5 Gbps.
    let paced = tx_time_ps(bytes + (bytes / 1_460) * 40, 5_000_000_000);
    assert!(
        w.now >= paced * 9 / 10,
        "CBR finished too fast for its configured rate"
    );
}

#[test]
fn sampler_cadence_and_contents() {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 2],
        prop_ps: US,
        buffer_bytes: 500_000,
        classes: 2,
        bm: BmSpec::per_class(BmKind::Dt, vec![1.0, 1.0]),
        sched: SchedKind::StrictPriority,
        sim: SimConfig::default(),
    });
    w.add_queue_sampler(0, 0, 100 * US, MS);
    w.run_to_completion(2 * MS);
    // Samples at 0, 100 µs, …, 1 ms inclusive = 11.
    assert_eq!(w.metrics.queue_samples.len(), 11);
    for (i, s) in w.metrics.queue_samples.iter().enumerate() {
        assert_eq!(s.t, i as u64 * 100 * US);
        assert_eq!(s.qlens.len(), 4, "2 ports × 2 classes");
        assert_eq!(s.thresholds.len(), 4);
    }
}

#[test]
fn partitions_isolate_buffer_pressure() {
    // On a leaf switch with several 8-port partitions, saturating ports
    // of partition 0 must not consume partition 1's buffer.
    let mut w = leaf_spine(LeafSpineCfg {
        spines: 2,
        leaves: 2,
        hosts_per_leaf: 12, // leaf has 12 down + 2 up = 14 ports → 2 partitions
        host_rate_bps: G10,
        fabric_rate_bps: G10,
        link_prop_ps: US,
        buffer_per_8ports_bytes: 400_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 8.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    // Hosts 1..6 blast host 0 (partition 0 of leaf 0) with raw traffic.
    for src in 1..6 {
        w.add_cbr(CbrDesc {
            host: src,
            dst: 0,
            rate_bps: G10,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 5 * MS,
            budget_bytes: None,
        });
    }
    w.run_until(4 * MS);
    let leaf = &w.switches[0];
    assert_eq!(leaf.partitions.len(), 2);
    assert!(
        leaf.partitions[0].state.total() > 0,
        "partition 0 should be congested"
    );
    assert_eq!(
        leaf.partitions[1].state.total(),
        0,
        "partition 1 must be untouched by partition-0 congestion"
    );
}

#[test]
fn run_until_advances_time_without_events() {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 2],
        prop_ps: US,
        buffer_bytes: 100_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 1.0),
        sched: SchedKind::Fifo,
        sim: SimConfig::default(),
    });
    w.run_until(5 * MS);
    assert_eq!(w.now, 5 * MS);
}

#[test]
fn reno_flow_completes_alongside_dctcp() {
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 3],
        prop_ps: US,
        buffer_bytes: 400_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 1.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    for (src, cc) in [(0, CcAlgo::Reno), (1, CcAlgo::Dctcp)] {
        w.add_flow(FlowDesc {
            src,
            dst: 2,
            bytes: 3_000_000,
            start_ps: 0,
            prio: 0,
            cc,
            query: None,
            is_query: false,
        });
    }
    w.run_to_completion(5 * SEC);
    assert!(w.all_flows_done(), "mixed-CC flows wedged");
}

#[test]
fn ack_prioritization_keeps_reverse_path_alive() {
    // Host 0 both receives a heavy flow (must send ACKs) and sources its
    // own bulk flow. ACK-first NIC service keeps the inbound transfer's
    // ACK clock running, so both flows finish in bounded time.
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 3],
        prop_ps: US,
        buffer_bytes: 400_000,
        classes: 1,
        bm: BmSpec::uniform(BmKind::Dt, 1.0),
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    w.add_flow(FlowDesc {
        src: 1,
        dst: 0,
        bytes: 5_000_000,
        start_ps: 0,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: None,
        is_query: false,
    });
    w.add_flow(FlowDesc {
        src: 0,
        dst: 2,
        bytes: 5_000_000,
        start_ps: 0,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: None,
        is_query: false,
    });
    w.run_to_completion(5 * SEC);
    assert!(w.all_flows_done());
    // Both directions at ~line rate: each flow ≈ 4.2 ms solo; allow 3×.
    for (hot, cold) in w.flows.hot.iter().zip(&w.flows.cold) {
        let fct = cold.end_ps.unwrap();
        assert!(fct < 13 * MS, "flow {} took {} ms", hot.id, fct / MS);
    }
}
