//! Property-based tests for the simulator's deterministic components.

use occamy_sim::{
    CcAlgo, Event, EventQueue, FlowState, Packet, Scheduler, SimConfig, TransportConsts,
};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// The event queue is a stable priority queue: pops are globally
    /// time-ordered and FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            // Exercise both lanes: even insertions go through the heap,
            // odd ones through the deferred (setup-time) lane. Global
            // (time, insertion) order must hold regardless.
            if i % 2 == 0 {
                q.push(t, Event::HostTxFree { host: i as u32 });
            } else {
                q.push_deferred(t, Event::HostTxFree { host: i as u32 });
            }
        }
        let mut last: Option<(u64, u32)> = None;
        while let Some((t, ev)) = q.pop() {
            let Event::HostTxFree { host } = ev else { unreachable!() };
            if let Some((lt, lh)) = last {
                prop_assert!(t > lt || (t == lt && host > lh), "instability at t = {}", t);
            }
            prop_assert_eq!(times[host as usize], t, "event time corrupted");
            last = Some((t, host));
        }
    }

    /// The receiver reassembly state machine agrees with a reference
    /// bitmap model for arbitrary (possibly overlapping, out-of-order)
    /// segment arrivals.
    #[test]
    fn reassembly_matches_reference(
        segs in prop::collection::vec((0u64..50u64, 1u64..10), 1..60)
    ) {
        let c = TransportConsts::new(&SimConfig::default());
        let mut f = FlowState::new(0, 0, 1, 100, 0, 0, CcAlgo::Dctcp, &c);
        let mut have = [false; 600];
        for (seq, len) in segs {
            let ack = f.on_data(seq, len);
            for b in seq..seq + len {
                have[b as usize] = true;
            }
            let expect = have.iter().position(|&x| !x).unwrap() as u64;
            prop_assert_eq!(ack, expect, "cumulative ack diverged");
        }
    }

    /// DRR serves byte shares proportional to… equal quanta: over a long
    /// backlogged run, per-class byte service stays within 20% of equal,
    /// regardless of (per-class constant) packet sizes.
    #[test]
    fn drr_byte_fairness(
        sizes in prop::collection::vec(100u32..1_460, 2..5),
        quantum in 1_500u64..4_000,
    ) {
        let classes = sizes.len();
        let mut sched = Scheduler::drr(classes, quantum);
        let mut queues: Vec<VecDeque<Packet>> = sizes
            .iter()
            .map(|&len| (0..4_000).map(|_| Packet::data(0, 0, 1, 0, len, 0, 0)).collect())
            .collect();
        let mut bytes = vec![0u64; classes];
        for _ in 0..3_000 {
            let c = sched.pick(&queues).unwrap();
            let p = queues[c].pop_front().unwrap();
            bytes[c] += p.wire_bytes();
        }
        let total: u64 = bytes.iter().sum();
        let fair = total as f64 / classes as f64;
        for (c, &b) in bytes.iter().enumerate() {
            prop_assert!(
                (b as f64 - fair).abs() / fair < 0.2,
                "class {} got {} of fair {}", c, b, fair
            );
        }
    }

    /// Strict priority never serves a lower class while a higher one is
    /// backlogged.
    #[test]
    fn strict_priority_ordering(backlogs in prop::collection::vec(0usize..5, 2..6)) {
        let mut sched = Scheduler::StrictPriority;
        let mut queues: Vec<VecDeque<Packet>> = backlogs
            .iter()
            .map(|&n| (0..n).map(|_| Packet::data(0, 0, 1, 0, 100, 0, 0)).collect())
            .collect();
        while let Some(c) = sched.pick(&queues) {
            for (higher, q) in queues.iter().enumerate().take(c) {
                prop_assert!(q.is_empty(), "skipped class {}", higher);
            }
            queues[c].pop_front();
        }
        prop_assert!(queues.iter().all(|q| q.is_empty()));
    }

    /// Window arithmetic: a sender never has more unacked bytes in
    /// flight than cwnd allows (checked across a lossless exchange).
    #[test]
    fn inflight_bounded_by_cwnd(bytes in 10_000u64..500_000) {
        let cfg = SimConfig::default();
        let c = TransportConsts::new(&cfg);
        let mut f = FlowState::new(0, 0, 1, bytes, 0, 0, CcAlgo::Dctcp, &c);
        f.hot.set_started(true);
        let mut now = 0u64;
        for _ in 0..10_000 {
            let mut sent = Vec::new();
            while f.can_send() {
                let p = f.next_segment(now, &c);
                sent.push(p);
                prop_assert!(
                    f.hot.inflight() as f64 <= f.hot.cwnd() + cfg.mss as f64,
                    "inflight {} exceeds cwnd {}", f.hot.inflight(), f.hot.cwnd()
                );
            }
            now += 100_000_000; // 100 µs RTT
            let mut done = false;
            for p in sent {
                let ack = f.on_data(p.seq, p.len as u64);
                done = f.on_ack(ack, false, p.ts, now, &c);
            }
            if done {
                return Ok(());
            }
        }
        prop_assert!(false, "transfer never finished");
    }
}
