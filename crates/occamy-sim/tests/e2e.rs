//! End-to-end physics checks for the simulator.
//!
//! These tests pin down the behaviors every experiment relies on:
//! line-rate throughput, DCTCP's ECN-held queues, fair sharing, incast
//! loss behavior, Occamy's reactive expulsion, and determinism.

use occamy_core::BmKind;
use occamy_sim::topology::{single_switch, BmSpec, SchedKind, SingleSwitchCfg};
use occamy_sim::{tx_time_ps, CbrDesc, CcAlgo, FlowDesc, SimConfig, World, MS, SEC, US};

const G10: u64 = 10_000_000_000;

fn testbed(n: usize, bm: BmSpec, buffer: u64) -> World {
    single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; n],
        prop_ps: US, // 4 µs base RTT through the switch
        buffer_bytes: buffer,
        classes: 1,
        bm,
        sched: SchedKind::Fifo,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    })
}

fn flow(src: usize, dst: usize, bytes: u64, start: u64) -> FlowDesc {
    FlowDesc {
        src,
        dst,
        bytes,
        start_ps: start,
        prio: 0,
        cc: CcAlgo::Dctcp,
        query: None,
        is_query: false,
    }
}

#[test]
fn single_flow_achieves_near_line_rate() {
    let mut w = testbed(2, BmSpec::uniform(BmKind::Dt, 1.0), 400_000);
    let bytes = 10_000_000u64;
    w.add_flow(flow(0, 1, bytes, 0));
    w.run_to_completion(SEC);
    assert!(w.all_flows_done(), "flow did not finish");
    let fct = w.flows.cold[0].end_ps.unwrap();
    // Ideal: payload + per-MSS header overhead at 10 Gbps, plus ~2 RTT of
    // ramp-up. Require ≥ 85% of line rate.
    let ideal = tx_time_ps(bytes + (bytes / 1460 + 1) * 40, G10);
    assert!(
        fct < ideal * 115 / 100,
        "FCT {} ps vs ideal {} ps — below 85% of line rate",
        fct,
        ideal
    );
    // Nothing lost in a single-flow scenario with DCTCP.
    assert_eq!(w.metrics.drops.total_losses(), 0, "unexpected drops");
}

#[test]
fn dctcp_holds_queue_without_drops() {
    // Two senders into one receiver at 10 G: persistent congestion. With
    // DCTCP + ECN (K = 97.5 KB) and a 400 KB buffer, there must be no
    // packet loss and both flows must finish.
    let mut w = testbed(3, BmSpec::uniform(BmKind::Dt, 1.0), 400_000);
    w.add_flow(flow(0, 2, 5_000_000, 0));
    w.add_flow(flow(1, 2, 5_000_000, 0));
    w.run_to_completion(SEC);
    assert!(w.all_flows_done());
    // A handful of drops can occur while slow start races the falling DT
    // threshold; steady state must be loss-free (≈7000 packets total).
    assert!(
        w.metrics.drops.total_losses() < 10,
        "DCTCP steady state should be essentially loss-free, got {}",
        w.metrics.drops.total_losses()
    );
}

#[test]
fn two_flows_share_the_bottleneck_fairly() {
    let mut w = testbed(3, BmSpec::uniform(BmKind::Dt, 1.0), 400_000);
    w.add_flow(flow(0, 2, 8_000_000, 0));
    w.add_flow(flow(1, 2, 8_000_000, 0));
    w.run_to_completion(SEC);
    let f0 = w.flows.cold[0].end_ps.unwrap() as f64;
    let f1 = w.flows.cold[1].end_ps.unwrap() as f64;
    let ratio = f0.max(f1) / f0.min(f1);
    assert!(ratio < 1.3, "unfair completion times: {f0} vs {f1}");
    // Equal flows sharing 10 G: each sees ~5 G, so the FCT should be
    // roughly twice the solo FCT.
    let solo = tx_time_ps(8_000_000, G10) as f64;
    assert!(
        f0.max(f1) > 1.6 * solo,
        "flows finished implausibly fast for a shared bottleneck"
    );
}

#[test]
fn severe_incast_causes_drops_under_dt() {
    // 16 servers blast one receiver simultaneously with far more data
    // than buffer: drops are inevitable; every flow must still complete
    // via retransmissions.
    let mut w = testbed(17, BmSpec::uniform(BmKind::Dt, 1.0), 200_000);
    for s in 0..16 {
        w.add_flow(flow(s, 16, 400_000, 0));
    }
    w.run_to_completion(10 * SEC);
    assert!(w.all_flows_done(), "incast flows wedged");
    assert!(
        w.metrics.drops.total_losses() > 0,
        "a 6.4 MB incast into 200 KB cannot be lossless"
    );
}

#[test]
fn conservation_of_packets() {
    let mut w = testbed(5, BmSpec::uniform(BmKind::Dt, 0.5), 100_000);
    for s in 0..4 {
        w.add_flow(flow(s, 4, 300_000, 0));
    }
    w.run_to_completion(10 * SEC);
    assert!(w.all_flows_done());
    // Every queue must drain to zero at quiescence.
    for sw in &w.switches {
        for part in &sw.partitions {
            assert_eq!(part.state.total(), 0, "buffer not drained");
        }
        for port in &sw.ports {
            assert!(port.queues.iter().all(|q| q.is_empty()));
        }
    }
    // Every byte of every flow was delivered at least once.
    let payload: u64 = w.flows.hot.iter().map(|f| f.bytes).sum();
    assert!(w.metrics.delivered_bytes >= payload);
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut w = testbed(5, BmSpec::uniform(BmKind::Occamy, 8.0), 150_000);
        for s in 0..4 {
            w.add_flow(flow(s, 4, 500_000, (s as u64) * 10 * US));
        }
        w.run_to_completion(10 * SEC);
        (
            w.flows.cold.iter().map(|f| f.end_ps).collect::<Vec<_>>(),
            w.metrics.drops.total_losses(),
            w.metrics.delivered_pkts,
        )
    };
    assert_eq!(run(), run(), "identical runs diverged");
}

#[test]
fn occamy_expels_over_allocated_queue_for_newcomer() {
    // Fig. 11 in miniature: a long-lived CBR stream entrenches queue 0;
    // a burst then arrives at queue 1. With Occamy (α = 8) the burst must
    // experience far fewer drops than with DT (α = 8), because Occamy
    // head-drops the entrenched queue to make room.
    let scenario = |bm: BmSpec| {
        let mut w = single_switch(SingleSwitchCfg {
            // Sender ports are 100 G, receiver ports 10 G — the paper's
            // P4 testbed shape.
            host_rates_bps: vec![100_000_000_000, 100_000_000_000, G10, G10],
            prop_ps: US,
            buffer_bytes: 1_200_000,
            classes: 1,
            bm,
            sched: SchedKind::Fifo,
            sim: SimConfig::default(),
        });
        // Long-lived: host 0 → host 2 at 100 G from t = 0.
        w.add_cbr(CbrDesc {
            host: 0,
            dst: 2,
            rate_bps: 100_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 4 * MS,
            budget_bytes: None,
        });
        // Burst: host 1 → host 3, 600 KB at 100 G, arriving at 2 ms.
        let burst = w.add_cbr(CbrDesc {
            host: 1,
            dst: 3,
            rate_bps: 100_000_000_000,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 2 * MS,
            stop_ps: 4 * MS,
            budget_bytes: Some(600_000),
        });
        w.run_to_completion(8 * MS);
        w.metrics.cbr[burst].loss_rate()
    };
    let occamy_loss = scenario(BmSpec::uniform(BmKind::Occamy, 8.0));
    let dt_loss = scenario(BmSpec::uniform(BmKind::Dt, 8.0));
    assert!(
        occamy_loss < dt_loss * 0.5 || (occamy_loss == 0.0 && dt_loss > 0.0),
        "Occamy burst loss {occamy_loss:.3} not ≪ DT {dt_loss:.3}"
    );
}

#[test]
fn pushout_accepts_bursts_where_dt_tail_drops() {
    let scenario = |bm: BmSpec| {
        let mut w = testbed(3, bm, 100_000);
        // Entrench queue toward host 2, then burst toward host 1.
        w.add_cbr(CbrDesc {
            host: 0,
            dst: 2,
            rate_bps: G10,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 0,
            stop_ps: 10 * MS,
            budget_bytes: None,
        });
        let burst = w.add_cbr(CbrDesc {
            host: 1,
            dst: 2,
            rate_bps: G10,
            pkt_len: 1_460,
            prio: 0,
            start_ps: 5 * MS,
            stop_ps: 10 * MS,
            budget_bytes: Some(80_000),
        });
        w.run_to_completion(20 * MS);
        w.metrics.cbr[burst].loss_rate()
    };
    let pushout = scenario(BmSpec::uniform(BmKind::Pushout, 1.0));
    let dt = scenario(BmSpec::uniform(BmKind::Dt, 0.25));
    assert!(
        pushout <= dt,
        "Pushout loss {pushout:.3} should not exceed DT {dt:.3}"
    );
}

#[test]
fn strict_priority_protects_high_class() {
    // Two classes into one receiver port; class 0 has strict priority.
    let mut w = single_switch(SingleSwitchCfg {
        host_rates_bps: vec![G10; 3],
        prop_ps: US,
        buffer_bytes: 400_000,
        classes: 2,
        bm: BmSpec::per_class(BmKind::Dt, vec![8.0, 1.0]),
        sched: SchedKind::StrictPriority,
        sim: SimConfig {
            min_rto: 5 * MS,
            ..SimConfig::default()
        },
    });
    // Low-priority long flow, then a high-priority short flow.
    let mut lp = flow(0, 2, 20_000_000, 0);
    lp.prio = 1;
    w.add_flow(lp);
    let mut hp = flow(1, 2, 500_000, 5 * MS);
    hp.prio = 0;
    w.add_flow(hp);
    w.run_to_completion(SEC);
    assert!(w.all_flows_done());
    let hp_fct = w.flows.cold[1].end_ps.unwrap() - w.flows.cold[1].start_ps;
    // The HP flow gets nearly the full 10 G despite the LP backlog:
    // 500 KB ≈ 412 µs at line rate; allow ~3×.
    assert!(
        hp_fct < 1_300 * US,
        "high-priority FCT {hp_fct} ps suggests no priority isolation"
    );
}
